"""Construction-runtime benchmark: tiered oracle vs the exact branch-and-bound.

FT-greedy construction asks one oracle question per candidate edge: *is there
a fault set that breaks this pair?*  The exact :class:`BranchAndBoundOracle`
answers every question with a full branch-and-bound search; the
:class:`TieredOracle` (PR 8) first runs cheap sound screens — one shared root
query with a warm same-source SSSP cache, witness replay, greedy
disjoint-path packing — and only falls through to the exact search on the
undecided margin.  Screens may reject early or accept with a certificate but
never change a decision, so the two oracles build **byte-identical**
spanners; this benchmark asserts that (same edges, same witness fault sets)
before it reports any timing.

The workload is a spine-leaf fabric: a leaf/spine mesh, a dense core of
multi-homed hosts (high path redundancy, so most candidate edges are
*rejected* — the regime where the exact search pays for a full recursion
tree and the tiered screens pay ``f + 1`` sweeps), and a large population of
singly-homed hosts that scale the node count to datacenter size.  The
headline case is a >= 50k-node graph at ``k=7, f=3`` under edge faults.

Running as a script records the comparison in ``BENCH_build.json`` at the
repository root::

    PYTHONPATH=src python benchmarks/bench_build.py [--quick]

``--quick`` is the CI smoke configuration (a ~1.7k-edge fabric, tens of
seconds); the full run builds the 50k-node fabric twice and takes minutes.
The speedup assertion arms only when the exact baseline took at least
``MIN_BASELINE_SECONDS`` (the recorded ``speedup_asserted`` field says
whether the gate was live), because sub-50ms baselines time mostly
interpreter noise.
"""

import argparse
import json
import pathlib
import time

import pytest

from repro.graph.core import Graph
from repro.spanners.ft_greedy import ft_greedy_spanner

#: The tiered build must stay >= this much faster than the exact baseline.
SPEEDUP_FLOOR = 3.0
#: The CI smoke config is small enough that the ratio is noisier; it guards
#: against "tiered stopped helping", not against constant-factor drift.
QUICK_SPEEDUP_FLOOR = 2.0
#: Don't assert a ratio of two timings when the baseline is interpreter noise.
MIN_BASELINE_SECONDS = 0.05


def spine_leaf(num_singles: int, num_core: int, num_leaves: int,
               num_spines: int, homes: int) -> Graph:
    """A spine-leaf fabric with a multi-homed core and singly-homed bulk.

    Every leaf connects to every spine (the fabric mesh); ``num_core`` hosts
    attach to ``homes`` consecutive leaves starting at a stride-7 offset
    (deterministic, no RNG), and ``num_singles`` hosts attach to one leaf
    each.  Uniform unit weights keep the candidate ordering dense in ties,
    which is exactly where byte-identity between oracles is hardest to keep.
    """
    g = Graph()
    for s in range(num_spines):
        g.add_node(("spine", s))
    for l in range(num_leaves):
        g.add_node(("leaf", l))
        for s in range(num_spines):
            g.add_edge(("leaf", l), ("spine", s), 1.0)
    for h in range(num_core):
        base = (h * 7) % num_leaves
        for k in range(homes):
            g.add_edge(("host", h), ("leaf", (base + k) % num_leaves), 1.0)
    for h in range(num_core, num_core + num_singles):
        g.add_edge(("host", h), ("leaf", h % num_leaves), 1.0)
    return g


def _result_fields(result) -> dict:
    """Everything that must be byte-identical between the two oracles."""
    return {
        "edges": sorted(result.spanner.edges(), key=repr),
        "witnesses": result.witness_fault_sets,
        "edges_added": result.edges_added,
        "edges_considered": result.edges_considered,
    }


def _timed_build(graph: Graph, stretch: float, max_faults: int,
                 fault_model: str, oracle: str):
    """One construction, timed; the same run feeds the identity assertion.

    Construction benchmarks are long enough (seconds to minutes) that a
    best-of-N loop would double the wall clock for no extra signal, so each
    oracle is built exactly once and that run is both the timing sample and
    the identity witness.
    """
    start = time.perf_counter()
    result = ft_greedy_spanner(graph, stretch, max_faults,
                               fault_model=fault_model, oracle=oracle,
                               kernel="numpy")
    return result, time.perf_counter() - start


def record_build_tiered(path=None, *, quick: bool = False) -> dict:
    """Measure tiered vs exact construction; write ``BENCH_build.json``."""
    if path is None:
        path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_build.json"
    if quick:
        # Small enough for a CI smoke, large enough that the exact baseline
        # is seconds (well past MIN_BASELINE_SECONDS) and reject-dominated.
        configs = [("quick", dict(num_singles=400, num_core=80,
                                  num_leaves=24, num_spines=8, homes=10))]
        floor = QUICK_SPEEDUP_FLOOR
    else:
        # The headline: a >= 50k-node fabric.  The 100-host 30-homed core
        # drives the reject-heavy oracle workload (~29 rejects per host —
        # each screened in f+1 packing sweeps where the exact search pays a
        # ~40-sweep recursion tree); the singly-homed bulk scales the node
        # count, and with it the per-sweep cost both oracles pay.
        configs = [("spine-leaf-50k", dict(num_singles=50_000, num_core=100,
                                           num_leaves=40, num_spines=12,
                                           homes=30))]
        floor = SPEEDUP_FLOOR
    stretch, max_faults, fault_model = 7.0, 3, "edge"
    report = {
        "benchmark": "ft_greedy construction: tiered oracle vs exact "
                     "branch-and-bound",
        "baseline": "BranchAndBoundOracle: exact search on every candidate",
        "tiered": "TieredOracle: shared root query + warm SSSP cache + "
                  "witness replay + disjoint-path packing, exact search "
                  "only on the undecided margin",
        "quick": quick,
        "stretch": stretch,
        "max_faults": max_faults,
        "fault_model": fault_model,
        "kernel": "numpy",
        "cases": [],
    }
    for label, config in configs:
        graph = spine_leaf(**config)
        tiered, tiered_s = _timed_build(graph, stretch, max_faults,
                                        fault_model, "tiered")
        exact, exact_s = _timed_build(graph, stretch, max_faults,
                                      fault_model, "branch-and-bound")
        assert _result_fields(tiered) == _result_fields(exact), (
            f"tiered construction diverged from exact on {label}"
        )
        report["cases"].append({
            "case": label,
            **config,
            "nodes": tiered.spanner.number_of_nodes(),
            "edges_considered": tiered.edges_considered,
            "edges_added": tiered.edges_added,
            "exact_s": round(exact_s, 3),
            "tiered_s": round(tiered_s, 3),
            "speedup": round(exact_s / tiered_s, 2),
            "screen_hit_rate": tiered.parameters.get("screen_hit_rate"),
            "screen_outcomes": tiered.parameters.get("screen_outcomes"),
            "spanners_identical": True,
            "witnesses_identical": True,
        })
    headline = report["cases"][0]
    report["speedup"] = headline["speedup"]
    report["speedup_floor"] = floor
    report["speedup_asserted"] = headline["exact_s"] >= MIN_BASELINE_SECONDS
    if report["speedup_asserted"]:
        assert report["speedup"] >= floor, (
            f"tiered construction speedup regressed below "
            f"{floor}x: {report['speedup']}x"
        )
    pathlib.Path(path).write_text(json.dumps(report, indent=2) + "\n")
    return report


# ---------------------------------------------------------------------------
# pytest entries (oracle identity as part of the tier-1 run)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_fabric():
    return spine_leaf(num_singles=60, num_core=20, num_leaves=10,
                      num_spines=4, homes=6)


@pytest.mark.benchmark(group="build")
def test_exact_build(benchmark, small_fabric):
    result = benchmark(lambda: ft_greedy_spanner(
        small_fabric, 7.0, 2, fault_model="edge",
        oracle="branch-and-bound", kernel="numpy"))
    assert result.edges_added > 0


@pytest.mark.benchmark(group="build")
def test_tiered_build(benchmark, small_fabric):
    expected = ft_greedy_spanner(small_fabric, 7.0, 2, fault_model="edge",
                                 oracle="branch-and-bound", kernel="numpy")
    result = benchmark(lambda: ft_greedy_spanner(
        small_fabric, 7.0, 2, fault_model="edge",
        oracle="tiered", kernel="numpy"))
    assert _result_fields(result) == _result_fields(expected)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke configuration (small fabric, seconds)")
    parser.add_argument("--output", default=None,
                        help="where to write BENCH_build.json")
    args = parser.parse_args()
    outcome = record_build_tiered(args.output, quick=args.quick)
    for case in outcome["cases"]:
        hit = case["screen_hit_rate"]
        print(f"{case['case']}: n={case['nodes']} "
              f"m={case['edges_considered']} added={case['edges_added']}: "
              f"exact {case['exact_s']}s, tiered {case['tiered_s']}s "
              f"-> {case['speedup']}x "
              f"(screen hit rate {hit:.3f}, outcomes {case['screen_outcomes']}, "
              f"spanners+witnesses identical)")
    gate = (f"asserted >= {outcome['speedup_floor']}x"
            if outcome["speedup_asserted"]
            else "not asserted: baseline under "
                 f"{MIN_BASELINE_SECONDS}s")
    print(f"headline construction speedup: {outcome['speedup']}x [{gate}]")
