"""Dynamic-maintenance benchmark: incremental updates vs full rebuilds.

Before the dynamic subsystem, every edge mutation forced a full
``build()`` from scratch.  :class:`repro.dynamic.DynamicSpanner` instead
answers an insertion with one oracle acceptance test and a deletion with a
dirty-region repair sweep, so the per-update cost should sit orders of
magnitude below a rebuild.  This benchmark replays the ``update_churn``
workload (mixed query/update traffic, the live-service shape) and measures:

* **incremental** — a :class:`~repro.dynamic.LiveEngine` absorbing every
  update while serving the query batches between them; the per-update cost
  is the maintainer's accumulated maintenance time over the whole journal;
* **rebuild** — the pre-subsystem baseline: after each update the spanner is
  rebuilt from scratch at the current graph (timed on a deterministic
  sample of the updates — each rebuild costs the same work the construction
  always costs, so sampling is fair and keeps the benchmark finite).

Before timing, the maintained spanner must pass a sampled ``is_ft_spanner``
certification for the case's fault model — a fast benchmark that serves an
invalid spanner would be meaningless — and the size factor vs the final
rebuild is recorded (the online-vs-offline greedy gap documented in the
README).

Running as a script records ``BENCH_dynamic.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_dynamic.py [--quick]

The ``--quick`` mode is the CI smoke configuration.  The headline number is
the vertex-fault case's speedup, expected to stay >= 5x; mirroring
``bench_verify``'s machine gating, the assertion is armed only when the
measured rebuild cost is large enough (``rebuild_floor_s``) that timer noise
cannot flip the verdict — the recorded ``speedup_asserted`` field says
whether the gate was armed.
"""

import argparse
import json
import pathlib

import pytest

from repro.build import BuildSpec, build
from repro.build.session import BuildSession
from repro.dynamic import LiveEngine
from repro.engine.workload import Query, update_churn
from repro.graph import generators
from repro.utils.timing import Timer, timed
from repro.spanners.verify import is_ft_spanner

#: Incremental maintenance must stay >= this much faster per update ...
SPEEDUP_FLOOR = 5.0
#: ... asserted only when one rebuild costs at least this long (otherwise
#: the division is timer noise, e.g. on toy graphs).
REBUILD_FLOOR_S = 0.05


def _churn_case(n: int, m: int, sessions: int, queries_per_session: int,
                updates_per_session: int, *, fault_model: str, seed: int):
    """A graph plus its mixed query/update event stream."""
    graph = generators.gnm(n, m, rng=seed, connected=True, weighted=True)
    events = update_churn(graph, sessions, queries_per_session,
                          updates_per_session=updates_per_session,
                          max_faults=1, fault_model=fault_model,
                          rng=seed + 1)
    return graph, events


def _run_incremental(graph, events, spec):
    """Drive the live engine through the event stream; returns (live, wall_s)."""
    session = BuildSession(graph.copy(), spec)
    session.build()
    live = LiveEngine(session.dynamic())
    batch = []
    with timed("incremental") as timer:
        for event in events:
            if isinstance(event, Query):
                batch.append((event.source, event.target, event.faults))
            else:
                if batch:
                    live.distances_batch(batch)
                    batch = []
                live.apply(event)
        if batch:
            live.distances_batch(batch)
    return live, timer.elapsed


def _run_rebuild_baseline(graph, updates, spec, sample_every: int):
    """Time from-scratch rebuilds after every ``sample_every``-th update."""
    current = graph.copy()
    timer = Timer("rebuild")
    final_result = None
    for index, update in enumerate(updates):
        update.apply(current)
        if index % sample_every == 0 or index == len(updates) - 1:
            with timer.measure():
                final_result = build(current, spec)
    return final_result, timer.laps


def record_dynamic(path=None, *, quick: bool = False) -> dict:
    """Measure incremental vs rebuild per-update cost; write ``BENCH_dynamic.json``."""
    if path is None:
        path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_dynamic.json"
    if quick:
        # Small enough for a CI smoke, big enough that a rebuild is not noise.
        configs = [("vertex", 60, 150, 20, 10, 3, 6),
                   ("edge", 40, 100, 10, 10, 3, 4)]
    else:
        # The acceptance shape: >= 200 mixed updates on a 100+-node graph.
        configs = [("vertex", 120, 300, 50, 12, 4, 10),
                   ("edge", 100, 240, 50, 12, 4, 10)]
    report = {
        "benchmark": "incremental spanner maintenance vs full rebuild per update",
        "workload": "update_churn: sessions of pinned-fault query batches, "
                    "each opened by a burst of edge updates",
        "incremental": "LiveEngine(DynamicSpanner): acceptance test per "
                       "insert, dirty-region repair per delete/reweight",
        "rebuild": "build(graph, spec) from scratch after each update "
                   "(timed on a deterministic sample)",
        "quick": quick,
        "cases": [],
    }
    for (fault_model, n, m, sessions, queries_per_session,
         updates_per_session, sample_every) in configs:
        spec = BuildSpec("ft-greedy", stretch=3, max_faults=1,
                         fault_model=fault_model)
        graph, events = _churn_case(n, m, sessions, queries_per_session,
                                    updates_per_session,
                                    fault_model=fault_model, seed=2026)
        updates = [event for event in events if not isinstance(event, Query)]
        queries = len(events) - len(updates)

        live, wall_s = _run_incremental(graph, events, spec)
        maintainer = live.dynamic
        certification = maintainer.certify(method="sampled", samples=60, rng=0)
        assert certification.ok, (
            f"maintained spanner failed certification on {fault_model}")

        rebuilt, rebuild_seconds = _run_rebuild_baseline(
            graph, updates, spec, sample_every)
        rebuilt_report = is_ft_spanner(
            maintainer.graph, rebuilt.spanner, spec.stretch, spec.max_faults,
            fault_model, method="sampled", samples=60, rng=0)
        assert rebuilt_report.ok, "rebuild baseline failed certification"

        incremental_per_update = maintainer.maintenance_seconds / len(updates)
        rebuild_per_update = sum(rebuild_seconds) / len(rebuild_seconds)
        report["cases"].append({
            "fault_model": fault_model,
            "n": n, "m": m, "max_faults": 1, "stretch": 3,
            "updates": len(updates),
            "queries_served": queries,
            "update_counts": maintainer.journal.counts(),
            "incremental_s_per_update": round(incremental_per_update, 6),
            "rebuild_s_per_update": round(rebuild_per_update, 6),
            "rebuilds_timed": len(rebuild_seconds),
            "speedup": round(rebuild_per_update / incremental_per_update, 1),
            "wall_s_with_queries": round(wall_s, 3),
            "queries_per_second": round(queries / wall_s, 0) if wall_s else 0,
            "cache_invalidations": live.cache_invalidations,
            "repairs": maintainer.repairs,
            "dirty_selectivity": round(
                maintainer.stats()["dirty_selectivity"], 3),
            "maintained_edges": maintainer.spanner.number_of_edges(),
            "rebuilt_edges": rebuilt.spanner.number_of_edges(),
            "size_vs_rebuild": round(
                maintainer.spanner.number_of_edges()
                / rebuilt.spanner.number_of_edges(), 3),
            "certified": True,
        })
    headline = next(case for case in report["cases"]
                    if case["fault_model"] == "vertex")
    report["speedup"] = headline["speedup"]
    report["size_vs_rebuild"] = headline["size_vs_rebuild"]
    report["rebuild_floor_s"] = REBUILD_FLOOR_S
    # Mirror bench_verify's gating: only a machine/config where a rebuild
    # costs real time can demonstrate the speedup meaningfully; the
    # certification assertions above hold either way.
    report["speedup_asserted"] = (
        headline["rebuild_s_per_update"] >= REBUILD_FLOOR_S)
    if report["speedup_asserted"]:
        assert report["speedup"] >= SPEEDUP_FLOOR, (
            f"incremental maintenance speedup regressed below "
            f"{SPEEDUP_FLOOR}x: {report['speedup']}x")
    pathlib.Path(path).write_text(json.dumps(report, indent=2) + "\n")
    return report


# ---------------------------------------------------------------------------
# pytest entries (invariant + speed smoke when run explicitly)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_churn_case():
    spec = BuildSpec("ft-greedy", stretch=3, max_faults=1)
    graph, events = _churn_case(24, 60, 6, 8, 3, fault_model="vertex",
                                seed=99)
    return graph, events, spec


@pytest.mark.benchmark(group="dynamic")
def test_incremental_churn(benchmark, small_churn_case):
    graph, events, spec = small_churn_case
    live = benchmark(lambda: _run_incremental(graph, events, spec)[0])
    report = is_ft_spanner(live.dynamic.graph, live.dynamic.spanner, 3, 1,
                           "vertex", method="exhaustive")
    assert report.ok


@pytest.mark.benchmark(group="dynamic")
def test_rebuild_churn_baseline(benchmark, small_churn_case):
    graph, events, spec = small_churn_case
    updates = [event for event in events if not isinstance(event, Query)]
    result, _ = benchmark(
        lambda: _run_rebuild_baseline(graph, updates, spec, sample_every=6))
    assert result.spanner.number_of_edges() > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke configuration (small graphs, seconds)")
    parser.add_argument("--output", default=None,
                        help="where to write BENCH_dynamic.json")
    args = parser.parse_args()
    outcome = record_dynamic(args.output, quick=args.quick)
    for case in outcome["cases"]:
        print(f"{case['fault_model']:6s} n={case['n']} m={case['m']} "
              f"({case['updates']} updates, {case['queries_served']} queries): "
              f"incremental {case['incremental_s_per_update'] * 1000:.2f}ms/update, "
              f"rebuild {case['rebuild_s_per_update'] * 1000:.1f}ms/update "
              f"-> {case['speedup']}x (size factor "
              f"{case['size_vs_rebuild']}, certified)")
    gate = ("asserted >= 5x" if outcome["speedup_asserted"]
            else "not asserted: rebuilds too cheap to time reliably")
    print(f"headline (vertex) speedup: {outcome['speedup']}x [{gate}]")
