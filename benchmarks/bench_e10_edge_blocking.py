"""E10 — edge blocking sets on the lower-bound graph (the EFT limitation).

Regenerates the E10 table of EXPERIMENTS.md.  The assertions check the closing
remark of Section 2 on every instance: the explicitly constructed edge
blocking set has at most ``f · |E|`` pairs and blocks every cycle on at most
``k + 1`` edges (verified against exhaustive short-cycle enumeration).
"""

import pytest

from repro.experiments import e10_edge_blocking


@pytest.mark.benchmark(group="E10")
def test_e10_edge_blocking(benchmark, experiment_bench):
    config = e10_edge_blocking.Config.quick()
    table = experiment_bench(e10_edge_blocking, config)
    assert len(table) == len(config.cases)
    for row in table.rows:
        assert row["within_bound"]
        assert row["verified"] in ("ok", "skipped")
    assert any(row["verified"] == "ok" for row in table.rows)
