"""E1 — spanner size vs n (Corollary 2 growth in n).

Regenerates the E1 table of EXPERIMENTS.md: FT greedy spanner sizes on
``G(n, m)`` graphs of growing ``n``, compared against the
``n^{1+1/k} f^{1-1/k}`` curve.  The assertions encode the claim's *shape*: the
size/bound ratio stays bounded and the fitted log–log slope is far below 2
(the trivial bound's slope).
"""

import pytest

from repro.experiments import e1_size_vs_n


@pytest.mark.benchmark(group="E1")
def test_e1_size_vs_n(benchmark, experiment_bench):
    config = e1_size_vs_n.Config.quick()
    table = experiment_bench(e1_size_vs_n, config)
    assert len(table) == len(config.sizes) * len(config.fault_budgets)
    assert all(ratio < 3.0 for ratio in table.column("ratio"))
    assert all(slope < 1.9 for slope in table.column("fitted_slope"))
