"""E2 — spanner size vs fault budget f (Corollary 2 sublinear growth in f).

Regenerates the E2 table of EXPERIMENTS.md.  The assertions check that the
size grows monotonically but strictly sublinearly in ``f`` (going from
``f = 1`` to ``f = 3`` costs far less than 3x), which is the qualitative
content of the ``f^{1-1/k}`` factor.
"""

import pytest

from repro.experiments import e2_size_vs_f


@pytest.mark.benchmark(group="E2")
def test_e2_size_vs_f(benchmark, experiment_bench):
    config = e2_size_vs_f.Config.quick()
    table = experiment_bench(e2_size_vs_f, config)
    sizes = table.column("spanner_edges")
    budgets = table.column("f")
    assert sizes == sorted(sizes)
    size_by_f = dict(zip(budgets, sizes))
    if 1 in size_by_f and 3 in size_by_f:
        assert size_by_f[3] < 2.5 * size_by_f[1]
