"""E3 — FT greedy versus prior constructions (the paper's headline comparison).

Regenerates the E3 table of EXPERIMENTS.md.  The assertions encode "who wins":
the FT greedy spanner is at most as large as the peeling union, strictly
smaller than the sampling union and the trivial spanner, and passes the
sampled fault-tolerance check, while the non-FT greedy floor is smaller still.
"""

import pytest

from repro.experiments import e3_vs_baselines


@pytest.mark.benchmark(group="E3")
def test_e3_vs_baselines(benchmark, experiment_bench):
    config = e3_vs_baselines.Config.quick()
    table = experiment_bench(e3_vs_baselines, config)
    for f in config.fault_budgets:
        rows = {row["algorithm"]: row for row in table.rows if row["f"] == f}
        ft = rows["ft-greedy"]["spanner_edges"]
        assert ft <= rows["peeling-union"]["spanner_edges"]
        assert ft < rows["sampling-union"]["spanner_edges"]
        assert ft < rows["trivial"]["spanner_edges"]
        assert rows["greedy (f=0)"]["spanner_edges"] <= ft
        assert rows["ft-greedy"]["ft_check"] == "ok"
