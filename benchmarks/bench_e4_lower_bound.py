"""E4 — the BDPW lower-bound instances: Theorem 1 is tight for vertex faults.

Regenerates the E4 table of EXPERIMENTS.md.  The assertions check that every
sampled edge of each blow-up instance is provably forced (forced fraction 1.0)
and that the FT greedy algorithm keeps all of them, i.e. the upper bound is
met by a matching family of instances.
"""

import pytest

from repro.experiments import e4_lower_bound


@pytest.mark.benchmark(group="E4")
def test_e4_lower_bound(benchmark, experiment_bench):
    config = e4_lower_bound.Config.quick()
    table = experiment_bench(e4_lower_bound, config)
    assert len(table) == len(config.cases)
    for row in table.rows:
        assert row["forced_fraction"] == 1.0
        assert row["greedy_keeps"] == row["edges"]
        assert row["edges_over_theorem1"] <= 1.0
