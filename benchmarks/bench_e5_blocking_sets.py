"""E5 — Lemma 3: blocking sets extracted from FT greedy runs.

Regenerates the E5 table of EXPERIMENTS.md.  The assertions check the lemma's
two claims on every row: the extracted blocking set has at most ``f · |E(H)|``
pairs, and (where the exhaustive cycle oracle ran) it really blocks every
cycle on at most ``k + 1`` edges.
"""

import pytest

from repro.experiments import e5_blocking_sets


@pytest.mark.benchmark(group="E5")
def test_e5_blocking_sets(benchmark, experiment_bench):
    config = e5_blocking_sets.Config.quick()
    table = experiment_bench(e5_blocking_sets, config)
    assert len(table) == len(config.workloads) * len(config.fault_budgets)
    for row in table.rows:
        assert row["within_bound"]
        assert row["verified"] in ("ok", "skipped")
        assert row["pairs_per_edge"] <= row["f"]
    assert any(row["verified"] == "ok" for row in table.rows)
