"""E6 — Lemma 4: subsampling blocked graphs down to high-girth subgraphs.

Regenerates the E6 table of EXPERIMENTS.md.  The assertions check that at the
lemma's prescribed sample size (multiplier 1.0) the pruned subgraph always has
girth ``> k + 1``, and that the best-of-trials edge count is positive whenever
the lemma's expectation bound is (the Ω(m/f²) part, up to the sampling noise
recorded in the table).
"""

import pytest

from repro.experiments import e6_subsampling


@pytest.mark.benchmark(group="E6")
def test_e6_subsample(benchmark, experiment_bench):
    config = e6_subsampling.Config.quick()
    table = experiment_bench(e6_subsampling, config)
    prescribed = [row for row in table.rows if row["sample_multiplier"] == 1.0]
    assert prescribed
    for row in prescribed:
        assert row["girth_ok"]
        if row["expected_lb"] > 1:
            assert row["surviving_edges"] > 0
