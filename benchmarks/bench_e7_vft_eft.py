"""E7 — vertex faults versus edge faults under the same greedy algorithm.

Regenerates the E7 table of EXPERIMENTS.md.  The assertions check the
qualitative relationship the paper discusses: the EFT output never exceeds the
VFT output on the same instance, and both dominate the non-FT greedy floor.
"""

import pytest

from repro.experiments import e7_vft_vs_eft


@pytest.mark.benchmark(group="E7")
def test_e7_vft_vs_eft(benchmark, experiment_bench):
    config = e7_vft_vs_eft.Config.quick()
    table = experiment_bench(e7_vft_vs_eft, config)
    assert len(table) == len(config.workloads) * len(config.fault_budgets)
    for row in table.rows:
        assert row["eft_edges"] <= row["vft_edges"]
        assert row["greedy_f0"] <= row["eft_edges"]
        assert row["vft_edges"] <= row["m"]
