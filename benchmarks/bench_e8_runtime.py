"""E8 — fault-check oracle runtime (the paper's open problem, and our ablation).

Regenerates the E8 table of EXPERIMENTS.md.  The assertions check that the
exhaustive oracle needs at least as many bounded-distance queries as the
branch-and-bound oracle while producing the same spanner, and that the
polynomial heuristic is cheapest — the speed/exactness trade-off the paper's
open question is about.
"""

import pytest

from repro.experiments import e8_runtime


@pytest.mark.benchmark(group="E8")
def test_e8_runtime(benchmark, experiment_bench):
    config = e8_runtime.Config.quick()
    table = experiment_bench(e8_runtime, config)
    by_key = {(row["f"], row["oracle"]): row for row in table.rows}

    # At f = 1 all three oracles ran: exhaustive >= branch-and-bound in work,
    # and both exact oracles agree on the spanner size.
    exhaustive = by_key[(1, "exhaustive")]
    bnb = by_key[(1, "branch-and-bound")]
    assert exhaustive["distance_queries"] >= bnb["distance_queries"]
    assert exhaustive["spanner_edges"] == bnb["spanner_edges"]

    for f in config.fault_budgets:
        exact_row = by_key[(f, "branch-and-bound")]
        heuristic_row = by_key[(f, "greedy-path-packing")]
        assert heuristic_row["distance_queries"] <= exact_row["distance_queries"]
        assert exact_row["ft_check"] == "ok"
