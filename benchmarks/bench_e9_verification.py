"""E9 — fault-tolerance verification: Definition 2 holds, and matters.

Regenerates the E9 table of EXPERIMENTS.md.  The assertions check both
directions of the story: every FT greedy row stays within the required
stretch under all checked fault sets, and every non-FT greedy row is broken
by some fault set (usually disconnecting a pair entirely).
"""

import pytest

from repro.experiments import e9_fault_verification


@pytest.mark.benchmark(group="E9")
def test_e9_verification(benchmark, experiment_bench):
    config = e9_fault_verification.Config.quick()
    table = experiment_bench(e9_fault_verification, config)
    for row in table.rows:
        if row["algorithm"] == "ft-greedy":
            assert row["within_stretch"]
        else:
            assert not row["within_stretch"]
