"""Serving-layer benchmark: batched query engine vs one Dijkstra per query.

The engine's pitch is that real query traffic repeats itself — skewed
sources, a bounded set of concurrently failed elements — so grouping by
``(source, fault set)`` plus caching distance vectors beats answering each
query with its own masked Dijkstra.  This benchmark measures exactly that
claim on the synthetic traffic shapes of :mod:`repro.engine.workload`:

* **naive** — the pre-engine serving loop: one
  :func:`~repro.paths.kernels.bounded_dijkstra_csr` call per query with a
  freshly built fault mask (what a caller without the engine would write);
* **engine** — :class:`~repro.engine.engine.QueryEngine` fed the same
  queries in service-sized batches.

Answers are asserted identical before timing.  Running as a script records
the comparison in ``BENCH_engine.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick]

The ``--quick`` mode is the CI smoke configuration (seconds, small graph);
the default mode is larger.  The recorded ``speedup`` on the Zipf workload
is the headline serving number and is expected to stay >= 3x.
"""

import argparse
import json
import math
import pathlib

import pytest

from repro.engine.engine import QueryEngine
from repro.engine.snapshot import SpannerSnapshot
from repro.engine.workload import (
    fault_churn_sessions,
    split_batches,
    uniform_workload,
    zipf_workload,
)
from repro.faults.models import get_fault_model
from repro.graph import generators
from repro.graph.csr import csr_snapshot
from repro.paths.kernels import bounded_dijkstra_csr
from repro.spanners.greedy import greedy_spanner
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer
from repro.utils.timing import best_of

BATCH_SIZE = 256


def _serving_case(n: int, m: int, num_queries: int, *, shape: str = "zipf",
                  max_faults: int = 2, seed: int = 2025):
    """A spanner snapshot plus a query stream of the given traffic shape."""
    graph = generators.gnm(n, m, rng=seed, connected=True, weighted=True)
    result = greedy_spanner(graph, 3)
    snapshot = SpannerSnapshot.from_result(result)
    snapshot.max_faults = max_faults
    if shape == "zipf":
        queries = zipf_workload(snapshot.spanner, num_queries, skew=1.3,
                                max_faults=max_faults, fault_pool=4, rng=seed)
    elif shape == "churn":
        # Long sessions: the paper's serving regime, faults churn slowly
        # relative to the query rate.
        sessions = max(1, num_queries // 1000)
        queries = fault_churn_sessions(snapshot.spanner, sessions,
                                       num_queries // sessions,
                                       max_faults=max_faults, rng=seed)
    else:
        queries = uniform_workload(snapshot.spanner, num_queries,
                                   max_faults=max_faults, rng=seed)
    return snapshot, queries


def _run_naive(snapshot, queries):
    """One masked single-target Dijkstra per query, fresh mask every time."""
    csr = csr_snapshot(snapshot.spanner)
    model = get_fault_model(snapshot.fault_model)
    index_of = csr.index_of
    answers = []
    for query in queries:
        mask = model.new_mask(csr)
        for index in model.mask_indices(csr, query.faults):
            mask[index] = 1
        vertex_mask, edge_mask = model.kernel_masks(mask)
        answers.append(bounded_dijkstra_csr(
            csr, index_of[query.source], index_of[query.target], math.inf,
            vertex_mask, edge_mask))
    return answers


def _run_engine(snapshot, queries, *, cache_size=1024):
    """The same queries through a fresh engine in service-sized batches."""
    engine = QueryEngine(snapshot, cache_size=cache_size)
    answers = []
    for batch in split_batches(queries, BATCH_SIZE):
        answers.extend(engine.distances_batch(batch))
    return answers, engine


# ---------------------------------------------------------------------------
# pytest-benchmark entries (regression tracking)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def serving_case():
    return _serving_case(200, 1400, 2000)


@pytest.mark.benchmark(group="engine")
def test_naive_per_query_loop(benchmark, serving_case):
    snapshot, queries = serving_case
    answers = benchmark(lambda: _run_naive(snapshot, queries))
    assert len(answers) == len(queries)


@pytest.mark.benchmark(group="engine")
def test_batched_engine(benchmark, serving_case):
    snapshot, queries = serving_case
    expected = _run_naive(snapshot, queries)
    answers = benchmark(lambda: _run_engine(snapshot, queries)[0])
    assert answers == expected  # batching must never change an answer


# ---------------------------------------------------------------------------
# Script mode: record the comparison in BENCH_engine.json
# ---------------------------------------------------------------------------

def measure_instrumentation_costs() -> dict:
    """Per-operation cost of the metrics/tracing hot-path primitives.

    Measured on a throwaway registry and a *disabled* tracer — exactly what
    an instrumented-but-idle run pays per site.
    """
    registry = MetricsRegistry()
    counter = registry.counter("bench.inc")
    histogram = registry.histogram("bench.observe")
    tracer = get_tracer()
    assert not tracer.enabled, "overhead is measured with tracing disabled"
    rounds = 50_000

    def incs():
        for _ in range(rounds):
            counter.inc()

    def observes():
        for _ in range(rounds):
            histogram.observe(0.001)

    def spans():
        for _ in range(rounds):
            with tracer.span("bench.span"):
                pass

    return {
        "counter_inc_ns": best_of(incs, repeats=3) / rounds * 1e9,
        "histogram_observe_ns": best_of(observes, repeats=3) / rounds * 1e9,
        "idle_span_ns": best_of(spans, repeats=3) / rounds * 1e9,
    }


def instrumentation_overhead_pct(stats: dict, engine_s: float,
                                 costs: dict) -> float:
    """Estimated share of ``engine_s`` spent on idle instrumentation.

    Counts the metric operations the engine performs for the measured run
    from its own stats — per batch: three counter bumps, one histogram
    observation, one idle span; per kernel run: one bump and one
    observation; plus one cache-counter bump per group and per fused
    sweep — and prices them at the measured per-op costs.
    """
    batches = stats["batches_planned"]
    kernel_runs = stats["kernel_calls"] + stats["fused_sweeps"]
    incs = 3 * batches + kernel_runs + stats["groups_executed"] \
        + stats["fused_sweeps"]
    observes = batches + kernel_runs
    overhead_s = (incs * costs["counter_inc_ns"]
                  + observes * costs["histogram_observe_ns"]
                  + batches * costs["idle_span_ns"]) * 1e-9
    return overhead_s / engine_s * 100.0


def record_engine_vs_naive(path=None, *, quick: bool = False) -> dict:
    """Measure the engine against the naive loop; write BENCH_engine.json."""
    if path is None:
        path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    if quick:
        configs = [("zipf", 200, 1400, 4000), ("churn", 200, 1400, 4000)]
    else:
        configs = [("zipf", 400, 3200, 10000), ("churn", 400, 3200, 10000),
                   ("uniform", 400, 3200, 4000)]
    report = {
        "benchmark": "batched query engine vs one-Dijkstra-per-query serving loop",
        "naive": "bounded_dijkstra_csr per query, fresh fault mask per query",
        "engine": f"QueryEngine.distances_batch (batch={BATCH_SIZE}, LRU cache)",
        "quick": quick,
        "instrumentation_costs": measure_instrumentation_costs(),
        "cases": [],
    }
    for shape, n, m, num_queries in configs:
        snapshot, queries = _serving_case(n, m, num_queries, shape=shape)
        expected = _run_naive(snapshot, queries)
        answers, engine = _run_engine(snapshot, queries)
        assert answers == expected, f"engine answers diverged on {shape}"
        naive_s = best_of(lambda: _run_naive(snapshot, queries), repeats=3)
        engine_s = best_of(lambda: _run_engine(snapshot, queries)[0],
                           repeats=3)
        stats = engine.stats()
        report["cases"].append({
            "workload": shape,
            "n": n, "m": m,
            "spanner_edges": snapshot.spanner.number_of_edges(),
            "queries": num_queries,
            "naive_ms": round(naive_s * 1e3, 3),
            "engine_ms": round(engine_s * 1e3, 3),
            "naive_qps": round(num_queries / naive_s),
            "engine_qps": round(num_queries / engine_s),
            "speedup": round(naive_s / engine_s, 2),
            "kernel_calls": stats["kernel_calls"],
            "kernel_calls_saved": stats["kernel_calls_saved"],
            "cache_hit_rate": round(stats["cache"]["hit_rate"], 4),
            "instrumentation_overhead_pct": round(
                instrumentation_overhead_pct(
                    stats, engine_s, report["instrumentation_costs"]), 4),
        })
    headline = next(c for c in report["cases"] if c["workload"] == "zipf")
    report["speedup"] = headline["speedup"]
    assert report["speedup"] >= 3.0, (
        f"batched engine speedup regressed below 3x: {report['speedup']}x"
    )
    report["instrumentation_overhead_pct"] = max(
        case["instrumentation_overhead_pct"] for case in report["cases"])
    assert report["instrumentation_overhead_pct"] <= 2.0, (
        "idle instrumentation overhead exceeded the 2% budget: "
        f"{report['instrumentation_overhead_pct']}%"
    )
    pathlib.Path(path).write_text(json.dumps(report, indent=2) + "\n")
    return report


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke configuration (small graph, seconds)")
    parser.add_argument("--output", default=None,
                        help="where to write BENCH_engine.json")
    args = parser.parse_args()
    outcome = record_engine_vs_naive(args.output, quick=args.quick)
    for case in outcome["cases"]:
        print(f"{case['workload']:8s} n={case['n']} queries={case['queries']}: "
              f"naive {case['naive_ms']}ms ({case['naive_qps']}/s) "
              f"engine {case['engine_ms']}ms ({case['engine_qps']}/s) "
              f"-> {case['speedup']}x (cache hit {case['cache_hit_rate']:.1%}, "
              f"{case['kernel_calls_saved']} kernel calls saved)")
    print(f"headline (zipf) speedup: {outcome['speedup']}x")
    print(f"idle instrumentation overhead: "
          f"{outcome['instrumentation_overhead_pct']}% (budget 2%)")
