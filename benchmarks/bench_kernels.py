"""Micro-benchmarks of the library's inner kernels.

Not tied to a specific experiment table; these track the primitives whose
performance determines every experiment's wall clock: bounded Dijkstra,
the branch-and-bound fault check, a full FT greedy construction, blocking-set
extraction + Lemma 4 sampling, and girth computation.  Useful for spotting
performance regressions when the library is modified.

The ``csr-vs-dict`` group pits the CSR kernels (:mod:`repro.paths.kernels`,
fault masks) against the dict-based reference path (``ExclusionView`` + the
view fallback in :mod:`repro.paths.dijkstra`) on bounded Dijkstra queries
under vertex fault masks — the exact shape of the fault-check oracle's inner
loop.  Running this file as a script records the comparison (and the measured
speedup) in ``BENCH_kernels.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_kernels.py
"""

import json
import pathlib
import time

import pytest

from repro.graph import generators
from repro.graph.csr import csr_snapshot
from repro.graph.views import ExclusionView
from repro.paths.dijkstra import bounded_distance
from repro.paths.kernels import bounded_dijkstra_csr
from repro.spanners.blocking import extract_blocking_set, lemma4_subsample
from repro.spanners.fault_check import BranchAndBoundOracle
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.graph.girth import girth


@pytest.fixture(scope="module")
def kernel_graph():
    """A medium dense instance shared by the kernel benchmarks."""
    return generators.gnm(80, 1200, rng=2024, connected=True)


@pytest.mark.benchmark(group="kernels")
def test_bounded_dijkstra(benchmark, kernel_graph):
    nodes = list(kernel_graph.nodes())
    pairs = [(nodes[i], nodes[-1 - i]) for i in range(10)]

    def run():
        return [bounded_distance(kernel_graph, u, v, 3.0) for u, v in pairs]

    results = benchmark(run)
    assert len(results) == 10


@pytest.mark.benchmark(group="kernels")
def test_fault_check_oracle(benchmark, kernel_graph):
    oracle = BranchAndBoundOracle()
    nodes = list(kernel_graph.nodes())
    pairs = [(nodes[i], nodes[-1 - i]) for i in range(5)]

    def run():
        return [
            oracle.find_breaking_fault_set(kernel_graph, u, v, 3.0, 2, "vertex")
            for u, v in pairs
        ]

    results = benchmark(run)
    assert len(results) == 5


@pytest.mark.benchmark(group="kernels")
def test_greedy_construction(benchmark, kernel_graph):
    result = benchmark(lambda: greedy_spanner(kernel_graph, 3))
    assert result.size < kernel_graph.number_of_edges()


@pytest.mark.benchmark(group="kernels")
def test_ft_greedy_construction(benchmark, kernel_graph):
    holder = {}

    def run():
        holder["result"] = ft_greedy_spanner(kernel_graph, 3, 1)
        return holder["result"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert holder["result"].size < kernel_graph.number_of_edges()


@pytest.mark.benchmark(group="kernels")
def test_blocking_extraction_and_lemma4(benchmark, kernel_graph):
    result = ft_greedy_spanner(kernel_graph, 3, 2)

    def run():
        blocking = extract_blocking_set(result)
        return lemma4_subsample(result.spanner, blocking, 2, rng=0, trials=3)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="kernels")
def test_girth_computation(benchmark, kernel_graph):
    spanner = greedy_spanner(kernel_graph, 3).spanner
    value = benchmark(lambda: girth(spanner, cutoff=6))
    assert value > 4


# ---------------------------------------------------------------------------
# CSR kernels vs the dict/view reference path
# ---------------------------------------------------------------------------

def _masked_query_case(n: int, m: int, *, num_pairs: int = 25, num_faults: int = 4,
                       budget: float = 25.0):
    """A masked bounded-Dijkstra workload shaped like the oracle hot loop."""
    graph = generators.gnm(n, m, rng=99, connected=True, weighted=True)
    nodes = list(graph.nodes())
    pairs = [(nodes[i], nodes[-1 - i]) for i in range(num_pairs)]
    faults = [nodes[(7 * i) % n] for i in range(num_faults)]
    return graph, pairs, faults, budget


def _run_view(graph, pairs, faults, budget):
    # A fresh view per query, as the oracles built one per candidate fault set.
    return [
        bounded_distance(ExclusionView(graph, excluded_nodes=faults), u, v, budget)
        for u, v in pairs
    ]


def _run_csr(graph, pairs, faults, budget):
    csr = csr_snapshot(graph)
    vmask = csr.vertex_fault_mask(faults)
    index_of = csr.index_of
    return [
        bounded_dijkstra_csr(csr, index_of[u], index_of[v], budget, vmask)
        for u, v in pairs
    ]


@pytest.fixture(scope="module")
def masked_case():
    return _masked_query_case(600, 4800)


@pytest.mark.benchmark(group="csr-vs-dict")
def test_bounded_dijkstra_masked_dict_view(benchmark, masked_case):
    graph, pairs, faults, budget = masked_case
    results = benchmark(lambda: _run_view(graph, pairs, faults, budget))
    assert len(results) == len(pairs)


@pytest.mark.benchmark(group="csr-vs-dict")
def test_bounded_dijkstra_masked_csr_kernel(benchmark, masked_case):
    graph, pairs, faults, budget = masked_case
    expected = _run_view(graph, pairs, faults, budget)
    results = benchmark(lambda: _run_csr(graph, pairs, faults, budget))
    assert results == expected  # masks must replicate the view semantics


# ---------------------------------------------------------------------------
# Script mode: record the CSR-vs-dict comparison in BENCH_kernels.json
# ---------------------------------------------------------------------------

def _time_best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def record_csr_vs_dict(path: "pathlib.Path | str" = None) -> dict:
    """Measure kernels against the dict/view path and write BENCH_kernels.json."""
    if path is None:
        path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    report = {"benchmark": "bounded Dijkstra under vertex fault masks",
              "reference": "ExclusionView + dict-based bounded_distance",
              "kernel": "bounded_dijkstra_csr over cached CSR snapshot",
              "cases": []}
    for n, m in ((500, 4000), (1000, 8000)):
        graph, pairs, faults, budget = _masked_query_case(n, m)
        assert _run_view(graph, pairs, faults, budget) == \
            _run_csr(graph, pairs, faults, budget)
        view_s = _time_best_of(lambda: _run_view(graph, pairs, faults, budget))
        csr_s = _time_best_of(lambda: _run_csr(graph, pairs, faults, budget))
        report["cases"].append({
            "n": n, "m": m, "queries": len(pairs), "faults": len(faults),
            "budget": budget,
            "dict_view_ms": round(view_s * 1e3, 3),
            "csr_kernel_ms": round(csr_s * 1e3, 3),
            "speedup": round(view_s / csr_s, 2),
        })
    pathlib.Path(path).write_text(json.dumps(report, indent=2) + "\n")
    return report


if __name__ == "__main__":
    outcome = record_csr_vs_dict()
    for case in outcome["cases"]:
        print(f"n={case['n']} m={case['m']}: dict/view {case['dict_view_ms']}ms "
              f"csr kernel {case['csr_kernel_ms']}ms -> {case['speedup']}x")
