"""Micro-benchmarks of the library's inner kernels.

Not tied to a specific experiment table; these track the primitives whose
performance determines every experiment's wall clock: bounded Dijkstra,
the branch-and-bound fault check, a full FT greedy construction, blocking-set
extraction + Lemma 4 sampling, and girth computation.  Useful for spotting
performance regressions when the library is modified.
"""

import pytest

from repro.graph import generators
from repro.paths.dijkstra import bounded_distance
from repro.spanners.blocking import extract_blocking_set, lemma4_subsample
from repro.spanners.fault_check import BranchAndBoundOracle
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.graph.girth import girth


@pytest.fixture(scope="module")
def kernel_graph():
    """A medium dense instance shared by the kernel benchmarks."""
    return generators.gnm(80, 1200, rng=2024, connected=True)


@pytest.mark.benchmark(group="kernels")
def test_bounded_dijkstra(benchmark, kernel_graph):
    nodes = list(kernel_graph.nodes())
    pairs = [(nodes[i], nodes[-1 - i]) for i in range(10)]

    def run():
        return [bounded_distance(kernel_graph, u, v, 3.0) for u, v in pairs]

    results = benchmark(run)
    assert len(results) == 10


@pytest.mark.benchmark(group="kernels")
def test_fault_check_oracle(benchmark, kernel_graph):
    oracle = BranchAndBoundOracle()
    nodes = list(kernel_graph.nodes())
    pairs = [(nodes[i], nodes[-1 - i]) for i in range(5)]

    def run():
        return [
            oracle.find_breaking_fault_set(kernel_graph, u, v, 3.0, 2, "vertex")
            for u, v in pairs
        ]

    results = benchmark(run)
    assert len(results) == 5


@pytest.mark.benchmark(group="kernels")
def test_greedy_construction(benchmark, kernel_graph):
    result = benchmark(lambda: greedy_spanner(kernel_graph, 3))
    assert result.size < kernel_graph.number_of_edges()


@pytest.mark.benchmark(group="kernels")
def test_ft_greedy_construction(benchmark, kernel_graph):
    holder = {}

    def run():
        holder["result"] = ft_greedy_spanner(kernel_graph, 3, 1)
        return holder["result"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert holder["result"].size < kernel_graph.number_of_edges()


@pytest.mark.benchmark(group="kernels")
def test_blocking_extraction_and_lemma4(benchmark, kernel_graph):
    result = ft_greedy_spanner(kernel_graph, 3, 2)

    def run():
        blocking = extract_blocking_set(result)
        return lemma4_subsample(result.spanner, blocking, 2, rng=0, trials=3)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="kernels")
def test_girth_computation(benchmark, kernel_graph):
    spanner = greedy_spanner(kernel_graph, 3).spanner
    value = benchmark(lambda: girth(spanner, cutoff=6))
    assert value > 4
