"""Micro-benchmarks of the library's inner kernels.

Not tied to a specific experiment table; these track the primitives whose
performance determines every experiment's wall clock: bounded Dijkstra,
the branch-and-bound fault check, a full FT greedy construction, blocking-set
extraction + Lemma 4 sampling, and girth computation.  Useful for spotting
performance regressions when the library is modified.

The ``csr-vs-dict`` group pits the CSR kernels (:mod:`repro.paths.kernels`,
fault masks) against the dict-based reference path (``ExclusionView`` + the
view fallback in :mod:`repro.paths.dijkstra`) on bounded Dijkstra queries
under vertex fault masks — the exact shape of the fault-check oracle's inner
loop.  Running this file as a script records the comparison (and the measured
speedup) in ``BENCH_kernels.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_kernels.py
"""

import json
import pathlib

import pytest

from repro.graph import generators
from repro.graph.csr import csr_snapshot
from repro.graph.views import ExclusionView
from repro.paths.dijkstra import bounded_distance
from repro.paths.kernels import bounded_dijkstra_csr
from repro.spanners.blocking import extract_blocking_set, lemma4_subsample
from repro.spanners.fault_check import BranchAndBoundOracle
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.utils.timing import best_of
from repro.graph.girth import girth


@pytest.fixture(scope="module")
def kernel_graph():
    """A medium dense instance shared by the kernel benchmarks."""
    return generators.gnm(80, 1200, rng=2024, connected=True)


@pytest.mark.benchmark(group="kernels")
def test_bounded_dijkstra(benchmark, kernel_graph):
    nodes = list(kernel_graph.nodes())
    pairs = [(nodes[i], nodes[-1 - i]) for i in range(10)]

    def run():
        return [bounded_distance(kernel_graph, u, v, 3.0) for u, v in pairs]

    results = benchmark(run)
    assert len(results) == 10


@pytest.mark.benchmark(group="kernels")
def test_fault_check_oracle(benchmark, kernel_graph):
    oracle = BranchAndBoundOracle()
    nodes = list(kernel_graph.nodes())
    pairs = [(nodes[i], nodes[-1 - i]) for i in range(5)]

    def run():
        return [
            oracle.find_breaking_fault_set(kernel_graph, u, v, 3.0, 2, "vertex")
            for u, v in pairs
        ]

    results = benchmark(run)
    assert len(results) == 5


@pytest.mark.benchmark(group="kernels")
def test_greedy_construction(benchmark, kernel_graph):
    result = benchmark(lambda: greedy_spanner(kernel_graph, 3))
    assert result.size < kernel_graph.number_of_edges()


@pytest.mark.benchmark(group="kernels")
def test_ft_greedy_construction(benchmark, kernel_graph):
    holder = {}

    def run():
        holder["result"] = ft_greedy_spanner(kernel_graph, 3, 1)
        return holder["result"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert holder["result"].size < kernel_graph.number_of_edges()


@pytest.mark.benchmark(group="kernels")
def test_blocking_extraction_and_lemma4(benchmark, kernel_graph):
    result = ft_greedy_spanner(kernel_graph, 3, 2)

    def run():
        blocking = extract_blocking_set(result)
        return lemma4_subsample(result.spanner, blocking, 2, rng=0, trials=3)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="kernels")
def test_girth_computation(benchmark, kernel_graph):
    spanner = greedy_spanner(kernel_graph, 3).spanner
    value = benchmark(lambda: girth(spanner, cutoff=6))
    assert value > 4


# ---------------------------------------------------------------------------
# CSR kernels vs the dict/view reference path
# ---------------------------------------------------------------------------

def _masked_query_case(n: int, m: int, *, num_pairs: int = 25, num_faults: int = 4,
                       budget: float = 25.0):
    """A masked bounded-Dijkstra workload shaped like the oracle hot loop."""
    graph = generators.gnm(n, m, rng=99, connected=True, weighted=True)
    nodes = list(graph.nodes())
    pairs = [(nodes[i], nodes[-1 - i]) for i in range(num_pairs)]
    faults = [nodes[(7 * i) % n] for i in range(num_faults)]
    return graph, pairs, faults, budget


def _run_view(graph, pairs, faults, budget):
    # A fresh view per query, as the oracles built one per candidate fault set.
    return [
        bounded_distance(ExclusionView(graph, excluded_nodes=faults), u, v, budget)
        for u, v in pairs
    ]


def _run_csr(graph, pairs, faults, budget):
    csr = csr_snapshot(graph)
    vmask = csr.vertex_fault_mask(faults)
    index_of = csr.index_of
    return [
        bounded_dijkstra_csr(csr, index_of[u], index_of[v], budget, vmask)
        for u, v in pairs
    ]


@pytest.fixture(scope="module")
def masked_case():
    return _masked_query_case(600, 4800)


@pytest.mark.benchmark(group="csr-vs-dict")
def test_bounded_dijkstra_masked_dict_view(benchmark, masked_case):
    graph, pairs, faults, budget = masked_case
    results = benchmark(lambda: _run_view(graph, pairs, faults, budget))
    assert len(results) == len(pairs)


@pytest.mark.benchmark(group="csr-vs-dict")
def test_bounded_dijkstra_masked_csr_kernel(benchmark, masked_case):
    graph, pairs, faults, budget = masked_case
    expected = _run_view(graph, pairs, faults, budget)
    results = benchmark(lambda: _run_csr(graph, pairs, faults, budget))
    assert results == expected  # masks must replicate the view semantics


# ---------------------------------------------------------------------------
# Loop vs numpy kernel backends (the registry's 100k-node gate)
# ---------------------------------------------------------------------------

#: The numpy backend must beat the loop backend by at least this factor on
#: the 100k-node SSSP workload (asserted only when the gate arms).
BACKEND_SPEEDUP_FLOOR = 5.0
#: Arm the speedup assertion only when the loop run does real work — on a
#: machine too fast/noisy to measure, the identity check still holds.
_BACKEND_MIN_LOOP_SECONDS = 0.1


def _spine_leaf_graph(num_hosts: int, num_leaves: int, num_spines: int):
    """A spine-leaf fabric: hosts dual-homed to leaves, leaves to every spine.

    The shape behind the registry's 100k-node threshold: huge and shallow
    (diameter ~4), so the vectorized frontier sweep runs a handful of dense
    array passes where the loop kernel pays per-arc Python overhead.
    """
    from repro.graph.core import Graph

    graph = Graph(name=f"spine-leaf(h={num_hosts},l={num_leaves},s={num_spines})")
    for s in range(num_spines):
        graph.add_node(("spine", s))
    for l in range(num_leaves):
        graph.add_node(("leaf", l))
        for s in range(num_spines):
            graph.add_edge(("leaf", l), ("spine", s),
                           1.0 + ((l * 7 + s) % 5) * 0.25)
    for h in range(num_hosts):
        a = h % num_leaves
        b = (h * 13 + 1) % num_leaves
        if b == a:
            b = (b + 1) % num_leaves
        graph.add_edge(("host", h), ("leaf", a), 1.0 + (h % 3) * 0.5)
        graph.add_edge(("host", h), ("leaf", b), 1.0 + (h % 4) * 0.5)
    return graph


def record_loop_vs_numpy(path: "pathlib.Path | str" = None,
                         num_hosts: int = 99_600, num_leaves: int = 400,
                         num_spines: int = 32) -> dict:
    """Time loop vs numpy SSSP on a 100k-node fabric; returns the report.

    Asserts byte identity of the two backends' answers always, and the
    >= ``BACKEND_SPEEDUP_FLOOR`` speedup whenever the gate arms (numpy
    importable and the loop run slow enough to measure).  Folded into
    ``BENCH_kernels.json`` by :func:`record_csr_vs_dict`.
    """
    from repro.paths.registry import AUTO_NODE_THRESHOLD, kernel_backend_names, get_kernels

    graph = _spine_leaf_graph(num_hosts, num_leaves, num_spines)
    csr = csr_snapshot(graph)
    report = {
        "benchmark": "SSSP on a spine-leaf fabric (loop vs numpy kernels)",
        "nodes": csr.num_nodes, "edges": csr.num_edges,
        "auto_threshold": AUTO_NODE_THRESHOLD,
        "gated_to_numpy": csr.num_nodes >= AUTO_NODE_THRESHOLD,
        "speedup_floor": BACKEND_SPEEDUP_FLOOR,
    }
    assert report["gated_to_numpy"], "benchmark instance must cross the gate"
    if "numpy" not in kernel_backend_names():
        report.update({"numpy_available": False, "speedup_asserted": False})
        return report
    loop = get_kernels("loop")
    npk = get_kernels("numpy")
    assert get_kernels("auto").resolve(csr) is npk
    sources = [csr.index_of[("host", 0)], csr.index_of[("leaf", 0)],
               csr.index_of[("spine", 0)]]
    for source in sources:  # identity first, unconditionally
        assert (loop.sssp_dijkstra_csr(csr, source)
                == npk.sssp_dijkstra_csr(csr, source))
    loop_s = best_of(
        lambda: [loop.sssp_dijkstra_csr(csr, s) for s in sources], repeats=2)
    numpy_s = best_of(
        lambda: [npk.sssp_dijkstra_csr(csr, s) for s in sources], repeats=2)
    speedup = loop_s / numpy_s
    report.update({
        "numpy_available": True,
        "sources": len(sources),
        "loop_ms": round(loop_s * 1e3, 1),
        "numpy_ms": round(numpy_s * 1e3, 1),
        "speedup": round(speedup, 2),
        "speedup_asserted": loop_s >= _BACKEND_MIN_LOOP_SECONDS,
    })
    if report["speedup_asserted"]:
        assert speedup >= BACKEND_SPEEDUP_FLOOR, (
            f"numpy kernel speedup regressed below "
            f"{BACKEND_SPEEDUP_FLOOR}x: {speedup:.2f}x")
    return report


@pytest.mark.benchmark(group="kernel-backends")
@pytest.mark.parametrize("backend", ["loop", "numpy"])
def test_sssp_backend(benchmark, backend):
    from repro.paths.registry import get_kernels, kernel_backend_names

    if backend not in kernel_backend_names():
        pytest.skip(f"{backend} backend not available")
    graph = _spine_leaf_graph(4_000, 40, 8)
    csr = csr_snapshot(graph)
    kernels = get_kernels(backend)
    source = csr.index_of[("host", 0)]
    dist, order = benchmark(lambda: kernels.sssp_dijkstra_csr(csr, source))
    assert len(dist) == csr.num_nodes and len(order) > 1


# ---------------------------------------------------------------------------
# Script mode: record the CSR-vs-dict comparison in BENCH_kernels.json
# ---------------------------------------------------------------------------

def record_csr_vs_dict(path: "pathlib.Path | str" = None) -> dict:
    """Measure kernels against the dict/view path and write BENCH_kernels.json."""
    if path is None:
        path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    report = {"benchmark": "bounded Dijkstra under vertex fault masks",
              "reference": "ExclusionView + dict-based bounded_distance",
              "kernel": "bounded_dijkstra_csr over cached CSR snapshot",
              "cases": []}
    for n, m in ((500, 4000), (1000, 8000)):
        graph, pairs, faults, budget = _masked_query_case(n, m)
        assert _run_view(graph, pairs, faults, budget) == \
            _run_csr(graph, pairs, faults, budget)
        view_s = best_of(lambda: _run_view(graph, pairs, faults, budget))
        csr_s = best_of(lambda: _run_csr(graph, pairs, faults, budget))
        report["cases"].append({
            "n": n, "m": m, "queries": len(pairs), "faults": len(faults),
            "budget": budget,
            "dict_view_ms": round(view_s * 1e3, 3),
            "csr_kernel_ms": round(csr_s * 1e3, 3),
            "speedup": round(view_s / csr_s, 2),
        })
    report["kernel_backends"] = record_loop_vs_numpy()
    pathlib.Path(path).write_text(json.dumps(report, indent=2) + "\n")
    return report


if __name__ == "__main__":
    outcome = record_csr_vs_dict()
    for case in outcome["cases"]:
        print(f"n={case['n']} m={case['m']}: dict/view {case['dict_view_ms']}ms "
              f"csr kernel {case['csr_kernel_ms']}ms -> {case['speedup']}x")
    backends = outcome["kernel_backends"]
    if backends.get("numpy_available"):
        print(f"loop vs numpy (n={backends['nodes']} m={backends['edges']}): "
              f"loop {backends['loop_ms']}ms numpy {backends['numpy_ms']}ms "
              f"-> {backends['speedup']}x"
              f"{'' if backends['speedup_asserted'] else ' (not asserted)'}")
    else:
        print("loop vs numpy: numpy unavailable, comparison skipped")
