"""Serving-throughput benchmark: the cross-client coalescing window on vs off.

The daemon's reason to exist is that the group planner's fused sweeps only
amortize *within* one ``distances_batch`` call: a fleet of clients sending
one query at a time gets none of that win.  The coalescing window
(:class:`repro.serve.coalesce.CoalescingWindow`) merges in-flight requests
from all connections into single engine batches, so skewed traffic — many
clients hammering a few popular ``(source, fault-set)`` groups, here a Zipf
source distribution over a small fault pool — collapses back into a few
fused sweeps per merged batch.

This benchmark runs the *real* daemon twice over real sockets with N
concurrent keep-alive HTTP clients replaying the same Zipf workload:
window **on** (a few ms) vs **off** (``--window-ms 0``, every request its
own engine batch).  The result cache is disabled (``cache_size=0``) so the
comparison isolates cross-client batching rather than replay caching, and
the two answer sets must be identical before any timing is trusted.

Running as a script records the comparison in ``BENCH_serve.json`` at the
repository root::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--clients N]

The coalesced throughput is asserted ≥ 2x the uncoalesced one; like
``bench_verify``, the gate arms only on machines with ≥ 2 usable cores
(the recorded ``cores`` / ``speedup_asserted`` fields say whether it was),
because on a starved single-core container wall-clock between a server
thread and a fleet of client threads is too noisy to gate on.
"""

import argparse
import asyncio
import json
import pathlib
import threading
import time

import pytest

from repro.build import BuildSession, BuildSpec
from repro.engine.engine import QueryEngine
from repro.engine.workload import zipf_workload
from repro.graph import generators
from repro.runtime import usable_cpu_count
from repro.serve.client import DaemonClient
from repro.serve.daemon import ServingDaemon

#: Coalesced serving must stay >= this much faster on >= MIN_CORES cores.
SPEEDUP_FLOOR = 2.0
MIN_CORES = 2

#: The armed coalescing window, in milliseconds.
WINDOW_MS = 4.0


def _snapshot(n: int, m: int, *, seed: int = 2026):
    """A trivial-spanner snapshot: zero build cost, realistic sweep cost."""
    graph = generators.gnm(n, m, rng=seed, connected=True, weighted=True)
    spec = BuildSpec(algorithm="trivial", stretch=3, max_faults=1)
    return BuildSession(graph, spec).snapshot()


def _zipf_triples(snapshot, count: int, *, rng: int = 17):
    """Zipf traffic: skewed sources over a 2-deep concurrent fault pool."""
    queries = zipf_workload(snapshot.spanner, count, skew=3.0, max_faults=1,
                            fault_pool=2, rng=rng)
    return [(query.source, query.target, query.faults) for query in queries]


def _drive(snapshot, triples, *, clients: int, window_ms: float):
    """Serve ``triples`` through a real daemon; returns (wall, stats).

    Every client holds one keep-alive connection and replays its shard of
    the workload one ``/v1/distance`` request at a time — the traffic shape
    coalescing exists for.  The wall clock covers the whole fan-out, from
    the start barrier to the last answer.
    """
    from repro.serve.core import EngineCore

    # cache_size=0: measure cross-client batching, not replay caching.
    engine = QueryEngine(snapshot, cache_size=0)
    source, target, _ = triples[0]
    engine.distance(source, target)  # warm the CSR context off the clock
    core = EngineCore(engine, window_seconds=window_ms / 1000.0)
    daemon = ServingDaemon(core)
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.run(install_signals=False)),
        daemon=True)
    thread.start()
    host, port = daemon.wait_until_started()

    answers = [None] * len(triples)
    barrier = threading.Barrier(clients + 1)

    def worker(shard_index: int):
        with DaemonClient(host, port) as client:
            barrier.wait()
            for position in range(shard_index, len(triples), clients):
                source, target, faults = triples[position]
                answers[position] = client.distance(source, target, faults)

    workers = [threading.Thread(target=worker, args=(index,))
               for index in range(clients)]
    for worker_thread in workers:
        worker_thread.start()
    barrier.wait()
    started = time.perf_counter()
    for worker_thread in workers:
        worker_thread.join(timeout=600)
    wall = time.perf_counter() - started
    daemon.request_drain()
    thread.join(timeout=15)
    window = core.window
    stats = {
        "requests": window.requests_coalesced,
        "engine_batches": window.batches_flushed,
        "mean_batch_occupancy": round(
            window.requests_coalesced / max(1, window.batches_flushed), 2),
        "kernel_calls": engine.stats()["kernel_calls"],
    }
    return wall, answers, stats


def record_serve_coalescing(path=None, *, quick: bool = False,
                            clients: int = 24) -> dict:
    """Measure coalesced vs uncoalesced serving; write ``BENCH_serve.json``."""
    if path is None:
        path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    if quick:
        n, m, per_client = 1200, 4800, 12
    else:
        n, m, per_client = 2000, 8000, 20
    snapshot = _snapshot(n, m)
    triples = _zipf_triples(snapshot, clients * per_client)
    # Ground truth from a direct engine: both daemon runs must match it.
    expected = QueryEngine(snapshot, cache_size=0).distances_batch(triples)

    wall_off, answers_off, stats_off = _drive(snapshot, triples,
                                              clients=clients, window_ms=0.0)
    wall_on, answers_on, stats_on = _drive(snapshot, triples,
                                           clients=clients,
                                           window_ms=WINDOW_MS)
    assert answers_on == expected, "coalesced answers diverged from engine"
    assert answers_off == expected, "uncoalesced answers diverged from engine"

    cores = usable_cpu_count()
    count = len(triples)
    speedup = round(wall_off / wall_on, 2)
    report = {
        "benchmark": "daemon throughput: coalescing window on vs off",
        "uncoalesced": "window 0ms: every request is its own engine batch",
        "coalesced": f"window {WINDOW_MS:g}ms: in-flight requests from all "
                     "connections merge into one distances_batch call",
        "quick": quick,
        "graph": {"n": n, "m": m, "spanner": "trivial (H = G)"},
        "workload": {"queries": count, "clients": clients,
                     "distribution": "zipf", "skew": 3.0, "fault_pool": 2,
                     "max_faults": 1},
        "cache_size": 0,
        "cores": cores,
        "uncoalesced_s": round(wall_off, 3),
        "coalesced_s": round(wall_on, 3),
        "uncoalesced_rps": round(count / wall_off, 1),
        "coalesced_rps": round(count / wall_on, 1),
        "speedup": speedup,
        "window_off": stats_off,
        "window_on": stats_on,
        "answers_identical": True,
    }
    report["speedup_asserted"] = cores >= MIN_CORES
    if report["speedup_asserted"]:
        assert speedup >= SPEEDUP_FLOOR, (
            f"cross-client coalescing speedup regressed below "
            f"{SPEEDUP_FLOOR}x: {speedup}x")
    pathlib.Path(path).write_text(json.dumps(report, indent=2) + "\n")
    return report


# ---------------------------------------------------------------------------
# pytest entries (round-trip identity as part of the tier-1 run)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def serving_daemon():
    from repro.serve.core import EngineCore

    snapshot = _snapshot(60, 180, seed=3)
    engine = QueryEngine(snapshot, cache_size=0)
    core = EngineCore(engine, window_seconds=WINDOW_MS / 1000.0)
    daemon = ServingDaemon(core)
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.run(install_signals=False)),
        daemon=True)
    thread.start()
    host, port = daemon.wait_until_started()
    yield engine, host, port
    daemon.request_drain()
    thread.join(timeout=15)


@pytest.mark.benchmark(group="serve")
def test_daemon_distance_round_trip(benchmark, serving_daemon):
    engine, host, port = serving_daemon
    nodes = sorted(engine.snapshot.spanner.nodes())
    with DaemonClient(host, port) as client:
        answer = benchmark(lambda: client.distance(nodes[0], nodes[7]))
    assert answer == engine.distance(nodes[0], nodes[7])


@pytest.mark.benchmark(group="serve")
def test_daemon_batch_round_trip(benchmark, serving_daemon):
    engine, host, port = serving_daemon
    nodes = sorted(engine.snapshot.spanner.nodes())
    queries = [(nodes[i], nodes[-1 - i], (nodes[(3 * i + 2) % len(nodes)],))
               for i in range(1, 7)]
    with DaemonClient(host, port) as client:
        answers = benchmark(lambda: client.distances_batch(queries))
    assert answers == engine.distances_batch(queries)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke configuration (smaller graph, seconds)")
    parser.add_argument("--clients", type=int, default=24,
                        help="number of concurrent client connections")
    parser.add_argument("--output", default=None,
                        help="where to write BENCH_serve.json")
    args = parser.parse_args()
    outcome = record_serve_coalescing(args.output, quick=args.quick,
                                      clients=args.clients)
    on, off = outcome["window_on"], outcome["window_off"]
    print(f"workload: {outcome['workload']['queries']} zipf queries over "
          f"{outcome['workload']['clients']} clients "
          f"(n={outcome['graph']['n']}, cache off)")
    print(f"window off: {outcome['uncoalesced_s']}s "
          f"({outcome['uncoalesced_rps']} req/s, "
          f"{off['engine_batches']} engine batches, "
          f"{off['kernel_calls']} kernel calls)")
    print(f"window on ({WINDOW_MS:g}ms): {outcome['coalesced_s']}s "
          f"({outcome['coalesced_rps']} req/s, "
          f"{on['engine_batches']} engine batches of "
          f"~{on['mean_batch_occupancy']} requests, "
          f"{on['kernel_calls']} kernel calls)")
    gate = ("asserted >= 2x" if outcome["speedup_asserted"]
            else f"not asserted: {outcome['cores']} core(s) available")
    print(f"cross-client coalescing speedup: {outcome['speedup']}x [{gate}]")
