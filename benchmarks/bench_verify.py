"""Verification-runtime benchmark: sharded ``is_ft_spanner`` vs the serial scan.

The exhaustive fault-tolerance check is the library's ground truth and its
exponential bottleneck: every fault set of size ``<= f`` costs a full
stretch sweep.  PR 3's runtime layer shards that sweep over a process pool
(:class:`repro.runtime.ProcessPoolBackend`) with the CSR snapshots shipped
once per worker; this benchmark measures the wall-clock win and — more
importantly — asserts that the parallel run is **bit-identical** to the
serial one: same verdict, same worst stretch, same ``fault_sets_checked``
counter, and the same witness fault set on refuted spanners, for both fault
models.

Running as a script records the comparison in ``BENCH_verify.json`` at the
repository root::

    PYTHONPATH=src python benchmarks/bench_verify.py [--quick] [--workers N]

The ``--quick`` mode is the CI smoke configuration (seconds, small graphs).
The headline number is the exhaustive vertex-fault case at ``f=2`` on 4
workers, expected to stay >= 2x; the assertion is gated on the machine
actually having >= 4 usable cores (the recorded ``cores`` /
``speedup_asserted`` fields say whether the gate was armed), because on a
single-core container a process pool cannot beat the serial scan no matter
how the work is sharded.
"""

import argparse
import json
import pathlib
import time

import pytest

from repro.graph import generators
from repro.runtime import ProcessPoolBackend, SerialBackend, usable_cpu_count
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.spanners.verify import is_ft_spanner

#: The exhaustive check must stay >= this much faster on >= MIN_CORES cores.
SPEEDUP_FLOOR = 2.0
MIN_CORES = 4


def _verification_case(n: int, m: int, *, fault_model: str, seed: int = 2025):
    """A graph plus an FT spanner (verifies OK) and a plain one (refuted)."""
    graph = generators.gnm(n, m, rng=seed, connected=True, weighted=True)
    ft = ft_greedy_spanner(graph, 3, 2, fault_model=fault_model).spanner
    plain = greedy_spanner(graph, 3).spanner
    return graph, ft, plain


def _report_fields(report) -> dict:
    return {
        "ok": report.ok,
        "worst_stretch": report.worst_stretch,
        "fault_sets_checked": report.fault_sets_checked,
        # `is not None`: an empty-fault-set witness is real and must stay
        # distinguishable from "no witness" in the identity assertion.
        "witness": (sorted(report.violating_fault_set, key=repr)
                    if report.violating_fault_set is not None else None),
    }


def _time_best_of(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def record_verify_parallel(path=None, *, quick: bool = False,
                           workers: int = 4) -> dict:
    """Measure sharded vs serial verification; write ``BENCH_verify.json``."""
    if path is None:
        path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_verify.json"
    if quick:
        # Big enough that a 4-worker pool amortises its startup well past
        # the 2x floor on a 4-core machine, small enough for a CI smoke.
        configs = [("vertex", 32, 120), ("edge", 20, 48)]
    else:
        configs = [("vertex", 48, 180), ("edge", 24, 60)]
    cores = usable_cpu_count()
    serial = SerialBackend()
    pooled = ProcessPoolBackend(workers)
    report = {
        "benchmark": "sharded exhaustive is_ft_spanner (f=2) vs serial scan",
        "serial": "SerialBackend: one process scans every fault set in order",
        "parallel": f"ProcessPoolBackend({workers}): contiguous chunks, "
                    "CSR context shipped once per worker, ordered merge",
        "quick": quick,
        "workers": workers,
        "cores": cores,
        "cases": [],
    }
    for fault_model, n, m in configs:
        graph, ft, plain = _verification_case(n, m, fault_model=fault_model)

        def run(backend, spanner=ft):
            return is_ft_spanner(graph, spanner, 3, 2, fault_model,
                                 method="exhaustive", backend=backend)

        serial_report = run(serial)
        pooled_report = run(pooled)
        assert _report_fields(pooled_report) == _report_fields(serial_report), (
            f"parallel verification diverged from serial on {fault_model}"
        )
        assert serial_report.ok, "benchmark spanner must verify clean (full scan)"
        # Refuted spanners must agree on the exact witness fault set too.
        serial_refuted = run(serial, plain)
        pooled_refuted = run(pooled, plain)
        assert not serial_refuted.ok
        assert _report_fields(pooled_refuted) == _report_fields(serial_refuted), (
            f"parallel witness diverged from serial on {fault_model}"
        )
        serial_s = _time_best_of(lambda: run(serial))
        pooled_s = _time_best_of(lambda: run(pooled))
        report["cases"].append({
            "fault_model": fault_model,
            "n": n, "m": m, "max_faults": 2,
            "spanner_edges": ft.number_of_edges(),
            "fault_sets": serial_report.fault_sets_checked,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(pooled_s, 3),
            "speedup": round(serial_s / pooled_s, 2),
            "verdicts_identical": True,
            "witnesses_identical": True,
        })
    headline = next(c for c in report["cases"] if c["fault_model"] == "vertex")
    report["speedup"] = headline["speedup"]
    # A 1-core container cannot demonstrate parallel speedup; the identity
    # checks above still hold there, and the speedup gate arms whenever the
    # machine can actually run the workers concurrently (e.g. CI).
    report["speedup_asserted"] = cores >= MIN_CORES and workers >= MIN_CORES
    if report["speedup_asserted"]:
        assert report["speedup"] >= SPEEDUP_FLOOR, (
            f"sharded verification speedup regressed below "
            f"{SPEEDUP_FLOOR}x: {report['speedup']}x"
        )
    pathlib.Path(path).write_text(json.dumps(report, indent=2) + "\n")
    return report


# ---------------------------------------------------------------------------
# pytest entries (verdict identity as part of the tier-1 run)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_case():
    return _verification_case(18, 64, fault_model="vertex")


@pytest.mark.benchmark(group="verify")
def test_serial_exhaustive_verify(benchmark, small_case):
    graph, ft, _ = small_case
    report = benchmark(lambda: is_ft_spanner(graph, ft, 3, 2, "vertex",
                                             method="exhaustive"))
    assert report.exhaustive


@pytest.mark.benchmark(group="verify")
def test_sharded_exhaustive_verify(benchmark, small_case):
    graph, ft, _ = small_case
    expected = is_ft_spanner(graph, ft, 3, 2, "vertex", method="exhaustive")
    report = benchmark(lambda: is_ft_spanner(graph, ft, 3, 2, "vertex",
                                             method="exhaustive", workers=2))
    assert _report_fields(report) == _report_fields(expected)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke configuration (small graphs, seconds)")
    parser.add_argument("--workers", type=int, default=4,
                        help="process-pool size for the parallel side")
    parser.add_argument("--output", default=None,
                        help="where to write BENCH_verify.json")
    args = parser.parse_args()
    outcome = record_verify_parallel(args.output, quick=args.quick,
                                     workers=args.workers)
    for case in outcome["cases"]:
        print(f"{case['fault_model']:6s} n={case['n']} m={case['m']} "
              f"({case['fault_sets']} fault sets): "
              f"serial {case['serial_s']}s, "
              f"{outcome['workers']} workers {case['parallel_s']}s "
              f"-> {case['speedup']}x (verdicts+witnesses identical)")
    gate = ("asserted >= 2x" if outcome["speedup_asserted"]
            else f"not asserted: {outcome['cores']} core(s) available")
    print(f"headline (vertex, f=2) speedup: {outcome['speedup']}x [{gate}]")
