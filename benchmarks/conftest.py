"""Shared fixtures for the benchmark suite.

Each ``bench_e*.py`` file regenerates one experiment table from DESIGN.md §4 /
EXPERIMENTS.md.  Because a single experiment run already aggregates many
construction runs, the ``experiment_bench`` fixture runs each driver under
``benchmark.pedantic(..., rounds=1, iterations=1)``: the number reported is
the wall-clock of one full experiment, and the experiment's own result table
is printed so the rows can be compared against EXPERIMENTS.md directly.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.utils.tables import Table


@pytest.fixture
def experiment_bench(benchmark):
    """Run one experiment driver under pytest-benchmark and print its table."""

    def _run(experiment_module, config, *, rng=0) -> Table:
        result_holder = {}

        def target():
            result_holder["table"] = experiment_module.run(config, rng=rng)
            return result_holder["table"]

        benchmark.pedantic(target, rounds=1, iterations=1)
        table = result_holder["table"]
        print()
        print(table.to_ascii())
        return table

    return _run


@pytest.fixture
def print_table():
    """Printer for auxiliary context tables produced by kernel benchmarks."""

    def _printer(table: Table) -> None:
        print()
        print(table.to_ascii())

    return _printer
