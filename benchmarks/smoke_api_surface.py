"""API-surface smoke check for the unified construction API.

Run in CI (and locally) as::

    PYTHONPATH=src python benchmarks/smoke_api_surface.py

Three gates, all hard failures:

1. every registered algorithm builds a small seeded graph through
   ``build(graph, spec)``;
2. the same build through the CLI (``repro-spanner build --algorithm ...``)
   produces the identical edge set — no drift between the Python facade and
   the command line;
3. the algorithm table documented in README.md ("Python API" section) names
   exactly the registered algorithms — the registry and the docs cannot
   disagree;
4. the oracle table documented in README.md ("Tiered oracle" section)
   matches :func:`repro.spanners.fault_check.describe_oracles` — name,
   exactness, and aliases.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

from repro.build import ALGORITHMS, BuildSpec, available_algorithms, build
from repro.cli import main as cli_main
from repro.graph import generators
from repro.graph.io import read_json, write_json

README = Path(__file__).resolve().parent.parent / "README.md"


def spec_for(name: str) -> BuildSpec:
    """A small, valid spec for each registered algorithm."""
    caps = ALGORITHMS[name].capabilities
    return BuildSpec(
        algorithm=name,
        stretch=3.0,
        max_faults=1 if caps.fault_tolerant else 0,
        fault_model=ALGORITHMS[name].default_fault_model,
        seed=0 if caps.randomized else None,
        params={"max_samples": 10} if name == "sampling-union" else {},
    )


def cli_args_for(name: str, graph_path: Path, out_path: Path) -> list:
    spec = spec_for(name)
    args = ["build", str(graph_path), "--algorithm", name,
            "-k", str(spec.stretch), "-f", str(spec.max_faults),
            "--fault-model", spec.fault_model, "-o", str(out_path)]
    if spec.seed is not None:
        args += ["--seed", str(spec.seed)]
    for key, value in spec.params.items():
        args += ["-P", f"{key}={value}"]
    return args


def documented_algorithms() -> set:
    """Algorithm names from the README's documented algorithm table."""
    text = README.read_text(encoding="utf-8")
    names = set()
    in_table = False
    for line in text.splitlines():
        if line.startswith("| algorithm"):
            in_table = True
            continue
        if in_table:
            match = re.match(r"\|\s*`([a-z0-9-]+)`", line)
            if match:
                names.add(match.group(1))
            elif not line.startswith("|"):
                in_table = False
    return names


def documented_oracles() -> dict:
    """Oracle rows from the README's oracle table: name -> (exact, aliases)."""
    text = README.read_text(encoding="utf-8")
    rows = {}
    in_table = False
    for line in text.splitlines():
        if line.startswith("| oracle"):
            in_table = True
            continue
        if in_table:
            match = re.match(
                r"\|\s*`([a-z0-9-]+)`\s*\|\s*(yes|no)\s*\|\s*([^|]+)\|", line)
            if match:
                aliases = re.findall(r"`([a-z0-9-]+)`", match.group(3))
                rows[match.group(1)] = (match.group(2) == "yes",
                                        sorted(aliases))
            elif not line.startswith("|"):
                in_table = False
    return rows


def main() -> int:
    graph = generators.gnm(16, 40, rng=0, connected=True)
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        graph_path = Path(tmp) / "graph.json"
        write_json(graph, graph_path)
        for name in available_algorithms():
            spec = spec_for(name)
            result = build(graph, spec)
            api_edges = sorted(result.spanner.edges(), key=repr)
            out_path = Path(tmp) / f"{name}.json"
            code = cli_main(cli_args_for(name, graph_path, out_path))
            if code != 0:
                failures.append(f"{name}: CLI build exited {code}")
                continue
            cli_edges = sorted(read_json(out_path).edges(), key=repr)
            if api_edges != cli_edges:
                failures.append(
                    f"{name}: CLI edge set ({len(cli_edges)}) differs from "
                    f"build(spec) edge set ({len(api_edges)})")
            else:
                print(f"ok {name:16s} {len(api_edges)} edges "
                      f"(build(spec) == CLI)")

    documented = documented_algorithms()
    registered = set(available_algorithms())
    if documented != registered:
        failures.append(
            "README algorithm table disagrees with the registry: "
            f"missing from README {sorted(registered - documented)}, "
            f"stale in README {sorted(documented - registered)}")
    else:
        print(f"ok README algorithm table matches registry "
              f"({len(registered)} algorithms)")

    from repro.spanners.fault_check import describe_oracles

    described = {row["name"]: (row["exact"], sorted(row["aliases"]))
                 for row in describe_oracles()}
    documented_o = documented_oracles()
    if documented_o != described:
        failures.append(
            "README oracle table disagrees with describe_oracles(): "
            f"README {documented_o}, registry {described}")
    else:
        print(f"ok README oracle table matches describe_oracles() "
              f"({len(described)} oracles)")

    if failures:
        for failure in failures:
            print("FAIL", failure, file=sys.stderr)
        return 1
    print("api-surface smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
