"""Serving-daemon smoke: the whole subsystem end-to-end, as a subprocess.

This is the CI gate for the persistent serving daemon: it builds a small
ft-greedy snapshot fixture, starts ``repro-spanner daemon`` on it as a real
subprocess (ephemeral port, coalescing window armed), and drives every
serving surface once:

* concurrent HTTP clients fan out distance queries whose answers must be
  byte-identical to a local reference engine built from the same fixture;
* a WebSocket session answers a streamed query;
* ``/v1/update`` applies a spanner-edge deletion through the live write
  path (mirrored onto the reference engine; post-update answers must match
  again) and advances the journal offset;
* ``/health`` reports the lineage (writable, journal offset, algorithm);
* ``/metrics`` serves every required ``repro_serve_*`` family plus the
  engine families through the shared Prometheus exporter;
* SIGTERM drains gracefully: exit code 0 and the drained-cleanly banner.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_daemon.py
"""

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.build import BuildSession, BuildSpec  # noqa: E402
from repro.dynamic import EdgeDelete, LiveEngine  # noqa: E402
from repro.graph import generators  # noqa: E402
from repro.serve.client import DaemonClient  # noqa: E402

#: Metric families /metrics must expose once the daemon has served traffic.
REQUIRED_FAMILIES = (
    "repro_serve_requests",
    "repro_serve_request_seconds",
    "repro_serve_queue_depth",
    "repro_serve_connections",
    "repro_serve_coalesce_batches",
    "repro_serve_coalesce_requests",
    "repro_serve_coalesce_occupancy",
    "repro_serve_coalesce_wait_seconds",
    "repro_serve_updates_applied",
    "repro_engine_queries_served",
)

CLIENTS = 4


def _fixture(tmp: str):
    """A snapshot file (with original graph) plus a matching local engine."""
    graph = generators.gnm(26, 70, rng=9, connected=True, weighted=True)
    spec = BuildSpec(algorithm="ft-greedy", stretch=3, max_faults=1)
    path = os.path.join(tmp, "fixture_snapshot.json")
    BuildSession(graph, spec).save_snapshot(path)
    reference = LiveEngine(BuildSession(graph, spec).dynamic())
    return path, reference


def _query_plan(nodes):
    plan = []
    for i in range(16):
        source = nodes[(5 * i) % len(nodes)]
        target = nodes[(7 * i + 3) % len(nodes)]
        fault = nodes[(11 * i + 1) % len(nodes)]
        faults = (fault,) if fault not in (source, target) else ()
        if source != target:
            plan.append((source, target, faults))
    return plan


def _start_daemon(snapshot_path: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "daemon", snapshot_path,
         "--port", "0", "--window-ms", "3"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    host = port = None
    for line in process.stdout:
        if line.startswith("daemon listening on http://"):
            address = line.rsplit("http://", 1)[1].strip()
            host, port_text = address.rsplit(":", 1)
            port = int(port_text)
            break
    if host is None:
        process.kill()
        raise AssertionError("daemon never printed its listening address")
    # Keep draining stdout so the pipe can never fill and stall the daemon.
    tail = []
    drainer = threading.Thread(
        target=lambda: tail.extend(process.stdout), daemon=True)
    drainer.start()
    return process, host, port, tail, drainer


def _fan_out(host: str, port: int, plan):
    """Concurrent keep-alive clients, one shard each; answers by query."""
    answers = {}
    barrier = threading.Barrier(CLIENTS)

    def worker(shard):
        with DaemonClient(host, port) as client:
            barrier.wait()
            for source, target, faults in shard:
                answers[(source, target, faults)] = client.distance(
                    source, target, faults)

    threads = [threading.Thread(target=worker, args=(plan[i::CLIENTS],))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    return answers


def _check_identity(reference, plan, answers, label: str):
    expected = reference.distances_batch(plan)
    for (source, target, faults), want in zip(plan, expected):
        got = answers[(source, target, faults)]
        assert got == want, (
            f"{label}: daemon answered {got} for "
            f"({source}, {target}, {faults}), reference says {want}")
    print(f"{label}: {len(plan)} answers across {CLIENTS} concurrent "
          f"clients identical to the reference engine")


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-daemon-smoke-")
    snapshot_path, reference = _fixture(tmp)
    process, host, port, tail, drainer = _start_daemon(snapshot_path)
    try:
        nodes = sorted(reference.snapshot.spanner.nodes())
        plan = _query_plan(nodes)
        client = DaemonClient(host, port)

        _check_identity(reference, plan, _fan_out(host, port, plan),
                        "HTTP fan-out (pre-update)")

        with client.session() as session:
            source, target, faults = plan[0]
            streamed = session.distance(source, target, faults)
        assert streamed == reference.distance(source, target, faults)
        print("WebSocket session: streamed answer identical")

        edge = next(iter(sorted(reference.dynamic.spanner.edge_keys(),
                                key=repr)))
        report = client.update([EdgeDelete(*edge)])
        assert report["applied"] == 1, report
        assert report["journal_offset"] == 1, report
        reference.apply(EdgeDelete(*edge))
        print(f"update: deleted spanner edge {edge}, "
              f"journal offset {report['journal_offset']}")

        _check_identity(reference, plan, _fan_out(host, port, plan),
                        "HTTP fan-out (post-update)")

        health = client.health()
        assert health["status"] == "ok", health
        engine_info = health["engine"]
        assert engine_info["writable"] is True, engine_info
        assert engine_info["journal_offset"] == 1, engine_info
        assert engine_info["snapshot"]["algorithm"] == "ft-greedy[dynamic]"
        print("health: ok, writable, lineage reported")

        metrics = client.metrics_text()
        missing = [family for family in REQUIRED_FAMILIES
                   if family not in metrics]
        assert not missing, f"/metrics is missing families: {missing}"
        print(f"metrics: all {len(REQUIRED_FAMILIES)} required families "
              "present")
        client.close()
    except BaseException:
        process.kill()
        process.wait(timeout=10)
        raise

    process.send_signal(signal.SIGTERM)
    returncode = process.wait(timeout=30)
    drainer.join(timeout=10)
    assert returncode == 0, (
        f"daemon exited {returncode} on SIGTERM; tail: {tail[-5:]}")
    assert any("daemon drained cleanly" in line for line in tail), tail[-5:]
    print("SIGTERM: drained cleanly, exit code 0")
    print("daemon smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
