"""CI smoke for the observability surface: trace a build, export metrics.

Drives the real CLI end to end on a small graph:

1. ``repro-spanner generate`` a workload graph;
2. ``repro-spanner build --trace trace.jsonl --metrics-json`` with a fault
   budget, asserting the trace parses as JSONL, nests correctly, and carries
   counter attribution;
3. ``repro-spanner verify --metrics-json`` over the built spanner, asserting
   the required metric families exist in the exported document;
4. ``repro-spanner stats`` renders the document in all three formats.

Leaves ``trace.jsonl`` in the working directory for the CI artifact upload.
Run: ``PYTHONPATH=src python benchmarks/smoke_observability.py``.
"""

import json
import pathlib
import subprocess
import sys
import tempfile

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, SRC)

from repro.obs.export import METRICS_SCHEMA, load_metrics_json  # noqa: E402
from repro.obs.trace import load_spans, span_tree  # noqa: E402

#: Metric families every instrumented build must export.
BUILD_FAMILIES = [
    "build.builds",
    "build.oracle_accepts",
    "build.oracle_rejects",
    "kernels.dispatch",
]

#: Metric families every verification run must export.
VERIFY_FAMILIES = [
    "verify.runs",
    "verify.fault_sets_checked",
]


def run_cli(*argv: str) -> str:
    """Run one repro-spanner invocation, echoing and checking it."""
    command = [sys.executable, "-m", "repro", *argv]
    print("$", " ".join(argv))
    completed = subprocess.run(command, capture_output=True, text=True,
                               env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"})
    sys.stdout.write(completed.stdout)
    sys.stderr.write(completed.stderr)
    assert completed.returncode == 0, f"exit {completed.returncode}: {argv}"
    return completed.stdout


def main() -> None:
    trace_path = pathlib.Path("trace.jsonl")
    trace_path.unlink(missing_ok=True)
    with tempfile.TemporaryDirectory() as scratch:
        scratch = pathlib.Path(scratch)
        graph = str(scratch / "graph.json")
        spanner = str(scratch / "spanner.json")
        build_metrics = str(scratch / "build-metrics.json")
        verify_metrics = str(scratch / "verify-metrics.json")

        run_cli("generate", "tiny-gnm", graph, "--seed", "7")
        run_cli("build", graph, "--faults", "1", "--stretch", "3",
                "--output", spanner, "--trace", str(trace_path),
                "--metrics-json", build_metrics)

        # The trace must parse as JSONL, nest, and attribute counters.
        spans = load_spans(str(trace_path))
        assert spans, "build wrote an empty trace"
        names = {span["name"] for span in spans}
        assert "build.construct" in names, names
        tree = span_tree(spans)
        assert tree[None], "trace has no root spans"
        construct = next(s for s in spans if s["name"] == "build.construct")
        assert construct["seconds"] >= 0.0
        assert construct["counters"].get("build.oracle_accepts", 0) > 0, \
            "build span carries no oracle counter attribution"

        # The build metrics document must carry the required families.
        document = load_metrics_json(build_metrics)
        assert document["schema"] == METRICS_SCHEMA
        metrics = document["metrics"]
        for family in BUILD_FAMILIES:
            assert family in metrics, f"missing metric family {family!r}"

        run_cli("verify", graph, spanner, "--faults", "1", "--stretch", "3",
                "--metrics-json", verify_metrics)
        verify_doc = load_metrics_json(verify_metrics)
        for family in VERIFY_FAMILIES:
            assert family in verify_doc["metrics"], \
                f"missing metric family {family!r}"
        assert verify_doc["meta"]["exit_code"] == 0

        # All three stats renderings work against the exported document.
        table = run_cli("stats", build_metrics)
        assert "build.oracle_accepts" in table
        prometheus = run_cli("stats", build_metrics, "--format", "prometheus")
        assert "# TYPE repro_build_oracle_accepts counter" in prometheus
        round_trip = json.loads(run_cli("stats", build_metrics,
                                        "--format", "json"))
        assert round_trip["metrics"] == metrics

    print(f"observability smoke OK: {len(spans)} span(s), "
          f"{len(metrics)} metric families; trace left at {trace_path}")


if __name__ == "__main__":
    main()
