#!/usr/bin/env python3
"""Designing a failure-resilient network backbone.

Scenario: an operator has a dense mesh of possible links between 100 routers
(a random geometric graph — links exist between physically close routers and
their cost is the physical distance).  They want to *provision* only a subset
of links (the backbone) such that

* every route is at most 3x longer than in the full mesh, and
* the guarantee survives any 2 simultaneous router failures.

This is exactly an f=2 vertex-fault-tolerant 3-spanner.  The script compares
the FT greedy backbone against the alternatives an operator might consider
(provision everything; a non-fault-tolerant spanner; the sampling-union
construction) on provisioned-link count, total cable length, and behaviour
under simulated failures.

Run with::

    python examples/network_backbone.py
"""

from repro import (
    ft_greedy_spanner,
    generators,
    greedy_spanner,
    sampling_union_spanner,
    trivial_spanner,
)
from repro.faults.adversarial import random_fault_trial
from repro.utils.rng import RandomSource
from repro.utils.tables import Table

STRETCH = 3
FAULTS = 2


def simulate_failures(graph, spanner, trials, rng):
    """Worst stretch seen over ``trials`` random 2-router failures."""
    stretches = random_fault_trial(graph, spanner, "vertex", FAULTS, trials, rng=rng)
    return max(stretches)


def main() -> None:
    rng = RandomSource(7)
    mesh = generators.random_geometric(100, 0.25, rng=rng.spawn("mesh"))
    print(f"candidate mesh: {mesh.number_of_nodes()} routers, "
          f"{mesh.number_of_edges()} possible links, "
          f"total length {mesh.total_weight():.1f}")

    designs = {
        "provision everything": trivial_spanner(mesh, STRETCH, FAULTS),
        "plain 3-spanner": greedy_spanner(mesh, STRETCH),
        "sampling-union (f=2)": sampling_union_spanner(
            mesh, STRETCH, FAULTS, rng=rng.spawn("sampling"), max_samples=150),
        "FT greedy (f=2)": ft_greedy_spanner(mesh, STRETCH, FAULTS),
    }

    table = Table(
        columns=["design", "links", "cable_length", "cost_vs_full",
                 "worst_stretch_50_failures"],
        title=f"Backbone designs (stretch <= {STRETCH}, {FAULTS} router failures)",
    )
    for name, result in designs.items():
        worst = simulate_failures(mesh, result.spanner, trials=50,
                                  rng=rng.spawn("failures", name))
        table.add_row({
            "design": name,
            "links": result.size,
            "cable_length": result.spanner.total_weight(),
            "cost_vs_full": result.spanner.total_weight() / mesh.total_weight(),
            "worst_stretch_50_failures": worst,
        })

    print()
    print(table.to_ascii())
    ft_row = [row for row in table.rows if row["design"] == "FT greedy (f=2)"][0]
    plain_row = [row for row in table.rows if row["design"] == "plain 3-spanner"][0]
    print(
        f"\nThe FT greedy backbone provisions {ft_row['links']} links "
        f"({ft_row['cost_vs_full']:.0%} of the full mesh cost) and kept every "
        f"simulated routing detour within {ft_row['worst_stretch_50_failures']:.2f}x; "
        f"the non-fault-tolerant spanner reached "
        f"{plain_row['worst_stretch_50_failures']:.2f}x."
    )


if __name__ == "__main__":
    main()
