#!/usr/bin/env python3
"""A guided walkthrough of the paper's results on concrete instances.

Follows the structure of Bodwin & Patel (PODC 2019) section by section:

1. Algorithm 1 (the FT greedy algorithm) on a random graph;
2. Lemma 3 — extract the (k+1)-blocking set from the run and verify it;
3. Lemma 4 — subsample down to a high-girth subgraph and compare the
   surviving edge count with the expectation bound;
4. Theorem 1 / Corollary 2 — compare the measured size with the bound;
5. the BDPW lower-bound instance — every edge is forced, so the bound is
   tight in the vertex-fault setting;
6. the closing remark — the same instance carries a small *edge* blocking
   set, which is why the technique cannot improve the EFT bound by itself.

Run with::

    python examples/paper_walkthrough.py
"""

from repro import (
    bdpw_lower_bound_instance,
    corollary2_bound,
    extract_blocking_set,
    ft_greedy_spanner,
    generators,
    is_blocking_set,
    lemma4_subsample,
    theorem1_bound,
)
from repro.bounds.lower_bound import edge_blocking_set_for_blowup, forced_edge_fraction
from repro.spanners.blocking import is_edge_blocking_set

STRETCH = 3          # k
FAULTS = 2           # f


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    section("Algorithm 1: the FT greedy spanner")
    graph = generators.gnm(48, 500, rng=2019, connected=True)
    result = ft_greedy_spanner(graph, STRETCH, FAULTS, fault_model="vertex")
    print(f"input: n={graph.number_of_nodes()}, m={graph.number_of_edges()}")
    print(f"output H: {result.size} edges "
          f"(oracle answered {result.oracle_queries} queries, "
          f"{result.distance_queries} bounded Dijkstra runs)")

    section("Lemma 3: the blocking set")
    blocking = extract_blocking_set(result)
    print(f"|B| = {blocking.size} pairs  <=  f * |E(H)| = {FAULTS * result.size}")
    print(f"B blocks every cycle on <= k+1 = {STRETCH + 1} edges: "
          f"{is_blocking_set(result.spanner, blocking)}")

    section("Lemma 4: subsampling to a high-girth subgraph")
    outcome = lemma4_subsample(result.spanner, blocking, FAULTS, rng=0, trials=20)
    print(f"sampled ceil(n/2f) = {outcome.sampled_nodes} vertices; "
          f"best trial keeps {outcome.surviving_edges} edges "
          f"(expectation bound {outcome.expected_edges_lower_bound:.1f})")
    print(f"pruned subgraph girth > k+1: {outcome.girth_ok}")

    section("Theorem 1 / Corollary 2: the size bound")
    t1 = theorem1_bound(graph.number_of_nodes(), FAULTS, STRETCH)
    c2 = corollary2_bound(graph.number_of_nodes(), FAULTS, STRETCH)
    print(f"measured |E(H)| = {result.size}")
    print(f"Theorem 1 bound f^2 b(n/f, k+1) ~ {t1:.0f}   (ratio {result.size / t1:.2f})")
    print(f"Corollary 2 bound n^1.5 f^0.5  ~ {c2:.0f}   (ratio {result.size / c2:.2f})")

    section("The lower bound: the BDPW blow-up instance")
    instance = bdpw_lower_bound_instance(FAULTS, STRETCH)
    forced = forced_edge_fraction(instance)
    greedy_on_instance = ft_greedy_spanner(instance.graph, STRETCH, FAULTS)
    print(f"instance: base={instance.base.name}, copies={instance.copies}, "
          f"n={instance.nodes}, m={instance.edges}")
    print(f"fraction of edges provably forced into ANY {FAULTS}-VFT "
          f"{STRETCH}-spanner: {forced:.0%}")
    print(f"the greedy algorithm keeps {greedy_on_instance.size}/{instance.edges} edges")

    section("Closing remark: edge blocking sets cannot do better for EFT")
    edge_blocking = edge_blocking_set_for_blowup(instance)
    print(f"edge blocking set with {edge_blocking.size} pairs "
          f"<= f * m = {FAULTS * instance.edges}")
    print(f"it blocks every cycle on <= k+1 edges: "
          f"{is_edge_blocking_set(instance.graph, edge_blocking)}")
    print("\n=> a dense graph can still have a small edge blocking set, so the "
          "blocking-set argument alone cannot improve the EFT upper bound.")


if __name__ == "__main__":
    main()
