#!/usr/bin/env python3
"""A fault-tolerant distance service, end to end: build → snapshot → serve.

Scenario: a navigation backend answers "how long is the detour from ``s`` to
``t`` given the currently blocked intersections?" for a city road network.
It cannot afford to store (or query) the full network, so it serves a
2-fault-tolerant 3-spanner instead — the paper's object, deployed.

The script walks the whole serving lifecycle:

1. build the FT greedy spanner of a random geometric road network;
2. bundle it into a :class:`repro.engine.SpannerSnapshot`, save it to disk,
   and reload it — the restart path of a real service;
3. replay a Zipf-skewed query workload (popular sources, a small pool of
   concurrent closure sets) through the batched :class:`QueryEngine`;
4. report throughput, batching/caching effectiveness, and a stretch audit
   of served answers against the full network.

Run with::

    python examples/query_service_demo.py
"""

import math
import tempfile
import time
from pathlib import Path

from repro import generators, vft_greedy_spanner
from repro.engine import (
    QueryEngine,
    SpannerSnapshot,
    split_batches,
    zipf_workload,
)
from repro.utils.rng import RandomSource

STRETCH = 3
FAULTS = 2
BATCH_SIZE = 64


def main() -> None:
    rng = RandomSource(29)

    # 1. The full road network, and the compact structure we actually serve.
    roads = generators.random_geometric(110, 0.22, rng=rng.spawn("roads"))
    print(f"road network: {roads.number_of_nodes()} intersections, "
          f"{roads.number_of_edges()} segments")
    result = vft_greedy_spanner(roads, STRETCH, FAULTS)
    print(f"spanner: {result.size} segments kept "
          f"({result.compression_ratio:.0%} of the network), "
          f"k={STRETCH}, f={FAULTS}, built in {result.construction_seconds:.2f}s")

    # 2. Snapshot to disk and restart from it, as a service would.
    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "roads.snapshot.json"
        SpannerSnapshot.from_result(result).save(snapshot_path)
        print(f"snapshot: {snapshot_path.stat().st_size / 1024:.0f} KiB on disk")
        snapshot = SpannerSnapshot.load(snapshot_path)

    engine = QueryEngine(snapshot, cache_size=512)

    # 3. Zipf traffic: a few popular sources, up to FAULTS closures per query
    #    drawn from a pool of concurrent closure sets.
    queries = zipf_workload(snapshot.spanner, 4000, skew=1.2,
                            max_faults=FAULTS, fault_pool=6,
                            rng=rng.spawn("traffic"))
    started = time.perf_counter()
    answers = []
    for batch in split_batches(queries, BATCH_SIZE):
        answers.extend(engine.distances_batch(batch))
    elapsed = time.perf_counter() - started

    stats = engine.stats()
    cache = stats["cache"]
    reachable = sum(1 for a in answers if not math.isinf(a))
    print(f"\nserved {len(queries)} queries in {elapsed:.3f}s "
          f"-> {len(queries) / elapsed:,.0f} queries/s "
          f"({reachable / len(queries):.1%} reachable)")
    print(f"batching+caching: {stats['kernel_calls']} kernel calls for "
          f"{stats['queries_served']} queries "
          f"({stats['kernel_calls_saved']} saved); "
          f"cache hit rate {cache['hit_rate']:.1%}, "
          f"{cache['evictions']} evictions")

    # 4. Audit a sample of served queries against the full network: the
    #    served detour must stay within k of the unserveable ground truth.
    sample = [q for q in queries[:400] if q.source != q.target][:50]
    worst = 1.0
    for query in sample:
        audit = engine.stretch_audit(query.source, query.target, query.faults)
        if math.isfinite(audit.stretch):
            worst = max(worst, audit.stretch)
        assert audit.ok, f"stretch promise violated for {query}"
    print(f"stretch audit: worst served stretch over {len(sample)} sampled "
          f"queries = {worst:.3f} (promised <= {STRETCH})")


if __name__ == "__main__":
    main()
