#!/usr/bin/env python3
"""Quickstart: build and verify a fault-tolerant spanner in a few lines.

Run with::

    python examples/quickstart.py

The script builds a random graph, computes (a) the classic greedy 3-spanner
and (b) the 2-vertex-fault-tolerant greedy 3-spanner of Bodwin & Patel's
Algorithm 1 — both through the unified construction API
(``build(graph, BuildSpec(...))``) — verifies both, and shows what happens
to each when vertices fail.
"""

from repro import (
    BuildSpec,
    build,
    generators,
    is_ft_spanner,
    is_spanner,
)
from repro.faults.adversarial import worst_case_fault_set


def main() -> None:
    # A connected random graph: 60 nodes, 600 edges, unit weights.
    graph = generators.gnm(60, 600, rng=42, connected=True)
    print(f"input graph: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")

    # --- the classic greedy spanner (no fault tolerance) -------------------
    plain = build(graph, BuildSpec("greedy", stretch=3))
    print(f"\ngreedy 3-spanner:            {plain.size:4d} edges "
          f"({plain.compression_ratio:.0%} of the input)")
    assert is_spanner(graph, plain.spanner, 3)

    # --- the fault-tolerant greedy spanner (Algorithm 1) -------------------
    # Identical to ft_greedy_spanner(graph, 3, 2): the classic entry points
    # are thin shims over the same registry this spec dispatches through.
    ft = build(graph, BuildSpec("ft-greedy", stretch=3, max_faults=2,
                                fault_model="vertex"))
    print(f"2-VFT greedy 3-spanner:      {ft.size:4d} edges "
          f"({ft.compression_ratio:.0%} of the input)")

    # Sampled fault-tolerance check (exhaustive checks are exponential in f).
    report = is_ft_spanner(graph, ft.spanner, stretch=3, max_faults=2,
                           method="sampled", samples=100, rng=0)
    print(f"fault-tolerance check:       {'OK' if report.ok else 'VIOLATED'} "
          f"(worst sampled stretch {report.worst_stretch:.2f} over "
          f"{report.fault_sets_checked} fault sets)")

    # --- what failures do to each spanner -----------------------------------
    _, plain_worst = worst_case_fault_set(graph, plain.spanner, "vertex", 2,
                                          method="sampled", samples=100, rng=1)
    _, ft_worst = worst_case_fault_set(graph, ft.spanner, "vertex", 2,
                                       method="sampled", samples=100, rng=1)
    print("\nunder the worst sampled 2-vertex failure:")
    print(f"  plain greedy spanner stretch: {plain_worst:.2f}"
          f"  {'(guarantee broken!)' if plain_worst > 3 else ''}")
    print(f"  FT greedy spanner stretch:    {ft_worst:.2f}  (still <= 3)")

    print("\nThe fault-tolerant spanner costs "
          f"{ft.size - plain.size} extra edges and keeps its guarantee.")


if __name__ == "__main__":
    main()
