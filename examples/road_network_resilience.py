#!/usr/bin/env python3
"""Road-network resilience: which road segments must be kept plowed/maintained?

Scenario: a county road department can only guarantee winter maintenance
(plowing, repairs) on a subset of road segments, but wants that whenever up to
``f`` intersections are blocked (accidents, construction), every trip on the
maintained subnetwork is at most ``k`` times longer than it would be on the
full network with the same blockages.

The full network is a weighted random geometric graph (edge weight = segment
length).  The script builds maintained subnetworks for fault budgets 0, 1, 2
under both fault models (blocked intersections = vertex faults, blocked
segments = edge faults), prices them by total maintained length, and then
stress-tests *every* design under the same two simultaneous closures — random
and adversarially chosen — so the value of designing for faults is visible.

Run with::

    python examples/road_network_resilience.py
"""

import math

from repro import eft_greedy_spanner, generators, vft_greedy_spanner
from repro.faults.adversarial import random_fault_trial, worst_case_fault_set
from repro.utils.rng import RandomSource
from repro.utils.tables import Table

STRETCH = 3
STRESS_CLOSURES = 2  # every design is stress-tested under 2 closures


def fmt_stretch(value: float) -> str:
    return "disconnected" if math.isinf(value) else f"{value:.2f}x"


def main() -> None:
    rng = RandomSource(11)
    roads = generators.random_geometric(120, 0.2, rng=rng.spawn("roads"))
    print(f"road network: {roads.number_of_nodes()} intersections, "
          f"{roads.number_of_edges()} segments, "
          f"total length {roads.total_weight():.2f}")

    table = Table(
        columns=["designed for", "fault model", "segments", "length_vs_full",
                 "stress: worst random", "stress: adversarial"],
        title=(f"Maintained subnetworks (target stretch <= {STRETCH}); every design "
               f"stress-tested under {STRESS_CLOSURES} closures"),
    )

    summaries = {}
    for faults in (0, 1, 2):
        for model_name, builder, fault_model in (
            ("intersections", vft_greedy_spanner, "vertex"),
            ("segments", eft_greedy_spanner, "edge"),
        ):
            result = builder(roads, STRETCH, faults)
            random_worst = max(random_fault_trial(
                roads, result.spanner, fault_model, STRESS_CLOSURES, trials=40,
                rng=rng.spawn("random", faults, model_name)))
            _, adversarial = worst_case_fault_set(
                roads, result.spanner, fault_model, STRESS_CLOSURES,
                method="sampled", samples=80, rng=rng.spawn("adv", faults, model_name))
            table.add_row({
                "designed for": f"f={faults}",
                "fault model": model_name,
                "segments": result.size,
                "length_vs_full": result.spanner.total_weight() / roads.total_weight(),
                "stress: worst random": fmt_stretch(random_worst),
                "stress: adversarial": fmt_stretch(max(random_worst, adversarial)),
            })
            summaries[(faults, model_name)] = (result, max(random_worst, adversarial))

    print()
    print(table.to_ascii())

    unprotected, unprotected_worst = summaries[(0, "intersections")]
    protected, protected_worst = summaries[(2, "intersections")]
    print(
        f"\nDesigning for zero faults maintains only "
        f"{unprotected.spanner.total_weight() / roads.total_weight():.0%} of the road "
        f"length, but two blocked intersections pushed some trip to "
        f"{fmt_stretch(unprotected_worst)}.  The 2-fault-tolerant plan maintains "
        f"{protected.spanner.total_weight() / roads.total_weight():.0%} of the length "
        f"and stayed at {fmt_stretch(protected_worst)} under the same stress test."
    )


if __name__ == "__main__":
    main()
