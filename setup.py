"""Setup shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e .``) in offline
environments whose setuptools/pip combination cannot build PEP 660 editable
wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()
