"""Fault-tolerant graph spanners.

A from-scratch reproduction of *"A Trivial Yet Optimal Solution to Vertex
Fault Tolerant Spanners"* (Bodwin & Patel, PODC 2019): the fault-tolerant
greedy spanner algorithm, the blocking-set machinery behind its optimal size
analysis, the matching lower-bound construction, baseline constructions from
prior work, and an experiment harness that validates every claim of the paper
empirically.

Quickstart
----------
>>> from repro import generators, ft_greedy_spanner, is_ft_spanner
>>> graph = generators.gnm(40, 160, rng=0, connected=True)
>>> result = ft_greedy_spanner(graph, stretch=3, max_faults=1)
>>> result.size < graph.number_of_edges()
True
>>> bool(is_ft_spanner(graph, result.spanner, stretch=3, max_faults=1,
...                    method="sampled", samples=25, rng=0))
True

New code should construct spanners through the unified build API —
``build(graph, BuildSpec("ft-greedy", stretch=3, max_faults=1))`` — which
validates the spec against the algorithm registry and produces results
byte-identical to the direct construction functions (now thin shims kept
for compatibility).

The public API re-exported here is the stable surface; subpackages
(:mod:`repro.graph`, :mod:`repro.spanners`, :mod:`repro.build`,
:mod:`repro.bounds`, :mod:`repro.baselines`, :mod:`repro.faults`,
:mod:`repro.experiments`) expose the full machinery.
"""

from repro.graph import Graph, generators
from repro.graph.convert import from_networkx, to_networkx
from repro.build import (
    AlgorithmCapabilities,
    BuildError,
    BuildSession,
    BuildSpec,
    available_algorithms,
    build,
    get_algorithm,
    register_algorithm,
)
from repro.spanners import (
    SpannerResult,
    greedy_spanner,
    ft_greedy_spanner,
    is_spanner,
    is_ft_spanner,
    stretch_of,
    extract_blocking_set,
    is_blocking_set,
    lemma4_subsample,
)
from repro.spanners.ft_greedy import vft_greedy_spanner, eft_greedy_spanner
from repro.baselines import (
    trivial_spanner,
    peeling_union_spanner,
    sampling_union_spanner,
)
from repro.bounds import (
    moore_bound,
    theorem1_bound,
    corollary2_bound,
    bdpw_lower_bound_instance,
)
from repro.faults import VERTEX_FAULTS, EDGE_FAULTS, get_fault_model
from repro.engine import QueryEngine, SpannerSnapshot
from repro.dynamic import (
    DynamicSpanner,
    EdgeDelete,
    EdgeInsert,
    LiveEngine,
    UpdateJournal,
    WeightChange,
    random_journal,
)
from repro.runtime import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
)
from repro.paths import (
    KernelBackend,
    describe_kernel_backends,
    get_kernels,
    kernel_backend_names,
)
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    get_registry,
    get_tracer,
    render_prometheus,
)

__version__ = "1.6.0"

__all__ = [
    "Graph",
    "generators",
    "AlgorithmCapabilities",
    "BuildError",
    "BuildSession",
    "BuildSpec",
    "available_algorithms",
    "build",
    "get_algorithm",
    "register_algorithm",
    "from_networkx",
    "to_networkx",
    "SpannerResult",
    "greedy_spanner",
    "ft_greedy_spanner",
    "vft_greedy_spanner",
    "eft_greedy_spanner",
    "is_spanner",
    "is_ft_spanner",
    "stretch_of",
    "extract_blocking_set",
    "is_blocking_set",
    "lemma4_subsample",
    "trivial_spanner",
    "peeling_union_spanner",
    "sampling_union_spanner",
    "moore_bound",
    "theorem1_bound",
    "corollary2_bound",
    "bdpw_lower_bound_instance",
    "VERTEX_FAULTS",
    "EDGE_FAULTS",
    "get_fault_model",
    "QueryEngine",
    "SpannerSnapshot",
    "DynamicSpanner",
    "LiveEngine",
    "UpdateJournal",
    "EdgeInsert",
    "EdgeDelete",
    "WeightChange",
    "random_journal",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "get_backend",
    "KernelBackend",
    "describe_kernel_backends",
    "get_kernels",
    "kernel_backend_names",
    "MetricsRegistry",
    "SpanTracer",
    "get_registry",
    "get_tracer",
    "render_prometheus",
    "__version__",
]
