"""Fault-tolerant graph spanners.

A from-scratch reproduction of *"A Trivial Yet Optimal Solution to Vertex
Fault Tolerant Spanners"* (Bodwin & Patel, PODC 2019): the fault-tolerant
greedy spanner algorithm, the blocking-set machinery behind its optimal size
analysis, the matching lower-bound construction, baseline constructions from
prior work, and an experiment harness that validates every claim of the paper
empirically.

Quickstart
----------
>>> from repro import generators, ft_greedy_spanner, is_ft_spanner
>>> graph = generators.gnm(40, 160, rng=0, connected=True)
>>> result = ft_greedy_spanner(graph, stretch=3, max_faults=1)
>>> result.size < graph.number_of_edges()
True
>>> bool(is_ft_spanner(graph, result.spanner, stretch=3, max_faults=1,
...                    method="sampled", samples=25, rng=0))
True

New code should construct spanners through the unified build API —
``build(graph, BuildSpec("ft-greedy", stretch=3, max_faults=1))`` — which
validates the spec against the algorithm registry and produces results
byte-identical to the direct construction functions (now thin shims kept
for compatibility).

The public API re-exported here is the stable surface; subpackages
(:mod:`repro.graph`, :mod:`repro.spanners`, :mod:`repro.build`,
:mod:`repro.bounds`, :mod:`repro.baselines`, :mod:`repro.faults`,
:mod:`repro.experiments`) expose the full machinery.
"""

import importlib
import sys as _sys
import types as _types


class _ReproModule(_types.ModuleType):
    """Keep ``repro.build`` bound to the build *function* (the documented
    API) even after the import system rebinds the attribute to the
    ``repro.build`` submodule — which it does whenever the subpackage is
    imported as a side effect of resolving another lazy export."""

    def __setattr__(self, name, value):
        if name == "build" and isinstance(value, _types.ModuleType):
            value = value.build
        super().__setattr__(name, value)


_sys.modules[__name__].__class__ = _ReproModule

# The public surface resolves lazily (PEP 562): ``import repro`` stays cheap
# and — critically for the serving subsystem — transport-only consumers
# (``repro.serve.protocol``, the daemon, the thin client) can import their
# submodules without dragging in the query engine or numpy.  ``from repro
# import X`` and ``repro.X`` behave exactly as the former eager imports did.
_EXPORTS = {
    "Graph": "repro.graph",
    "generators": "repro.graph",
    "from_networkx": "repro.graph.convert",
    "to_networkx": "repro.graph.convert",
    "AlgorithmCapabilities": "repro.build",
    "BuildError": "repro.build",
    "BuildSession": "repro.build",
    "BuildSpec": "repro.build",
    "available_algorithms": "repro.build",
    "build": "repro.build",
    "get_algorithm": "repro.build",
    "register_algorithm": "repro.build",
    "SpannerResult": "repro.spanners",
    "greedy_spanner": "repro.spanners",
    "ft_greedy_spanner": "repro.spanners",
    "is_spanner": "repro.spanners",
    "is_ft_spanner": "repro.spanners",
    "stretch_of": "repro.spanners",
    "extract_blocking_set": "repro.spanners",
    "is_blocking_set": "repro.spanners",
    "lemma4_subsample": "repro.spanners",
    "vft_greedy_spanner": "repro.spanners.ft_greedy",
    "eft_greedy_spanner": "repro.spanners.ft_greedy",
    "trivial_spanner": "repro.baselines",
    "peeling_union_spanner": "repro.baselines",
    "sampling_union_spanner": "repro.baselines",
    "moore_bound": "repro.bounds",
    "theorem1_bound": "repro.bounds",
    "corollary2_bound": "repro.bounds",
    "bdpw_lower_bound_instance": "repro.bounds",
    "VERTEX_FAULTS": "repro.faults",
    "EDGE_FAULTS": "repro.faults",
    "get_fault_model": "repro.faults",
    "QueryEngine": "repro.engine",
    "SpannerSnapshot": "repro.engine",
    "DynamicSpanner": "repro.dynamic",
    "EdgeDelete": "repro.dynamic",
    "EdgeInsert": "repro.dynamic",
    "LiveEngine": "repro.dynamic",
    "UpdateJournal": "repro.dynamic",
    "WeightChange": "repro.dynamic",
    "random_journal": "repro.dynamic",
    "ExecutionBackend": "repro.runtime",
    "ProcessPoolBackend": "repro.runtime",
    "SerialBackend": "repro.runtime",
    "get_backend": "repro.runtime",
    "KernelBackend": "repro.paths",
    "describe_kernel_backends": "repro.paths",
    "get_kernels": "repro.paths",
    "kernel_backend_names": "repro.paths",
    "MetricsRegistry": "repro.obs",
    "SpanTracer": "repro.obs",
    "get_registry": "repro.obs",
    "get_tracer": "repro.obs",
    "render_prometheus": "repro.obs",
    "ServingDaemon": "repro.serve",
    "CoalescingWindow": "repro.serve",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__version__ = "1.8.0"

__all__ = [
    "Graph",
    "generators",
    "AlgorithmCapabilities",
    "BuildError",
    "BuildSession",
    "BuildSpec",
    "available_algorithms",
    "build",
    "get_algorithm",
    "register_algorithm",
    "from_networkx",
    "to_networkx",
    "SpannerResult",
    "greedy_spanner",
    "ft_greedy_spanner",
    "vft_greedy_spanner",
    "eft_greedy_spanner",
    "is_spanner",
    "is_ft_spanner",
    "stretch_of",
    "extract_blocking_set",
    "is_blocking_set",
    "lemma4_subsample",
    "trivial_spanner",
    "peeling_union_spanner",
    "sampling_union_spanner",
    "moore_bound",
    "theorem1_bound",
    "corollary2_bound",
    "bdpw_lower_bound_instance",
    "VERTEX_FAULTS",
    "EDGE_FAULTS",
    "get_fault_model",
    "QueryEngine",
    "SpannerSnapshot",
    "DynamicSpanner",
    "LiveEngine",
    "UpdateJournal",
    "EdgeInsert",
    "EdgeDelete",
    "WeightChange",
    "random_journal",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "get_backend",
    "KernelBackend",
    "describe_kernel_backends",
    "get_kernels",
    "kernel_backend_names",
    "MetricsRegistry",
    "SpanTracer",
    "get_registry",
    "get_tracer",
    "render_prometheus",
    "ServingDaemon",
    "CoalescingWindow",
    "__version__",
]
