"""Baseline fault-tolerant spanner constructions.

The paper's contribution is an *analysis* of the FT greedy algorithm showing
it beats all previously known constructions.  To make that comparison
concrete, this package implements the natural competitors:

* :func:`trivial_spanner` — keep the whole graph (always fault tolerant,
  maximally large);
* :func:`peeling_union_spanner` — the classic edge-fault-tolerant
  construction: union of ``f + 1`` iteratively peeled greedy spanners
  (edge-disjoint replacement paths argument);
* :func:`sampling_union_spanner` — the folklore randomized vertex-fault
  construction: union of greedy spanners of random induced subgraphs, in the
  spirit of the sampling-based constructions of Chechik et al. and
  Dinitz–Krauthgamer (simplified parameterisation, documented in the module).

Experiment E3 compares their sizes against the FT greedy algorithm.
"""

from repro.baselines.trivial import trivial_spanner
from repro.baselines.peeling import peeling_union_spanner
from repro.baselines.sampling import sampling_union_spanner

__all__ = [
    "trivial_spanner",
    "peeling_union_spanner",
    "sampling_union_spanner",
]
