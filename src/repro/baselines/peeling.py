"""Edge-fault-tolerant baseline: union of ``f + 1`` iteratively peeled spanners.

Construction
------------
Let ``G_1 = G``.  For ``i = 1 .. f + 1`` compute a greedy ``k``-spanner
``S_i`` of ``G_i`` and set ``G_{i+1} = G_i − E(S_i)``.  Output
``H = S_1 ∪ ... ∪ S_{f+1}``.

Why it is ``f``-EFT
-------------------
For any edge ``e = {u, v}`` of ``G`` that is *not* in ``H``, ``e`` survives
into every ``G_i`` (only spanner edges are peeled), so every ``S_i`` contains
a ``u``–``v`` path of length at most ``k · w(e)``; these ``f + 1`` paths are
pairwise edge-disjoint, hence at least one avoids any ``≤ f`` edge faults.
Composing along a shortest surviving path in ``G \\ F`` gives the stretch
guarantee.  (The argument is folklore; it does **not** work for vertex faults
because the replacement paths are only edge-disjoint.)

Size
----
At most ``(f + 1)`` times the greedy spanner bound — ``O((f+1) · n^{1+1/k})``
for stretch ``2k − 1`` — versus the FT greedy's ``O(f^{1−1/k} · n^{1+1/k})``;
experiment E3/E7 measures the gap.

All distance sweeps run inside :func:`~repro.spanners.greedy.greedy_spanner`,
whose queries go through the per-graph CSR snapshot cache
(:mod:`repro.graph.csr`) and the array-native kernels — each peeled layer
maintains its own incremental snapshot of the growing spanner.
"""

from __future__ import annotations

from repro.graph.core import Graph
from repro.spanners.base import SpannerResult
from repro.spanners.greedy import greedy_spanner
from repro.utils.timing import Timer


def peeling_union_spanner(graph: Graph, stretch: float, max_faults: int) -> SpannerResult:
    """Build the ``f``-edge-fault-tolerant peeling-union spanner.

    Parameters
    ----------
    graph:
        The weighted input graph.
    stretch:
        Stretch ``k ≥ 1`` of each peeled spanner (and of the union).
    max_faults:
        Edge-fault budget ``f ≥ 0``; ``f = 0`` reduces to the plain greedy
        spanner.

    A thin shim over the algorithm registry
    (``BuildSpec("peeling-union", ...)``).
    """
    from repro.build import BuildSpec, build
    return build(graph, BuildSpec(algorithm="peeling-union", stretch=stretch,
                                  max_faults=max_faults, fault_model="edge"))


def _peeling_union(graph: Graph, stretch: float, max_faults: int) -> SpannerResult:
    """The implementation behind the registry entry and the shim."""
    if stretch < 1:
        raise ValueError("stretch must be at least 1")
    if max_faults < 0:
        raise ValueError("max_faults must be non-negative")
    timer = Timer("peeling").start()
    union = graph.spanning_subgraph()
    remaining = graph.copy()
    rounds = 0
    distance_queries = 0
    for _ in range(max_faults + 1):
        if remaining.number_of_edges() == 0:
            break
        rounds += 1
        layer = greedy_spanner(remaining, stretch)
        distance_queries += layer.distance_queries
        for u, v, w in layer.spanner.edges():
            union.add_edge(u, v, w)
            remaining.remove_edge(u, v)
    timer.stop()
    return SpannerResult(
        spanner=union,
        original=graph,
        stretch=stretch,
        max_faults=max_faults,
        fault_model="edge",
        algorithm="peeling-union",
        edges_considered=graph.number_of_edges() * rounds,
        edges_added=union.number_of_edges(),
        distance_queries=distance_queries,
        construction_seconds=timer.elapsed,
        parameters={"rounds": rounds},
    )
