"""Vertex-fault-tolerant baseline: union of spanners of random induced subgraphs.

Construction
------------
Repeat ``J`` times: sample a vertex set ``V_j`` by keeping each vertex
independently with probability ``q``; compute a greedy ``k``-spanner ``S_j``
of the induced subgraph ``G[V_j]``; output ``H = S_1 ∪ ... ∪ S_J``.

Why it is ``f``-VFT with high probability
-----------------------------------------
Fix a fault set ``F`` (``|F| ≤ f``) and an edge ``e = {u, v}`` of ``G \\ F``.
If some sample has ``u, v ∈ V_j`` and ``V_j ∩ F = ∅``, then ``S_j ⊆ G[V_j]``
contains a ``u``–``v`` path of length ``≤ k · w(e)`` that avoids ``F``
entirely.  A single sample achieves this with probability
``q² (1 − q)^{|F|}``; with ``q = 1/2`` that is at least ``2^{-(f+2)}``, so
``J = ⌈2^{f+2} · ((f + 2) ln n + ln(1/δ))⌉`` samples make the failure
probability over all ``≤ n^f`` fault sets and ``n²`` edges at most ``δ``
(union bound).  Composing per-edge guarantees along surviving shortest paths
gives Definition 2.

This is the folklore randomized construction underlying the sampling-based FT
spanners of Chechik–Langberg–Peleg–Roditty and Dinitz–Krauthgamer; those
papers obtain polynomially better sample counts through more careful
(non-uniform) sampling, which this baseline intentionally does not replicate —
its role in the experiments is "a correct construction a practitioner might
reach for first", and its ``exp(f)`` size factor is precisely what the FT
greedy algorithm avoids.

Size
----
``O(J · n^{1+1/k})`` for stretch ``2k − 1`` — exponential in ``f`` — versus
the FT greedy's ``O(f^{1−1/k} n^{1+1/k})``.  Experiment E3 measures the gap.

Every per-sample greedy construction routes its distance queries through the
CSR snapshot cache (:mod:`repro.graph.csr`); with hundreds to thousands of
samples this is the baseline that leans hardest on the kernel layer.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.graph.core import Graph
from repro.spanners.base import SpannerResult
from repro.spanners.greedy import greedy_spanner
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer


def default_sample_count(n: int, max_faults: int, *, failure_probability: float = 0.1,
                         survival_probability: float = 0.5) -> int:
    """Number of samples needed by the union-bound analysis above."""
    if n <= 1:
        return 1
    q = survival_probability
    per_sample = (q ** 2) * ((1.0 - q) ** max_faults)
    if per_sample <= 0:
        raise ValueError("survival_probability must lie strictly between 0 and 1")
    events = (max_faults + 2) * math.log(n) + math.log(1.0 / failure_probability)
    return max(1, math.ceil(events / per_sample))


def sampling_union_spanner(graph: Graph, stretch: float, max_faults: int,
                           *, samples: Optional[int] = None,
                           survival_probability: float = 0.5,
                           failure_probability: float = 0.1,
                           max_samples: int = 2000,
                           rng=None) -> SpannerResult:
    """Build the ``f``-vertex-fault-tolerant sampling-union spanner.

    Parameters
    ----------
    samples:
        Number of random induced subgraphs; defaults to the union-bound value
        from :func:`default_sample_count`, capped at ``max_samples`` (the cap
        keeps experiment sweeps finite at larger ``f`` — when the cap binds,
        the construction's failure probability is larger than requested and
        the result notes it in ``parameters["sample_cap_hit"]``).
    survival_probability:
        Probability each vertex survives into a sample (``q`` above).
    rng:
        Seed / random source for reproducibility.

    A thin shim over the algorithm registry
    (``BuildSpec("sampling-union", ...)``); rng objects that are not plain
    integer seeds bypass the (JSON-valued) spec and call the implementation
    directly — the results are identical either way.
    """
    if rng is None or isinstance(rng, int):
        from repro.build import BuildSpec, build
        return build(graph, BuildSpec(
            algorithm="sampling-union", stretch=stretch,
            max_faults=max_faults, fault_model="vertex", seed=rng,
            params={"samples": samples,
                    "survival_probability": survival_probability,
                    "failure_probability": failure_probability,
                    "max_samples": max_samples}))
    return _sampling_union(graph, stretch, max_faults, samples=samples,
                           survival_probability=survival_probability,
                           failure_probability=failure_probability,
                           max_samples=max_samples, rng=rng)


def _sampling_union(graph: Graph, stretch: float, max_faults: int,
                    *, samples: Optional[int] = None,
                    survival_probability: float = 0.5,
                    failure_probability: float = 0.1,
                    max_samples: int = 2000,
                    rng=None) -> SpannerResult:
    """The implementation behind the registry entry and the shim."""
    if stretch < 1:
        raise ValueError("stretch must be at least 1")
    if max_faults < 0:
        raise ValueError("max_faults must be non-negative")
    if not 0.0 < survival_probability < 1.0:
        raise ValueError("survival_probability must lie strictly between 0 and 1")
    rng = ensure_rng(rng)
    n = graph.number_of_nodes()

    requested = samples if samples is not None else default_sample_count(
        n, max_faults,
        failure_probability=failure_probability,
        survival_probability=survival_probability,
    )
    sample_count = min(requested, max_samples)

    timer = Timer("sampling-union").start()
    union = graph.spanning_subgraph()
    distance_queries = 0
    # Always include one spanner of the full graph so the union is a k-spanner
    # of G even in the fault-free case regardless of sampling luck.
    base = greedy_spanner(graph, stretch)
    distance_queries += base.distance_queries
    for u, v, w in base.spanner.edges():
        union.add_edge(u, v, w)

    nodes = list(graph.nodes())
    for index in range(sample_count):
        sample_rng = rng.spawn("sample", index)
        kept = [node for node in nodes if sample_rng.bernoulli(survival_probability)]
        induced = graph.subgraph(kept)
        if induced.number_of_edges() == 0:
            continue
        layer = greedy_spanner(induced, stretch)
        distance_queries += layer.distance_queries
        for u, v, w in layer.spanner.edges():
            if not union.has_edge(u, v):
                union.add_edge(u, v, w)
    timer.stop()

    return SpannerResult(
        spanner=union,
        original=graph,
        stretch=stretch,
        max_faults=max_faults,
        fault_model="vertex",
        algorithm="sampling-union",
        edges_considered=graph.number_of_edges() * (sample_count + 1),
        edges_added=union.number_of_edges(),
        distance_queries=distance_queries,
        construction_seconds=timer.elapsed,
        parameters={
            "samples_requested": requested,
            "samples_used": sample_count,
            "sample_cap_hit": requested > sample_count,
            "survival_probability": survival_probability,
        },
    )
