"""The trivial baseline: keep every edge.

Vacuously an ``f``-fault-tolerant ``k``-spanner for every ``f`` and ``k``
(``H \\ F = G \\ F``); its only purpose is to anchor the size comparisons — any
construction worth reporting must beat ``m`` edges.
"""

from __future__ import annotations

from repro.graph.core import Graph
from repro.spanners.base import SpannerResult
from repro.utils.timing import Timer


def trivial_spanner(graph: Graph, stretch: float = 1.0,
                    max_faults: int = 0, fault_model: str = "vertex") -> SpannerResult:
    """Return the whole graph packaged as a :class:`SpannerResult`.

    A thin shim over the algorithm registry (``BuildSpec("trivial", ...)``).
    """
    from repro.build import BuildSpec, build
    return build(graph, BuildSpec(algorithm="trivial", stretch=stretch,
                                  max_faults=max_faults,
                                  fault_model=fault_model))


def _trivial(graph: Graph, stretch: float = 1.0,
             max_faults: int = 0, fault_model: str = "vertex") -> SpannerResult:
    """The implementation behind the registry entry and the shim."""
    timer = Timer("trivial").start()
    spanner = graph.copy()
    timer.stop()
    return SpannerResult(
        spanner=spanner,
        original=graph,
        stretch=stretch,
        max_faults=max_faults,
        fault_model=fault_model,
        algorithm="trivial",
        edges_considered=graph.number_of_edges(),
        edges_added=spanner.number_of_edges(),
        construction_seconds=timer.elapsed,
    )
