"""Theoretical size bounds and the matching lower-bound construction.

* :mod:`repro.bounds.moore` — the Moore bounds on ``b(n, k)``, the maximum
  number of edges of an ``n``-node graph with girth ``> k``.
* :mod:`repro.bounds.theoretical` — the size-bound formulas of this paper
  (Theorem 1, Corollary 2) and of the prior work it improves on, as plain
  functions so experiments can plot measured sizes against them.
* :mod:`repro.bounds.lower_bound` — the Bodwin–Dinitz–Parter–Williams
  lower-bound instance (high-girth graph blown up by a ``⌊f/2⌋``-copy
  biclique) used by the paper both for optimality (Section 1) and for the
  EFT limitation remark (Section 2), together with checkers that its edges
  really are forced and that it carries a small edge blocking set.
"""

from repro.bounds.moore import moore_bound, max_edges_girth_greater, girth_edge_frontier
from repro.bounds.theoretical import (
    theorem1_bound,
    corollary2_bound,
    bdpw18_upper_bound,
    dinitz_krauthgamer_bound,
    clpr_bound,
    trivial_bound,
    non_ft_greedy_bound,
    BOUND_FORMULAS,
)
from repro.bounds.lower_bound import (
    vertex_blowup,
    bdpw_lower_bound_instance,
    LowerBoundInstance,
    forced_edge_fraction,
    edge_blocking_set_for_blowup,
)

__all__ = [
    "moore_bound",
    "max_edges_girth_greater",
    "girth_edge_frontier",
    "theorem1_bound",
    "corollary2_bound",
    "bdpw18_upper_bound",
    "dinitz_krauthgamer_bound",
    "clpr_bound",
    "trivial_bound",
    "non_ft_greedy_bound",
    "BOUND_FORMULAS",
    "vertex_blowup",
    "bdpw_lower_bound_instance",
    "LowerBoundInstance",
    "forced_edge_fraction",
    "edge_blocking_set_for_blowup",
]
