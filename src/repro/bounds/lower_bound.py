"""The Bodwin–Dinitz–Parter–Williams lower-bound instance and its checkers.

The paper cites a "simple lower bound construction in [9]" to argue Theorem 1
is best possible in the VFT setting, and reuses the same graph in the closing
remark of Section 2: take an arbitrary graph ``G*`` of girth ``> k + 1`` and
combine it with a biclique on ``⌊f/2⌋`` nodes so that every vertex of ``G*``
is represented by ``⌊f/2⌋ + 1``-ish many copies and every edge of ``G*``
becomes a complete bipartite graph between the copy sets.

Concretely, this module implements the construction as the **vertex blow-up**
``blowup(G*, t)``: each vertex ``u`` becomes ``t`` copies ``(u, 0..t-1)`` and
each edge ``{u, v}`` becomes the biclique between the copies of ``u`` and the
copies of ``v`` (this is the tensor product of ``G*`` with the complete
bipartite pattern the paper describes).  With ``t = ⌊f/2⌋ + 1``:

* the instance has ``t² · |E(G*)|  = Θ(f² · b(n/f, k+1))`` edges when ``G*``
  is extremal for its girth;
* every edge is *forced*: for edge ``{(u,i), (v,j)}`` the adversary faults the
  other ``t − 1`` copies of ``u`` and the other ``t − 1`` copies of ``v``
  (``2(t−1) ≤ f`` faults), after which every surviving alternative
  ``(u,i)``–``(v,j)`` path projects to a ``u``–``v`` walk in ``G*`` avoiding
  the edge ``{u, v}``, hence has at least ``k + 1`` edges because
  ``girth(G*) > k + 1`` — so any ``f``-VFT ``k``-spanner must keep the edge;
* it nevertheless admits an **edge** ``(k+1)``-blocking set of size at most
  ``f · |E|`` (the closing-remark witness), which is why blocking sets alone
  cannot give a better EFT bound.

:func:`forced_edge_fraction` verifies the "every edge is forced" property
empirically with the exact fault-check oracle, and
:func:`edge_blocking_set_for_blowup` builds the closing-remark edge blocking
set explicitly so experiment E10 can validate it with the short-cycle oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.core import Graph, Node, edge_key
from repro.graph.generators import cage, high_girth_greedy
from repro.graph.girth import girth
from repro.spanners.blocking import BlockingSet
from repro.spanners.fault_check import BranchAndBoundOracle, FaultCheckOracle
from repro.utils.rng import ensure_rng


def vertex_blowup(base: Graph, copies: int, *, weight: float = 1.0) -> Graph:
    """Blow up every vertex of ``base`` into ``copies`` copies.

    Nodes of the result are ``(u, i)`` for ``u ∈ V(base)`` and
    ``0 ≤ i < copies``; each base edge ``{u, v}`` becomes the complete
    bipartite graph between the copies of ``u`` and the copies of ``v``.
    Copies of the same base vertex are *not* adjacent.
    """
    if copies < 1:
        raise ValueError("copies must be at least 1")
    result = Graph(name=f"blowup({base.name or 'G'},{copies})")
    result.metadata.update({
        "family": "blowup",
        "base": base.name,
        "copies": copies,
        "base_nodes": base.number_of_nodes(),
        "base_edges": base.number_of_edges(),
    })
    for u in base.nodes():
        for i in range(copies):
            result.add_node((u, i))
    for u, v, _ in base.edges():
        for i in range(copies):
            for j in range(copies):
                result.add_edge((u, i), (v, j), weight)
    return result


@dataclass
class LowerBoundInstance:
    """A constructed lower-bound instance plus the quantities the bound predicts."""

    graph: Graph
    base: Graph
    copies: int
    stretch: float
    max_faults: int
    #: ``f² · b(n/f, k+1)``-style prediction using the *actual* base density.
    predicted_forced_edges: int

    @property
    def nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edges(self) -> int:
        return self.graph.number_of_edges()


def bdpw_lower_bound_instance(max_faults: int, stretch: float, *,
                              base: Optional[Graph] = None,
                              base_nodes: int = 20,
                              rng=None) -> LowerBoundInstance:
    """Build the BDPW lower-bound instance for the given ``f`` and ``k``.

    Parameters
    ----------
    max_faults:
        The fault budget ``f ≥ 1`` the instance is hard for.
    stretch:
        The stretch ``k``; the base graph must have girth ``> k + 1``.
    base:
        Optional explicit base graph of girth ``> k + 1``.  By default a
        suitable base is chosen automatically: the degree-3 cage of girth
        ``k + 2`` when one exists for small ``k``, otherwise a random greedy
        high-girth graph on ``base_nodes`` nodes.
    base_nodes:
        Size of the automatically generated base (ignored when ``base`` given).

    Notes
    -----
    The number of copies is ``⌊f/2⌋ + 1`` so that the adversary's
    ``2(t − 1) ≤ f`` faults exist; the total number of forced edges is
    ``copies² · |E(base)|``, which is the value stored in
    ``predicted_forced_edges`` (it equals the edge count of the instance).
    """
    if max_faults < 1:
        raise ValueError("max_faults must be at least 1")
    girth_needed = int(math.floor(stretch)) + 2  # girth > k + 1
    if base is None:
        base = _default_base(girth_needed, base_nodes, rng)
    else:
        base_girth = girth(base, cutoff=girth_needed - 1)
        if base_girth <= girth_needed - 1:
            raise ValueError(
                f"base graph has girth {base_girth} <= {girth_needed - 1}; "
                f"the construction needs girth > k + 1"
            )
    copies = max_faults // 2 + 1
    blowup = vertex_blowup(base, copies)
    blowup.metadata.update({"stretch": stretch, "max_faults": max_faults})
    return LowerBoundInstance(
        graph=blowup,
        base=base,
        copies=copies,
        stretch=stretch,
        max_faults=max_faults,
        predicted_forced_edges=copies * copies * base.number_of_edges(),
    )


def _default_base(girth_needed: int, base_nodes: int, rng) -> Graph:
    """Pick a girth-``>= girth_needed`` base: a cage when available, else random greedy."""
    for cage_girth in (girth_needed, girth_needed + 1):
        if cage_girth in (5, 6, 7, 8):
            candidate = cage(cage_girth)
            if candidate.number_of_nodes() <= max(base_nodes * 2, 30):
                return candidate
    return high_girth_greedy(base_nodes, girth_needed - 1, rng=ensure_rng(rng))


def forced_edge_fraction(instance: LowerBoundInstance, *,
                         oracle: Optional[FaultCheckOracle] = None,
                         sample_edges: Optional[int] = None,
                         rng=None) -> float:
    """Fraction of instance edges that are provably forced into any f-VFT spanner.

    An edge ``e = {x, y}`` is forced when there is a fault set ``F`` of size at
    most ``f`` such that ``dist_{(G − e) \\ F}(x, y) > k · w(e)`` — then any
    subgraph missing ``e`` violates Definition 2 for that ``F``.  The check
    reuses the exact fault-check oracle on ``G − e``.

    ``sample_edges`` limits the check to a random sample (the instances grow
    quadratically with ``f``); the default checks every edge.
    """
    checker = oracle if oracle is not None else BranchAndBoundOracle()
    graph = instance.graph
    edges = list(graph.edges())
    if sample_edges is not None and sample_edges < len(edges):
        rng = ensure_rng(rng)
        edges = rng.sample(edges, sample_edges)
    if not edges:
        return 1.0
    forced = 0
    for u, v, w in edges:
        without = Graph(nodes=graph.nodes())
        for a, b, weight in graph.edges():
            if edge_key(a, b) != edge_key(u, v):
                without.add_edge(a, b, weight)
        witness = checker.find_breaking_fault_set(
            without, u, v, instance.stretch * w, instance.max_faults, "vertex"
        )
        if witness is not None:
            forced += 1
    return forced / len(edges)


def adversarial_fault_set_for_edge(instance: LowerBoundInstance,
                                   u: Tuple, v: Tuple) -> List[Tuple]:
    """The explicit fault set that forces the edge ``{(u_base, i), (v_base, j)}``.

    Faults every other copy of the two base endpoints — ``2(copies − 1) ≤ f``
    vertices.  Exposed so tests can check the analytic construction against
    the oracle's output.
    """
    (base_u, i), (base_v, j) = u, v
    faults = [(base_u, c) for c in range(instance.copies) if c != i]
    faults += [(base_v, c) for c in range(instance.copies) if c != j]
    return faults


def edge_blocking_set_for_blowup(instance: LowerBoundInstance) -> BlockingSet:
    """The closing-remark edge blocking set of the lower-bound instance.

    The set contains every pair of distinct blow-up edges that (a) come from
    the same base edge and (b) share an endpoint.  Any cycle of the blow-up on
    at most ``k + 1`` edges must reuse some base edge consecutively (its
    projection to the base would otherwise be a closed walk containing a cycle
    of length ``≤ k + 1``, impossible since the base has girth ``> k + 1``),
    and two consecutive traversals of the same base edge are exactly such a
    pair.  The size is at most ``f · |E|``: each edge ``((u,i),(v,j))`` is
    paired with the ``2(copies − 1) ≤ f`` edges sharing one endpoint and the
    same base edge.
    """
    base_of: Dict[Tuple, Tuple] = {}
    for (u, i), (v, j), _ in instance.graph.edges():
        base_of[edge_key((u, i), (v, j))] = edge_key(u, v)

    # Group blow-up edges by (base edge, shared endpoint).
    by_endpoint: Dict[Tuple, List[Tuple]] = {}
    for blow_edge, base_edge in base_of.items():
        for endpoint in blow_edge:
            by_endpoint.setdefault((base_edge, endpoint), []).append(blow_edge)

    pairs = set()
    for (_, _endpoint), edges in by_endpoint.items():
        for index, first in enumerate(edges):
            for second in edges[index + 1:]:
                ordered = tuple(sorted((first, second), key=repr))
                pairs.add(ordered)
    cycle_bound = int(math.floor(instance.stretch)) + 1
    return BlockingSet(
        kind="edge",
        pairs=frozenset(pairs),
        cycle_bound=cycle_bound,
        source=f"bdpw-blowup(copies={instance.copies})",
    )
