"""The Moore bounds: how many edges can a graph of girth ``> k`` have?

The paper states its main theorem in terms of ``b(n, k)``, the maximum number
of edges of an ``n``-node graph with girth strictly greater than ``k``, and
then instantiates it with the folklore Moore bounds
``b(n, k) = O(n^{1 + 1/⌊k/2⌋})`` to obtain Corollary 2.  Determining ``b``
exactly is a famous open problem (the Erdős girth conjecture posits the Moore
bounds are tight), so this module provides:

* :func:`moore_bound` — the asymptotic Moore-bound *formula* (with unit
  constant), used as the reference curve in plots and in the Theorem 1 /
  Corollary 2 bound functions;
* :func:`max_edges_girth_greater` — small exact values computed by brute
  force, used in tests to sanity-check the formula's shape;
* :func:`girth_edge_frontier` — empirical frontier produced by the random
  greedy high-girth generator, used by experiment E4 to show how close the
  constructive instances get to the Moore curve.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional

from repro.graph.core import Graph
from repro.graph.girth import girth
from repro.utils.rng import ensure_rng


def moore_bound(n: float, k: int) -> float:
    """Asymptotic Moore bound ``n^{1 + 1/⌊k/2⌋}`` on ``b(n, k)`` (unit constant).

    Parameters
    ----------
    n:
        Number of nodes (real-valued so ``n/f`` can be passed directly).
    k:
        Girth threshold: the bound applies to graphs of girth ``> k``.

    Notes
    -----
    For ``k < 2`` there is no cycle constraint at all and the bound is the
    trivial ``n²`` (every graph has girth > 2 in the simple-graph sense only
    when it has no multi-edges; girth > 2 is automatic, so ``b(n, 2)`` is
    ``n(n-1)/2``).  The function returns ``n * (n - 1) / 2`` in that regime.
    """
    if n <= 0:
        return 0.0
    if k <= 2:
        return n * (n - 1) / 2.0
    exponent = 1.0 + 1.0 / math.floor(k / 2)
    return float(n) ** exponent


def max_edges_girth_greater(n: int, k: int, *, exact_limit: int = 6,
                            rng=None, attempts: int = 200) -> int:
    """``b(n, k)`` computed exactly for tiny ``n`` and lower-bounded heuristically otherwise.

    For ``n <= exact_limit`` all graphs on ``n`` labelled vertices are
    enumerated (the default limit of 6 keeps this at ``2^{15}`` candidate edge
    sets, which is instant; raising it much further becomes very slow).  For
    larger ``n`` the value returned is the best of ``attempts`` runs of the
    random greedy high-girth generator — a *lower bound* on ``b(n, k)``, which
    is what the experiments need (they compare measured spanner sizes against
    achievable densities).
    """
    if n <= 1:
        return 0
    if k <= 2:
        return n * (n - 1) // 2
    if n <= exact_limit:
        return _exact_extremal_edges(n, k)
    from repro.graph.generators import high_girth_greedy

    rng = ensure_rng(rng)
    best = 0
    for attempt in range(attempts):
        candidate = high_girth_greedy(n, k, rng=rng.spawn("attempt", attempt))
        best = max(best, candidate.number_of_edges())
    return best


def _exact_extremal_edges(n: int, k: int) -> int:
    """Exact ``b(n, k)`` by exhaustive search over edge subsets (tiny ``n`` only)."""
    pairs = list(itertools.combinations(range(n), 2))
    best = 0
    # Search subsets in decreasing size via simple branch and bound on the
    # greedy completion; for n <= 8 plain enumeration over all subsets is still
    # affordable but the bound below prunes most of it.
    total = len(pairs)
    for mask in range(1 << total):
        count = mask.bit_count()
        if count <= best:
            continue
        graph = Graph(nodes=range(n))
        for index in range(total):
            if mask >> index & 1:
                graph.add_edge(*pairs[index])
        if girth(graph, cutoff=k) > k:
            best = count
    return best


def girth_edge_frontier(n: int, girth_values: List[int], *, rng=None,
                        attempts: int = 20) -> Dict[int, int]:
    """Empirical ``girth → max edges found`` frontier for ``n``-node graphs.

    For each requested girth threshold ``g`` the random greedy generator is
    run ``attempts`` times and the densest girth-``> g`` graph found is
    recorded.  Experiment E4 plots this against :func:`moore_bound`.
    """
    from repro.graph.generators import high_girth_greedy

    rng = ensure_rng(rng)
    frontier: Dict[int, int] = {}
    for g in girth_values:
        best = 0
        for attempt in range(attempts):
            candidate = high_girth_greedy(n, g, rng=rng.spawn(g, attempt))
            best = max(best, candidate.number_of_edges())
        frontier[g] = best
    return frontier
