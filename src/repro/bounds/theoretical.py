"""Size-bound formulas: this paper's results and the prior work it improves on.

These are *asymptotic shapes with unit constants*, meant for qualitative
comparison curves in the experiments (who grows how fast in ``n``, ``f``, and
``k``), not for predicting absolute edge counts.  The forms encoded here are
the ones the respective papers state, with logarithmic and constant factors
noted in the docstrings:

* this paper (Theorem 1 / Corollary 2): ``O(f² · b(n/f, k+1))`` and, for
  stretch ``2k − 1``, ``O(n^{1+1/k} · f^{1−1/k})``;
* Bodwin–Dinitz–Parter–Williams (SODA'18): the same ``n``/``f`` dependence but
  with an extra ``exp(k)`` factor — the factor Corollary 2 removes;
* Dinitz–Krauthgamer (PODC'11): ``Õ(f^{2−2/k} · n^{1+1/k})`` for vertex
  faults;
* Chechik–Langberg–Peleg–Roditty (SICOMP'10): ``O(f² · k^{f+1} · n^{1+1/k} · log n)``
  for vertex faults — exponential in ``f``;
* the trivial bound ``n(n−1)/2`` and the non-FT greedy bound ``n^{1+1/k}``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from repro.bounds.moore import moore_bound


def _stretch_to_k(stretch: float) -> float:
    """Invert ``stretch = 2k - 1``; fractional stretches give fractional ``k``."""
    if stretch < 1:
        raise ValueError("stretch must be at least 1")
    return (stretch + 1.0) / 2.0


def theorem1_bound(n: float, max_faults: int, stretch: float) -> float:
    """Theorem 1: ``f² · b(n/f, k+1)`` with the Moore bound standing in for ``b``.

    For ``f = 0`` this degenerates to the non-FT greedy bound ``b(n, k+1)``.
    """
    if max_faults <= 0:
        return moore_bound(n, int(math.floor(stretch)) + 1)
    effective_n = n / max_faults
    return max_faults ** 2 * moore_bound(effective_n, int(math.floor(stretch)) + 1)


def corollary2_bound(n: float, max_faults: int, stretch: float) -> float:
    """Corollary 2: ``n^{1+1/k} · f^{1−1/k}`` for stretch ``2k − 1``."""
    k = _stretch_to_k(stretch)
    f = max(max_faults, 1)
    return float(n) ** (1.0 + 1.0 / k) * float(f) ** (1.0 - 1.0 / k)


def bdpw18_upper_bound(n: float, max_faults: int, stretch: float) -> float:
    """The previous best bound (BDPW, SODA'18): Corollary 2 times ``exp(k)``.

    The paper states Corollary 2 "improves over the previous best upper bound
    in [9] by a factor of exp(k)"; the comparison curves encode exactly that
    factor (base ``e``).
    """
    k = _stretch_to_k(stretch)
    return corollary2_bound(n, max_faults, stretch) * math.exp(k)


def dinitz_krauthgamer_bound(n: float, max_faults: int, stretch: float) -> float:
    """Dinitz–Krauthgamer (PODC'11) vertex-fault bound ``Õ(f^{2−2/k} n^{1+1/k})``.

    The hidden polylogarithmic factor is omitted (unit constants throughout).
    """
    k = _stretch_to_k(stretch)
    f = max(max_faults, 1)
    return float(n) ** (1.0 + 1.0 / k) * float(f) ** (2.0 - 2.0 / k)


def clpr_bound(n: float, max_faults: int, stretch: float) -> float:
    """Chechik–Langberg–Peleg–Roditty (SICOMP'10) bound ``O(f² k^{f+1} n^{1+1/k} log n)``.

    Exponential in ``f`` — included so the experiments can show how quickly it
    is overtaken even at small ``f``.
    """
    k = _stretch_to_k(stretch)
    f = max(max_faults, 1)
    logn = math.log(max(n, 2.0))
    return (f ** 2) * (k ** (f + 1)) * float(n) ** (1.0 + 1.0 / k) * logn


def trivial_bound(n: float, max_faults: int = 0, stretch: float = 1.0) -> float:
    """Keeping the whole graph: ``n(n−1)/2`` edges."""
    return n * (n - 1) / 2.0


def non_ft_greedy_bound(n: float, max_faults: int = 0, stretch: float = 3.0) -> float:
    """The fault-free greedy bound ``n^{1+1/k}`` for stretch ``2k − 1``."""
    k = _stretch_to_k(stretch)
    return float(n) ** (1.0 + 1.0 / k)


#: Registry used by the experiments to iterate over all comparison curves.
BOUND_FORMULAS: Dict[str, Callable[[float, int, float], float]] = {
    "theorem1": theorem1_bound,
    "corollary2": corollary2_bound,
    "bdpw18": bdpw18_upper_bound,
    "dinitz-krauthgamer": dinitz_krauthgamer_bound,
    "clpr": clpr_bound,
    "trivial": trivial_bound,
    "non-ft-greedy": non_ft_greedy_bound,
}


def bound_ratio(measured_edges: int, bound_name: str, n: float, max_faults: int,
                stretch: float) -> float:
    """Measured size divided by a named bound — the "constant factor" experiments track."""
    try:
        formula = BOUND_FORMULAS[bound_name]
    except KeyError:
        raise ValueError(
            f"unknown bound {bound_name!r}; expected one of {sorted(BOUND_FORMULAS)}"
        ) from None
    value = formula(n, max_faults, stretch)
    if value <= 0:
        return math.inf
    return measured_edges / value
