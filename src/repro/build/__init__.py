"""Unified construction API: build specs, the algorithm registry, and sessions.

The one declarative surface every consumer constructs spanners through:

>>> from repro.build import BuildSpec, build
>>> from repro.graph import generators
>>> graph = generators.gnm(40, 160, rng=0, connected=True)
>>> result = build(graph, BuildSpec("ft-greedy", stretch=3, max_faults=1))
>>> result.algorithm
'ft-greedy[branch-and-bound]'

* :class:`BuildSpec` — a frozen, JSON round-trippable description of one
  construction (algorithm, stretch, fault budget/model, oracle, seed,
  workers/backend, algorithm-specific params);
* the **registry** (:func:`register_algorithm` / :func:`get_algorithm` /
  :func:`available_algorithms`) — every construction in
  :mod:`repro.spanners` and :mod:`repro.baselines` registered with declared
  :class:`AlgorithmCapabilities`, validated against specs before running;
* :func:`build` — the facade the CLI, experiments, engine, and benchmarks
  all go through;
* :class:`BuildSession` — build → verify → snapshot → serve behind one spec,
  with shared execution backend, progress callbacks, and cancellation.

The classic entry points (``ft_greedy_spanner`` and friends) remain as thin
shims over this registry with byte-identical outputs.
"""

from repro.build.spec import SPEC_FORMAT, BuildCancelled, BuildError, BuildSpec
from repro.build.registry import (
    ALGORITHMS,
    AlgorithmCapabilities,
    RegisteredAlgorithm,
    available_algorithms,
    get_algorithm,
    register_algorithm,
    validate_spec,
)
from repro.build.session import BuildContext, BuildSession, build

# Importing the adapters populates the registry with the six paper
# constructions (plus the vft/eft pinned variants).
import repro.build.algorithms  # noqa: F401  (registration side effect)

__all__ = [
    "SPEC_FORMAT",
    "BuildCancelled",
    "BuildError",
    "BuildSpec",
    "ALGORITHMS",
    "AlgorithmCapabilities",
    "RegisteredAlgorithm",
    "available_algorithms",
    "get_algorithm",
    "register_algorithm",
    "validate_spec",
    "BuildContext",
    "BuildSession",
    "build",
]
