"""Registry entries for every construction in :mod:`repro.spanners` / :mod:`repro.baselines`.

Importing this module (which :mod:`repro.build` does on package import)
populates the algorithm registry.  Each builder is a small adapter mapping a
:class:`~repro.build.spec.BuildSpec` onto the underlying implementation
function; the public construction functions (``ft_greedy_spanner``,
``greedy_spanner``, the baselines) are in turn thin shims over this registry,
so both entry paths execute exactly the same code and produce byte-identical
spanners, witness fault sets, and work counters.

Registered algorithms:

=================  =========================================================
``ft-greedy``      Algorithm 1 of the paper (VFT/EFT greedy, exact oracles,
                   parallelizable fault checks, records witnesses).
``vft-greedy``     ``ft-greedy`` pinned to the vertex fault model.
``eft-greedy``     ``ft-greedy`` pinned to the edge fault model.
``greedy``         The classic non-fault-tolerant greedy spanner.
``trivial``        Keep every edge (vacuously fault tolerant).
``sampling-union`` Union of greedy spanners of random induced subgraphs
                   (folklore randomized VFT construction).
``peeling-union``  Union of ``f + 1`` iteratively peeled greedy spanners
                   (classic EFT construction).
=================  =========================================================
"""

from __future__ import annotations

from repro.baselines.peeling import _peeling_union
from repro.baselines.sampling import _sampling_union
from repro.baselines.trivial import _trivial
from repro.build.registry import AlgorithmCapabilities, register_algorithm
from repro.build.session import BuildContext
from repro.build.spec import BuildSpec
from repro.graph.core import Graph
from repro.spanners.base import SpannerResult
from repro.spanners.ft_greedy import _ft_greedy
from repro.spanners.greedy import _greedy

_FT_GREEDY_ORACLES = ("branch-and-bound", "exhaustive",
                      "greedy-path-packing", "tiered")
_FT_GREEDY_CAPS = AlgorithmCapabilities(
    fault_tolerant=True, fault_models=("vertex", "edge"),
    produces_witnesses=True, accepts_oracle=True, parallelizable=True,
    supported_oracles=_FT_GREEDY_ORACLES)
_FT_GREEDY_PARAMS = ("record_witnesses", "progress_every")


def _run_ft_greedy(graph: Graph, spec: BuildSpec, ctx: BuildContext,
                   fault_model: str) -> SpannerResult:
    return _ft_greedy(
        graph, spec.stretch, spec.max_faults, fault_model,
        oracle=spec.oracle,
        record_witnesses=spec.params.get("record_witnesses", True),
        progress_every=spec.params.get("progress_every", 0),
        workers=spec.workers, backend=spec.backend, kernel=spec.kernel,
        on_progress=ctx.on_progress, should_cancel=ctx.should_cancel)


@register_algorithm(
    "ft-greedy", capabilities=_FT_GREEDY_CAPS, params=_FT_GREEDY_PARAMS,
    description="Algorithm 1: the fault-tolerant greedy spanner (the paper)")
def _build_ft_greedy(graph: Graph, spec: BuildSpec,
                     ctx: BuildContext) -> SpannerResult:
    return _run_ft_greedy(graph, spec, ctx, spec.fault_model)


@register_algorithm(
    "vft-greedy",
    capabilities=AlgorithmCapabilities(
        fault_tolerant=True, fault_models=("vertex",),
        produces_witnesses=True, accepts_oracle=True, parallelizable=True,
        supported_oracles=_FT_GREEDY_ORACLES),
    params=_FT_GREEDY_PARAMS,
    description="ft-greedy pinned to vertex faults (where the bound is optimal)")
def _build_vft_greedy(graph: Graph, spec: BuildSpec,
                      ctx: BuildContext) -> SpannerResult:
    return _run_ft_greedy(graph, spec, ctx, "vertex")


@register_algorithm(
    "eft-greedy",
    capabilities=AlgorithmCapabilities(
        fault_tolerant=True, fault_models=("edge",),
        produces_witnesses=True, accepts_oracle=True, parallelizable=True,
        supported_oracles=_FT_GREEDY_ORACLES),
    params=_FT_GREEDY_PARAMS,
    description="ft-greedy pinned to edge faults (EFT setting)")
def _build_eft_greedy(graph: Graph, spec: BuildSpec,
                      ctx: BuildContext) -> SpannerResult:
    return _run_ft_greedy(graph, spec, ctx, "edge")


@register_algorithm(
    "greedy",
    capabilities=AlgorithmCapabilities(),
    description="classic greedy spanner (Althöfer et al.; non-fault-tolerant)")
def _build_greedy(graph: Graph, spec: BuildSpec,
                  ctx: BuildContext) -> SpannerResult:
    return _greedy(graph, spec.stretch)


@register_algorithm(
    "trivial",
    capabilities=AlgorithmCapabilities(
        fault_tolerant=True, fault_models=("vertex", "edge")),
    description="keep every edge (vacuously fault tolerant; the size ceiling)")
def _build_trivial(graph: Graph, spec: BuildSpec,
                   ctx: BuildContext) -> SpannerResult:
    return _trivial(graph, spec.stretch, spec.max_faults, spec.fault_model)


@register_algorithm(
    "sampling-union",
    capabilities=AlgorithmCapabilities(
        fault_tolerant=True, fault_models=("vertex",), randomized=True),
    params=("samples", "survival_probability", "failure_probability",
            "max_samples"),
    description="union of greedy spanners of random induced subgraphs "
                "(folklore randomized VFT baseline, exp(f) samples)")
def _build_sampling_union(graph: Graph, spec: BuildSpec,
                          ctx: BuildContext) -> SpannerResult:
    params = spec.params
    return _sampling_union(
        graph, spec.stretch, spec.max_faults,
        samples=params.get("samples"),
        survival_probability=params.get("survival_probability", 0.5),
        failure_probability=params.get("failure_probability", 0.1),
        max_samples=params.get("max_samples", 2000),
        rng=ctx.rng(spec))


@register_algorithm(
    "peeling-union",
    capabilities=AlgorithmCapabilities(
        fault_tolerant=True, fault_models=("edge",)),
    description="union of f+1 iteratively peeled greedy spanners "
                "(classic EFT baseline)")
def _build_peeling_union(graph: Graph, spec: BuildSpec,
                         ctx: BuildContext) -> SpannerResult:
    return _peeling_union(graph, spec.stretch, spec.max_faults)
