"""The algorithm registry: every spanner construction behind one surface.

Constructions register with :func:`register_algorithm`, declaring their
*capabilities* — is the output fault tolerant, and under which fault models?
does it produce per-edge witness fault sets?  does it accept a fault-check
oracle?  can the build itself be parallelized?  is it randomized? — plus the
algorithm-specific parameter names it understands.  A
:class:`~repro.build.spec.BuildSpec` is checked against those declarations by
:func:`validate_spec` *before* the construction runs, so "greedy cannot take
a fault budget" or "peeling-union is edge-fault only" fail fast with a
precise error instead of surfacing as a wrong-looking spanner.

The registered builders all share one signature::

    builder(graph: Graph, spec: BuildSpec, ctx: BuildContext) -> SpannerResult

The adapters living in :mod:`repro.build.algorithms` map specs onto the
concrete construction functions in :mod:`repro.spanners` and
:mod:`repro.baselines`; those functions in turn remain available as thin
shims over this registry, with byte-identical outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.build.spec import BuildError, BuildSpec
from repro.faults.models import get_fault_model


@dataclass(frozen=True)
class AlgorithmCapabilities:
    """What one registered construction can and cannot do.

    Attributes
    ----------
    fault_tolerant:
        Whether the output withstands a positive fault budget.  Specs with
        ``max_faults > 0`` are rejected for algorithms without it.
    fault_models:
        Fault models the construction supports (``()`` for non-fault-tolerant
        algorithms, whose specs may carry any model — it is ignored).
    produces_witnesses:
        Whether ``witness_fault_sets`` is populated (the Lemma 3 input).
    accepts_oracle:
        Whether ``spec.oracle`` selects a fault-check oracle.
    parallelizable:
        Whether ``spec.workers > 1`` shards the construction through
        :mod:`repro.runtime`.
    randomized:
        Whether ``spec.seed`` feeds a random stream (deterministic
        algorithms ignore the seed, so one spec can sweep the registry).
    supported_oracles:
        Canonical oracle names ``spec.oracle`` may resolve to (empty means
        "any registered oracle" for algorithms that accept one).  Aliases
        are fine in the spec; validation resolves them first.
    """

    fault_tolerant: bool = False
    fault_models: Tuple[str, ...] = ()
    produces_witnesses: bool = False
    accepts_oracle: bool = False
    parallelizable: bool = False
    randomized: bool = False
    supported_oracles: Tuple[str, ...] = ()

    def describe(self) -> str:
        """Compact capability string for CLI listings."""
        bits: List[str] = []
        if self.fault_tolerant:
            bits.append("ft:" + "/".join(self.fault_models))
        else:
            bits.append("non-ft")
        if self.produces_witnesses:
            bits.append("witnesses")
        if self.accepts_oracle:
            bits.append("oracle")
        if self.parallelizable:
            bits.append("parallel")
        if self.randomized:
            bits.append("seeded")
        return ",".join(bits)


Builder = Callable[..., "object"]  # (graph, spec, ctx) -> SpannerResult


@dataclass(frozen=True)
class RegisteredAlgorithm:
    """One entry of the algorithm registry."""

    name: str
    builder: Builder
    capabilities: AlgorithmCapabilities
    description: str = ""
    #: Algorithm-specific ``spec.params`` keys the builder understands.
    params: Tuple[str, ...] = ()

    @property
    def default_fault_model(self) -> str:
        """The model a spec should default to when the user named none."""
        if self.capabilities.fault_models:
            return self.capabilities.fault_models[0]
        return "vertex"


#: The global registry, populated by :mod:`repro.build.algorithms` on import.
ALGORITHMS: Dict[str, RegisteredAlgorithm] = {}


def register_algorithm(name: str, *, capabilities: AlgorithmCapabilities,
                       description: str = "",
                       params: Tuple[str, ...] = ()) -> Callable[[Builder], Builder]:
    """Decorator registering a ``builder(graph, spec, ctx)`` under ``name``."""
    def wrap(builder: Builder) -> Builder:
        existing = ALGORITHMS.get(name)
        if existing is not None and existing.builder is not builder:
            raise BuildError(f"algorithm {name!r} is already registered")
        ALGORITHMS[name] = RegisteredAlgorithm(
            name=name, builder=builder, capabilities=capabilities,
            description=description, params=tuple(params))
        return builder
    return wrap


def available_algorithms() -> List[str]:
    """Sorted names of every registered construction."""
    return sorted(ALGORITHMS)


def get_algorithm(name: str) -> RegisteredAlgorithm:
    """Look up a registered construction by name."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise BuildError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None


def validate_spec(spec: BuildSpec) -> RegisteredAlgorithm:
    """Check ``spec`` against its algorithm's declared capabilities.

    Returns the registry entry so callers can go straight to the builder.
    Raises :class:`BuildError` on any mismatch; the numeric/structural
    invariants were already enforced by :class:`BuildSpec` itself.
    """
    algorithm = get_algorithm(spec.algorithm)
    caps = algorithm.capabilities
    if spec.max_faults > 0 and not caps.fault_tolerant:
        raise BuildError(
            f"algorithm {spec.algorithm!r} is not fault tolerant "
            f"(spec asks for max_faults={spec.max_faults})")
    if caps.fault_tolerant and caps.fault_models:
        model = get_fault_model(spec.fault_model).name
        if model not in caps.fault_models:
            raise BuildError(
                f"algorithm {spec.algorithm!r} supports fault model(s) "
                f"{list(caps.fault_models)}, not {model!r}")
    if spec.oracle is not None and not caps.accepts_oracle:
        raise BuildError(
            f"algorithm {spec.algorithm!r} does not accept a fault-check "
            f"oracle (spec asks for {spec.oracle!r})")
    if spec.oracle is not None and caps.supported_oracles:
        from repro.spanners.fault_check import oracle_name
        try:
            resolved = oracle_name(spec.oracle)
        except ValueError as exc:
            raise BuildError(str(exc)) from None
        if resolved not in caps.supported_oracles:
            raise BuildError(
                f"algorithm {spec.algorithm!r} supports oracle(s) "
                f"{list(caps.supported_oracles)}, not {resolved!r}")
    if spec.workers > 1 and not caps.parallelizable:
        raise BuildError(
            f"algorithm {spec.algorithm!r} is not parallelizable "
            f"(spec asks for workers={spec.workers}); drop workers to 1 and "
            f"keep them for the verification stage instead")
    unknown = sorted(set(spec.params) - set(algorithm.params))
    if unknown:
        raise BuildError(
            f"algorithm {spec.algorithm!r} does not understand param(s) "
            f"{unknown}; declared params: {sorted(algorithm.params)}")
    return algorithm
