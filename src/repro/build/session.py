"""The ``build()`` facade and the build → verify → snapshot → serve session.

:func:`build` is the one call every consumer (CLI, experiments, engine,
benchmarks) makes to construct a spanner: validate the spec against the
registry, then hand the graph to the registered builder.  The result is
byte-identical to calling the underlying construction function directly —
same spanner, same witness fault sets, same work counters.

:class:`BuildSession` chains the full serving pipeline behind one spec: the
construction, the fault-tolerance verification, the serving snapshot (which
records the spec so it can rebuild itself), and the query engine — all
sharing the spec's ``workers``/``backend`` execution knobs, with optional
progress callbacks and cooperative cancellation.

>>> from repro.graph import generators
>>> from repro.build import BuildSpec, BuildSession
>>> graph = generators.gnm(30, 90, rng=0, connected=True)
>>> session = BuildSession(graph, BuildSpec("ft-greedy", stretch=3, max_faults=1))
>>> result = session.build()
>>> report = session.verify(samples=20, rng=0)
>>> snapshot = session.snapshot()
>>> engine = session.engine()
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.build.registry import validate_spec
from repro.build.spec import BuildCancelled, BuildSpec
from repro.graph.core import Graph
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.spanners.base import SpannerResult
from repro.utils.logging import get_logger
from repro.utils.rng import RandomSource, ensure_rng

_LOGGER = get_logger("build.session")

_BUILDS = get_registry().counter(
    "build.builds", "spanner constructions run, by algorithm")
_BUILD_SECONDS = get_registry().histogram(
    "build.seconds", "construction wall time")


def _run_builder(algorithm, graph: Graph, spec: BuildSpec, ctx) -> SpannerResult:
    """Run one registered builder inside the build span and counters.

    Shared by the :func:`build` facade and :meth:`BuildSession.build` (which
    calls the builder directly to reuse its validated algorithm entry), so
    every construction — whatever the entry point — lands in the same
    ``build.*`` metric family and trace phase.
    """
    started = time.perf_counter()
    with get_tracer().span("build.construct", algorithm=spec.algorithm,
                           stretch=spec.stretch, max_faults=spec.max_faults,
                           workers=spec.workers) as span:
        result = algorithm.builder(graph, spec, ctx)
        span.set(edges_added=result.edges_added)
    _BUILDS.labels(algorithm=spec.algorithm).inc()
    _BUILD_SECONDS.observe(time.perf_counter() - started)
    return result

#: ``on_progress(stage, done, total)`` — ``total`` may be 0 when unknown.
ProgressCallback = Callable[[str, int, int], None]
#: ``should_cancel()`` — polled between units of work; ``True`` aborts.
CancelCallback = Callable[[], bool]


@dataclass
class BuildContext:
    """Per-build hooks handed to the registered builders.

    Builders poll :meth:`check_cancelled` between units of work and report
    through :meth:`progress`; both hooks are optional and default to no-ops,
    so direct construction-function calls pay nothing.
    """

    on_progress: Optional[ProgressCallback] = None
    should_cancel: Optional[CancelCallback] = None

    def progress(self, stage: str, done: int, total: int) -> None:
        if self.on_progress is not None:
            self.on_progress(stage, done, total)

    def cancelled(self) -> bool:
        return self.should_cancel is not None and bool(self.should_cancel())

    def check_cancelled(self) -> None:
        if self.cancelled():
            raise BuildCancelled("build cancelled by its should_cancel hook")

    def rng(self, spec: BuildSpec) -> RandomSource:
        """The spec's deterministic random stream (randomized algorithms)."""
        return ensure_rng(spec.seed)


def build(graph: Graph, spec: BuildSpec, *,
          on_progress: Optional[ProgressCallback] = None,
          should_cancel: Optional[CancelCallback] = None) -> SpannerResult:
    """Run the construction described by ``spec`` on ``graph``.

    The spec is validated against the algorithm's declared capabilities
    first (:func:`repro.build.registry.validate_spec`), so incompatible
    requests fail before any work happens.
    """
    algorithm = validate_spec(spec)
    ctx = BuildContext(on_progress=on_progress, should_cancel=should_cancel)
    ctx.check_cancelled()
    return _run_builder(algorithm, graph, spec, ctx)


class BuildSession:
    """One spec driven through build → verify → snapshot → serve.

    Stages are lazy and cached: :meth:`build` runs the construction once,
    :meth:`verify` checks the result under the spec's fault budget,
    :meth:`snapshot` wraps it for serving (recording the spec so the
    snapshot can rebuild itself), and :meth:`engine` opens a
    :class:`~repro.engine.engine.QueryEngine` over it.  Every stage shares
    the spec's ``workers``/``backend`` execution knobs.
    """

    def __init__(self, graph: Graph, spec: BuildSpec, *,
                 on_progress: Optional[ProgressCallback] = None,
                 should_cancel: Optional[CancelCallback] = None):
        self.graph = graph
        self.spec = spec
        self.algorithm = validate_spec(spec)  # fail fast, before any stage
        self._ctx = BuildContext(on_progress=on_progress,
                                 should_cancel=should_cancel)
        self._result: Optional[SpannerResult] = None
        self._report = None
        self._snapshot = None
        self._snapshot_keep_original: Optional[bool] = None

    # ---------------------------------------------------------------- stages
    @property
    def result(self) -> Optional[SpannerResult]:
        """The construction result, if :meth:`build` has run."""
        return self._result

    def build(self) -> SpannerResult:
        """Run (or reuse) the construction stage."""
        if self._result is None:
            self._ctx.check_cancelled()
            self._ctx.progress("build", 0, 1)
            self._result = _run_builder(self.algorithm, self.graph, self.spec,
                                        self._ctx)
            self._ctx.progress("build", 1, 1)
        return self._result

    def verify(self, *, method: str = "auto", samples: int = 200, rng=None):
        """Verify the built spanner under the spec's fault budget.

        Runs :func:`repro.spanners.verify.is_ft_spanner` with the spec's
        stretch, fault budget, fault model, and execution knobs (a budget of
        0 degenerates to the plain stretch check over the empty fault set).
        The report is cached on the session.
        """
        from repro.spanners.verify import is_ft_spanner

        result = self.build()
        self._ctx.check_cancelled()
        self._ctx.progress("verify", 0, 1)
        fault_model = (result.fault_model if result.fault_model != "none"
                       else self.spec.fault_model)
        with get_tracer().span("session.verify",
                               algorithm=self.spec.algorithm):
            self._report = is_ft_spanner(
                self.graph, result.spanner, self.spec.stretch,
                self.spec.max_faults, fault_model=fault_model, method=method,
                samples=samples, rng=self.spec.seed if rng is None else rng,
                workers=self.spec.workers, backend=self.spec.backend,
                kernel=self.spec.kernel)
        self._ctx.progress("verify", 1, 1)
        return self._report

    @property
    def report(self):
        """The verification report, if :meth:`verify` has run."""
        return self._report

    def snapshot(self, *, keep_original: bool = True):
        """Wrap the built spanner as a spec-carrying serving snapshot.

        Cached per ``keep_original`` value: asking for the other flavour
        re-wraps the (already built) result rather than returning a
        snapshot that ignores the flag.
        """
        from repro.engine.snapshot import SpannerSnapshot

        if self._snapshot is None or self._snapshot_keep_original != keep_original:
            result = self.build()
            with get_tracer().span("session.snapshot",
                                   keep_original=keep_original):
                self._snapshot = SpannerSnapshot.from_result(
                    result, keep_original=keep_original, spec=self.spec)
            self._snapshot_keep_original = keep_original
        return self._snapshot

    def save_snapshot(self, path) -> None:
        """Write the (built) snapshot to ``path`` as one JSON document."""
        self.snapshot().save(path)

    def engine(self, *, cache_size: int = 256, admit_threshold: int = 2):
        """A query engine over the snapshot, sharing the spec's backend."""
        from repro.engine.engine import QueryEngine

        return QueryEngine(self.snapshot(), cache_size=cache_size,
                           admit_threshold=admit_threshold,
                           backend=self.spec.backend,
                           workers=self.spec.workers,
                           kernel=self.spec.kernel)

    def dynamic(self):
        """A :class:`~repro.dynamic.maintain.DynamicSpanner` over the result.

        The entry point into incremental maintenance: adopts the (built)
        construction — witnesses included — and maintains its ``k``/``f``
        guarantee across edge updates without rebuilding; repair sweeps and
        certifications share the spec's ``workers``/``backend`` knobs.  Wrap
        it in :class:`~repro.dynamic.live.LiveEngine` to keep serving
        queries while updates flow.  Requires an FT-greedy-family spec.
        """
        from repro.dynamic.maintain import DynamicSpanner

        return DynamicSpanner(self.graph, self.spec, result=self.build())

    # --------------------------------------------------------------- summary
    def summary(self) -> dict:
        """Flat dict describing the session's spec and completed stages."""
        document = {"spec": self.spec.to_json(),
                    "algorithm": self.spec.algorithm,
                    "built": self._result is not None,
                    "verified": self._report is not None}
        if self._result is not None:
            document.update(self._result.summary())
        if self._report is not None:
            document["verify_ok"] = self._report.ok
            document["worst_stretch"] = self._report.worst_stretch
        return document

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BuildSession {self.spec.summary()} "
                f"built={self._result is not None} "
                f"verified={self._report is not None}>")
