"""Declarative build specifications for spanner constructions.

A :class:`BuildSpec` is the single value that describes *which* construction
to run and *how*: the registry name of the algorithm, the paper parameters
(stretch ``k``, fault budget ``f``, fault model), the oracle choice, the
randomness seed, the execution knobs (``workers`` / ``backend`` from
:mod:`repro.runtime`), and a dict of algorithm-specific parameters.

Specs are frozen and JSON round-trippable, so they can live inside snapshot
metadata (:class:`repro.engine.snapshot.SpannerSnapshot` records the spec it
was built from and can rebuild itself), experiment configs, and CLI
invocations — one declarative surface for every consumer.

Only *structural* invariants are checked here (numeric ranges, known fault
model / backend names).  Whether an algorithm exists and whether it supports
the requested fault model, oracle, parallelism, and parameters is the
registry's job: see :func:`repro.build.registry.validate_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional

from repro.faults.models import get_fault_model

#: The ``format`` field of a serialised spec document.
SPEC_FORMAT = "repro-build-spec"

_VALID_BACKENDS = (None, "auto", "serial", "process")


class BuildError(ValueError):
    """A build spec is malformed or incompatible with its algorithm."""


class BuildCancelled(RuntimeError):
    """Raised when a build is cancelled through its ``should_cancel`` hook."""


@dataclass(frozen=True)
class BuildSpec:
    """Everything needed to (re)run one spanner construction.

    Attributes
    ----------
    algorithm:
        Registry name of the construction (see
        :func:`repro.build.registry.available_algorithms`).
    stretch:
        The stretch factor ``k >= 1``.
    max_faults:
        The fault budget ``f >= 0`` (must be 0 for non-fault-tolerant
        algorithms).
    fault_model:
        ``"vertex"`` or ``"edge"``; ignored by non-fault-tolerant algorithms.
    oracle:
        Fault-check oracle *name* for algorithms that accept one
        (``"branch-and-bound"``, ``"tiered"``, ``"exhaustive"``,
        ``"greedy-path-packing"``); ``None`` keeps the algorithm default.
    seed:
        Integer seed for randomized algorithms; ignored by deterministic
        ones (so one spec can be reused across a registry sweep).
    workers / backend:
        Execution knobs resolved through
        :func:`repro.runtime.backend.get_backend`.  ``workers > 1`` requires
        the algorithm to declare itself parallelizable.
    kernel:
        Kernel backend name resolved through
        :func:`repro.paths.get_kernels` (``"loop"``, ``"numpy"``,
        ``"auto"``); ``None`` auto-selects by graph size.  An execution
        knob like ``workers``/``backend``: it changes how distances are
        computed, never what they are.
    params:
        Algorithm-specific parameters (e.g. ``samples`` for
        ``sampling-union``).  Keys are validated against the algorithm's
        declared parameter names before the build runs.
    """

    algorithm: str
    stretch: float = 3.0
    max_faults: int = 0
    fault_model: str = "vertex"
    oracle: Optional[str] = None
    seed: Optional[int] = None
    workers: int = 1
    backend: Optional[str] = None
    kernel: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Defensive copy so a caller-held dict cannot mutate a frozen spec.
        object.__setattr__(self, "params", dict(self.params))
        if not self.algorithm or not isinstance(self.algorithm, str):
            raise BuildError("spec.algorithm must be a non-empty string")
        if self.stretch < 1:
            raise BuildError("spec.stretch must be at least 1")
        if self.max_faults < 0:
            raise BuildError("spec.max_faults must be non-negative")
        if self.workers < 1:
            raise BuildError("spec.workers must be at least 1")
        if self.backend not in _VALID_BACKENDS:
            raise BuildError(
                f"spec.backend must be one of {_VALID_BACKENDS[1:]} or None, "
                f"got {self.backend!r}")
        if self.seed is not None and not isinstance(self.seed, int):
            raise BuildError("spec.seed must be an int or None "
                             "(specs are JSON documents; pass rng objects to "
                             "the direct construction functions instead)")
        if self.kernel is not None:
            if not isinstance(self.kernel, str):
                raise BuildError("spec.kernel must be a backend name or None "
                                 "(specs are JSON documents; pass backend "
                                 "objects to the direct functions instead)")
            from repro.paths.registry import kernel_backend_names
            # Unknown names fail fast; known-but-unavailable ones (numpy
            # missing) are left to fail at resolve time with the reason.
            from repro.paths.registry import _UNAVAILABLE
            if (self.kernel not in kernel_backend_names()
                    and self.kernel not in _UNAVAILABLE):
                raise BuildError(
                    f"spec.kernel must be one of "
                    f"{kernel_backend_names()} or None, got {self.kernel!r}")
        # Fail fast on unknown fault models rather than mid-construction.
        get_fault_model(self.fault_model)

    # ------------------------------------------------------------ derivation
    def replace(self, **changes: Any) -> "BuildSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------- I/O
    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable document (inverse of :meth:`from_json`)."""
        return {
            "format": SPEC_FORMAT,
            "version": 1,
            "algorithm": self.algorithm,
            "stretch": self.stretch,
            "max_faults": self.max_faults,
            "fault_model": self.fault_model,
            "oracle": self.oracle,
            "seed": self.seed,
            "workers": self.workers,
            "backend": self.backend,
            "kernel": self.kernel,
            "params": dict(self.params),
        }

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "BuildSpec":
        """Rebuild a spec from :meth:`to_json` output.

        Unknown keys are rejected rather than silently dropped: a spec is a
        contract about how a spanner was built, and a typo'd or
        future-version field that silently vanished would make "rebuild from
        snapshot metadata" lie.
        """
        if document.get("format", SPEC_FORMAT) != SPEC_FORMAT:
            raise BuildError(
                f"not a {SPEC_FORMAT} document: format={document.get('format')!r}")
        known = {f.name for f in fields(cls)}
        envelope = {"format", "version"}
        unknown = sorted(set(document) - known - envelope)
        if unknown:
            raise BuildError(
                f"unknown build-spec field(s) {unknown}; "
                f"known fields: {sorted(known)}")
        kwargs: Dict[str, Any] = {
            name: document[name] for name in known if name in document}
        if "algorithm" not in kwargs:
            raise BuildError("build-spec document is missing 'algorithm'")
        if "params" in kwargs and not isinstance(kwargs["params"], Mapping):
            raise BuildError("build-spec 'params' must be an object")
        return cls(**kwargs)

    def summary(self) -> str:
        """One-line human-readable form (CLI and log output)."""
        bits = [f"{self.algorithm} k={self.stretch}"]
        if self.max_faults:
            bits.append(f"f={self.max_faults} ({self.fault_model})")
        if self.oracle:
            bits.append(f"oracle={self.oracle}")
        if self.seed is not None:
            bits.append(f"seed={self.seed}")
        if self.workers > 1:
            bits.append(f"workers={self.workers}")
        if self.kernel:
            bits.append(f"kernel={self.kernel}")
        if self.params:
            bits.append(", ".join(f"{k}={v}" for k, v in sorted(self.params.items())))
        return " ".join(bits)
