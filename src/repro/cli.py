"""Command-line interface.

Installed as ``repro-spanner`` (see ``pyproject.toml``) and runnable as
``python -m repro``.  Subcommands:

* ``build``       — build a (fault-tolerant) spanner of a graph file and write
  it back out, printing a summary;
* ``verify``      — check the spanner / FT-spanner property of a subgraph file
  against an original graph file;
* ``experiment``  — run one of the registered experiments (E1..E10) and print
  its result table;
* ``lower-bound`` — generate a BDPW lower-bound instance and write it to a
  file;
* ``generate``    — generate a workload graph to a file.

All graph files are the edge-list / JSON formats of :mod:`repro.graph.io`
(chosen by extension: ``.json`` vs anything else).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bounds.lower_bound import bdpw_lower_bound_instance
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.workloads import WORKLOADS, get_workload
from repro.graph.io import read_edge_list, read_json, write_edge_list, write_json
from repro.graph.products import relabel_product_nodes
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.spanners.verify import is_ft_spanner, is_spanner, stretch_of
from repro.utils.logging import configure_cli_logging, get_logger

_LOGGER = get_logger("cli")


def _load_graph(path: str):
    path_obj = Path(path)
    if path_obj.suffix == ".json":
        return read_json(path_obj)
    return read_edge_list(path_obj)


def _save_graph(graph, path: str) -> None:
    path_obj = Path(path)
    if path_obj.suffix == ".json":
        write_json(graph, path_obj)
    else:
        write_edge_list(graph, path_obj)


# --------------------------------------------------------------------------
# Subcommand implementations
# --------------------------------------------------------------------------

def _cmd_build(args: argparse.Namespace) -> int:
    graph = _load_graph(args.input)
    if args.faults > 0:
        result = ft_greedy_spanner(graph, args.stretch, args.faults,
                                   fault_model=args.fault_model,
                                   oracle=args.oracle)
    else:
        result = greedy_spanner(graph, args.stretch)
    print(f"input: n={graph.number_of_nodes()} m={graph.number_of_edges()}")
    print(f"spanner: {result.algorithm} k={args.stretch} f={args.faults} "
          f"({args.fault_model}) -> {result.size} edges "
          f"({result.compression_ratio:.1%} of input) "
          f"in {result.construction_seconds:.2f}s")
    if args.output:
        _save_graph(result.spanner, args.output)
        print(f"wrote spanner to {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    original = _load_graph(args.original)
    subgraph = _load_graph(args.subgraph)
    if args.faults > 0:
        report = is_ft_spanner(original, subgraph, args.stretch, args.faults,
                               fault_model=args.fault_model, method=args.method,
                               samples=args.samples, rng=args.seed)
        print(f"fault model: {report.fault_model}, f={report.max_faults}, "
              f"checked {report.fault_sets_checked} fault sets "
              f"({'exhaustive' if report.exhaustive else 'sampled'})")
        print(f"worst stretch observed: {report.worst_stretch:.4f} "
              f"(required <= {args.stretch})")
        print("VERDICT:", "OK" if report.ok else "VIOLATED")
        return 0 if report.ok else 1
    ok = is_spanner(original, subgraph, args.stretch)
    print(f"stretch: {stretch_of(original, subgraph):.4f} (required <= {args.stretch})")
    print("VERDICT:", "OK" if ok else "VIOLATED")
    return 0 if ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.ident.lower() == "all":
        idents = sorted(EXPERIMENTS)
    else:
        idents = [args.ident]
    for ident in idents:
        table = run_experiment(ident, scale=args.scale, rng=args.seed)
        print()
        print(table.to_markdown() if args.markdown else table.to_ascii())
        if args.csv_dir:
            out = Path(args.csv_dir) / f"{ident.lower()}.csv"
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(table.to_csv(), encoding="utf-8")
            print(f"[wrote {out}]")
    return 0


def _cmd_lower_bound(args: argparse.Namespace) -> int:
    instance = bdpw_lower_bound_instance(args.faults, args.stretch,
                                         base_nodes=args.base_nodes, rng=args.seed)
    graph, _mapping = relabel_product_nodes(instance.graph)
    print(f"BDPW blow-up: base={instance.base.name} copies={instance.copies} "
          f"n={instance.nodes} m={instance.edges}")
    if args.output:
        _save_graph(graph, args.output)
        print(f"wrote instance to {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    graph = workload.instantiate(args.seed)
    print(f"{workload.name}: n={graph.number_of_nodes()} m={graph.number_of_edges()}")
    _save_graph(graph, args.output)
    print(f"wrote graph to {args.output}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("experiments:")
    for ident, spec in sorted(EXPERIMENTS.items()):
        print(f"  {ident:4s} {spec.title} — {spec.claim}")
    print("\nworkloads:")
    for name, workload in sorted(WORKLOADS.items()):
        print(f"  {name:18s} {workload.description}")
    return 0


# --------------------------------------------------------------------------
# Argument parsing
# --------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-spanner",
        description="Fault tolerant spanners: constructions, verification, experiments.",
    )
    parser.add_argument("--verbose", action="store_true", help="debug logging")
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a (fault tolerant) spanner of a graph file")
    build.add_argument("input", help="input graph (.json or edge list)")
    build.add_argument("--output", "-o", help="where to write the spanner")
    build.add_argument("--stretch", "-k", type=float, default=3.0)
    build.add_argument("--faults", "-f", type=int, default=0)
    build.add_argument("--fault-model", choices=["vertex", "edge"], default="vertex")
    build.add_argument("--oracle", default=None,
                       choices=["branch-and-bound", "exhaustive", "greedy-path-packing"])
    build.set_defaults(func=_cmd_build)

    verify = sub.add_parser("verify", help="verify the (FT) spanner property")
    verify.add_argument("original", help="original graph file")
    verify.add_argument("subgraph", help="candidate spanner file")
    verify.add_argument("--stretch", "-k", type=float, default=3.0)
    verify.add_argument("--faults", "-f", type=int, default=0)
    verify.add_argument("--fault-model", choices=["vertex", "edge"], default="vertex")
    verify.add_argument("--method", choices=["auto", "exhaustive", "sampled"], default="auto")
    verify.add_argument("--samples", type=int, default=100)
    verify.add_argument("--seed", type=int, default=0)
    verify.set_defaults(func=_cmd_verify)

    experiment = sub.add_parser("experiment", help="run a registered experiment (E1..E10)")
    experiment.add_argument("ident", help="experiment id (E1..E10) or 'all'")
    experiment.add_argument("--scale", choices=["quick", "full"], default="quick")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--markdown", action="store_true", help="emit markdown tables")
    experiment.add_argument("--csv-dir", help="also write each table as CSV into this directory")
    experiment.set_defaults(func=_cmd_experiment)

    lower = sub.add_parser("lower-bound", help="generate a BDPW lower-bound instance")
    lower.add_argument("--faults", "-f", type=int, required=True)
    lower.add_argument("--stretch", "-k", type=float, default=3.0)
    lower.add_argument("--base-nodes", type=int, default=14)
    lower.add_argument("--seed", type=int, default=0)
    lower.add_argument("--output", "-o", help="where to write the instance")
    lower.set_defaults(func=_cmd_lower_bound)

    generate = sub.add_parser("generate", help="generate a named workload graph")
    generate.add_argument("workload", choices=sorted(WORKLOADS))
    generate.add_argument("output", help="output file (.json or edge list)")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    lister = sub.add_parser("list", help="list experiments and workloads")
    lister.set_defaults(func=_cmd_list)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_cli_logging(verbose=args.verbose)
    try:
        return args.func(args)
    except (ValueError, OSError) as error:
        _LOGGER.error("%s", error)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
