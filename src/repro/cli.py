"""Command-line interface.

Installed as ``repro-spanner`` (see ``pyproject.toml``) and runnable as
``python -m repro``.  Subcommands:

* ``build``       — build a spanner of a graph file with any registered
  algorithm (``--algorithm``, over the full :mod:`repro.build` registry) and
  write it back out, printing a summary;
* ``verify``      — check the spanner / FT-spanner property of a subgraph file
  against an original graph file;
* ``experiment``  — run one of the registered experiments (E1..E10) and print
  its result table;
* ``lower-bound`` — generate a BDPW lower-bound instance and write it to a
  file;
* ``generate``    — generate a workload graph to a file;
* ``serve``       — load (or build) a spanner snapshot and replay a synthetic
  query workload through the batched query engine, reporting throughput and
  cache statistics;
* ``daemon``      — run the persistent serving daemon (:mod:`repro.serve`):
  an asyncio HTTP + WebSocket API over the snapshot with cross-client batch
  coalescing, live ``/v1/update`` ingestion when the snapshot carries its
  original graph, and ``/health`` + ``/metrics`` endpoints;
* ``query``       — answer a single fault-tolerant distance query against a
  snapshot or graph file;
* ``update``      — apply an update journal to a snapshot through the
  incremental maintainer (:mod:`repro.dynamic`), optionally certifying the
  maintained spanner and writing the refreshed snapshot back out;
* ``replay``      — deterministically replay an update journal onto a graph
  file, optionally cross-checking incremental maintenance against a
  from-scratch rebuild at the final graph;
* ``stats``       — render a metrics snapshot saved by ``--metrics-json`` /
  ``REPRO_METRICS`` as a table, Prometheus text, or JSON.

``build``, ``verify``, ``serve``, ``query``, and ``update`` all accept
``--trace PATH`` (JSONL span trace, or the ``REPRO_TRACE`` environment
variable) and ``--metrics-json PATH`` (schema-stable metrics snapshot, or
``REPRO_METRICS``) — see :mod:`repro.obs`.

Update journals are the JSON documents of :mod:`repro.dynamic.updates`.

All graph files are the edge-list / JSON formats of :mod:`repro.graph.io`
(chosen by extension via :func:`repro.graph.io.load_graph_auto`); spanner
snapshots are the JSON documents of :mod:`repro.engine.snapshot`.

``build``, ``serve``, and ``query`` share one set of construction options
translated by :func:`spec_from_args` into a single
:class:`~repro.build.spec.BuildSpec`, so construction defaults cannot drift
between subcommands.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

from repro.bounds.lower_bound import bdpw_lower_bound_instance
from repro.build import (
    ALGORITHMS,
    BuildSession,
    BuildSpec,
    available_algorithms,
    get_algorithm,
)
from repro.engine.engine import QueryEngine
from repro.engine.snapshot import SpannerSnapshot
from repro.engine.workload import (
    fault_churn_sessions,
    split_batches,
    uniform_workload,
    zipf_workload,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.workloads import WORKLOADS, get_workload
from repro.graph.io import load_graph_auto, parse_node, save_graph_auto
from repro.obs.export import (
    METRICS_ENV_VAR,
    load_metrics_json,
    render_metrics_table,
    render_prometheus,
    write_metrics_json,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import TRACE_ENV_VAR, get_tracer
from repro.graph.products import relabel_product_nodes
from repro.serve.protocol import (
    RequestError,
    dispatch_sync,
    from_wire_distance,
)
from repro.spanners.verify import STRETCH_TOLERANCE, is_ft_spanner, stretch_of
from repro.utils.logging import configure_cli_logging, get_logger
from repro.utils.tables import Table

_LOGGER = get_logger("cli")


# --------------------------------------------------------------------------
# Build-spec plumbing shared by build / serve / query
# --------------------------------------------------------------------------

def _parse_param(pair: str):
    """One ``--param KEY=VALUE`` entry; values parse as JSON, else string."""
    key, separator, value = pair.partition("=")
    if not separator or not key.strip():
        raise ValueError(f"--param expects KEY=VALUE, got {pair!r}")
    try:
        return key.strip(), json.loads(value)
    except json.JSONDecodeError:
        return key.strip(), value.strip()


def spec_from_args(args: argparse.Namespace) -> BuildSpec:
    """Translate the shared construction options into one :class:`BuildSpec`.

    This is the *only* place CLI options become construction parameters, so
    defaults cannot drift between ``build``, ``serve``, and ``query``.
    ``--algorithm auto`` keeps the historical behaviour: ``ft-greedy`` when
    a fault budget is given, the plain ``greedy`` spanner otherwise.  An
    unset ``--fault-model`` resolves to the algorithm's native model, so
    e.g. ``--algorithm peeling-union`` needs no extra flag.
    """
    algorithm = args.algorithm
    if algorithm == "auto":
        algorithm = "ft-greedy" if args.faults > 0 else "greedy"
    entry = get_algorithm(algorithm)
    params = dict(_parse_param(pair) for pair in (args.param or []))
    # ``--param oracle=NAME`` round-trips into the spec's oracle slot (the
    # explicit --oracle flag wins when both are given); validation against
    # the algorithm's supported oracles happens in validate_spec.
    oracle = args.oracle
    if oracle is None and "oracle" in params:
        oracle = params.pop("oracle")
    return BuildSpec(
        algorithm=algorithm,
        stretch=args.stretch,
        max_faults=args.faults,
        fault_model=args.fault_model or entry.default_fault_model,
        oracle=oracle,
        # Deterministic constructions record no seed, so the spec carried in
        # a snapshot never suggests spurious randomness (serve's workload
        # --seed in particular is not a construction parameter).
        seed=(getattr(args, "seed", None)
              if entry.capabilities.randomized else None),
        workers=getattr(args, "workers", 1),
        backend=getattr(args, "backend", None),
        kernel=getattr(args, "kernel", None),
        params=params,
    )


# --------------------------------------------------------------------------
# Subcommand implementations
# --------------------------------------------------------------------------

def _cmd_build(args: argparse.Namespace) -> int:
    graph = load_graph_auto(args.input)
    spec = spec_from_args(args)
    session = BuildSession(graph, spec)
    result = session.build()
    print(f"input: n={graph.number_of_nodes()} m={graph.number_of_edges()}")
    print(f"spanner: {result.algorithm} k={spec.stretch} f={spec.max_faults} "
          f"({spec.fault_model}) -> {result.size} edges "
          f"({result.compression_ratio:.1%} of input) "
          f"in {result.construction_seconds:.2f}s")
    if args.output:
        save_graph_auto(result.spanner, args.output)
        print(f"wrote spanner to {args.output}")
    if args.save_snapshot:
        session.save_snapshot(args.save_snapshot)
        print(f"wrote snapshot to {args.save_snapshot}")
    return 0


def _verify_report_table(args: argparse.Namespace, *, mode: str, checked,
                         worst: float, ok: bool, witness=None) -> Table:
    """One-row result table shared by the text and ``--json`` verify output."""
    table = Table(
        columns=["fault_model", "max_faults", "mode", "fault_sets_checked",
                 "worst_stretch", "required_stretch", "ok", "witness"],
        title="repro-spanner verify",
    )
    table.add_row({
        "fault_model": args.fault_model if args.faults > 0 else None,
        "max_faults": args.faults,
        "mode": mode,
        "fault_sets_checked": checked,
        "worst_stretch": worst,
        "required_stretch": args.stretch,
        "ok": ok,
        # `is not None`: the empty fault set is a legitimate witness (the
        # subgraph fails the plain stretch bound) and must not read as
        # "no witness recorded".
        "witness": sorted(witness, key=repr) if witness is not None else None,
    })
    return table


def _cmd_verify(args: argparse.Namespace) -> int:
    original = load_graph_auto(args.original)
    subgraph = load_graph_auto(args.subgraph)
    if args.faults > 0:
        report = is_ft_spanner(original, subgraph, args.stretch, args.faults,
                               fault_model=args.fault_model, method=args.method,
                               samples=args.samples, rng=args.seed,
                               workers=args.workers, backend=args.backend,
                               kernel=args.kernel)
        table = _verify_report_table(
            args, mode="exhaustive" if report.exhaustive else "sampled",
            checked=report.fault_sets_checked, worst=report.worst_stretch,
            ok=report.ok, witness=report.violating_fault_set)
        if args.json:
            print(json.dumps({"command": "verify", "original": args.original,
                              "subgraph": args.subgraph, "seed": args.seed,
                              "workers": args.workers, "verdict": report.ok,
                              **table.to_json()}, indent=2))
            return 0 if report.ok else 1
        print(f"fault model: {report.fault_model}, f={report.max_faults}, "
              f"checked {report.fault_sets_checked} fault sets "
              f"({'exhaustive' if report.exhaustive else 'sampled'}, "
              f"{args.workers} worker(s))")
        print(f"worst stretch observed: {report.worst_stretch:.4f} "
              f"(required <= {args.stretch})")
        print("VERDICT:", "OK" if report.ok else "VIOLATED")
        return 0 if report.ok else 1
    worst = stretch_of(original, subgraph, workers=args.workers,
                       backend=args.backend, kernel=args.kernel)
    ok = worst <= args.stretch * (1.0 + STRETCH_TOLERANCE)
    if args.json:
        table = _verify_report_table(args, mode="stretch", checked=None,
                                     worst=worst, ok=ok)
        print(json.dumps({"command": "verify", "original": args.original,
                          "subgraph": args.subgraph, "seed": args.seed,
                          "workers": args.workers, "verdict": ok,
                          **table.to_json()}, indent=2))
        return 0 if ok else 1
    print(f"stretch: {worst:.4f} (required <= {args.stretch})")
    print("VERDICT:", "OK" if ok else "VIOLATED")
    return 0 if ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.ident.lower() == "all":
        idents = sorted(EXPERIMENTS)
    else:
        idents = [args.ident]
    documents = []
    for ident in idents:
        table = run_experiment(ident, scale=args.scale, rng=args.seed,
                               workers=args.workers)
        if args.json:
            documents.append({"experiment": ident.upper(), "scale": args.scale,
                              "seed": args.seed, **table.to_json()})
        else:
            print()
            print(table.to_markdown() if args.markdown else table.to_ascii())
        if args.csv_dir:
            out = Path(args.csv_dir) / f"{ident.lower()}.csv"
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(table.to_csv(), encoding="utf-8")
            if not args.json:
                print(f"[wrote {out}]")
    if args.json:
        print(json.dumps(documents if len(documents) != 1 else documents[0],
                         indent=2))
    return 0


def _cmd_lower_bound(args: argparse.Namespace) -> int:
    instance = bdpw_lower_bound_instance(args.faults, args.stretch,
                                         base_nodes=args.base_nodes, rng=args.seed)
    graph, _mapping = relabel_product_nodes(instance.graph)
    print(f"BDPW blow-up: base={instance.base.name} copies={instance.copies} "
          f"n={instance.nodes} m={instance.edges}")
    if args.output:
        save_graph_auto(graph, args.output)
        print(f"wrote instance to {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    graph = workload.instantiate(args.seed)
    print(f"{workload.name}: n={graph.number_of_nodes()} m={graph.number_of_edges()}")
    save_graph_auto(graph, args.output)
    print(f"wrote graph to {args.output}")
    return 0


def _resolve_snapshot(args: argparse.Namespace) -> SpannerSnapshot:
    """Load a snapshot file, or build one from a graph file (serve/query).

    Builds go through the same :func:`spec_from_args` translator as the
    ``build`` subcommand, and the resulting snapshot records its
    :class:`BuildSpec` so it can later rebuild itself.
    """
    if SpannerSnapshot.is_snapshot_file(args.input):
        return SpannerSnapshot.load(args.input)
    graph = load_graph_auto(args.input)
    return BuildSession(graph, spec_from_args(args)).snapshot()


def _engine_core(engine, **kwargs):
    """An :class:`repro.serve.core.EngineCore` over ``engine`` (lazy import).

    The protocol core shared with the daemon: the one-shot ``serve`` /
    ``query`` verbs dispatch through it with a zero-width coalescing window,
    so their request parsing and report shapes are literally the daemon's.
    """
    from repro.serve.core import EngineCore

    return EngineCore(engine, **kwargs)


def _wire_query(query) -> list:
    """One workload query (``Query`` object or triple) in wire form."""
    if hasattr(query, "source"):
        source, target = query.source, query.target
        faults = getattr(query, "faults", ())
    else:
        source, target, *rest = query
        faults = rest[0] if rest else ()
    return [source, target,
            [list(fault) if isinstance(fault, tuple) else fault
             for fault in faults]]


def _parse_fault_spec(spec: str, fault_model: str) -> tuple:
    """Parse ``--faults``: comma-separated nodes, or ``u:v`` pairs for edges."""
    if not spec:
        return ()
    faults = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if fault_model == "edge":
            endpoints = token.split(":")
            if len(endpoints) != 2:
                raise ValueError(
                    f"edge fault {token!r} must be 'u:v' (colon-separated endpoints)"
                )
            faults.append((parse_node(endpoints[0]), parse_node(endpoints[1])))
        else:
            faults.append(parse_node(token))
    return tuple(faults)


def _cmd_serve(args: argparse.Namespace) -> int:
    snapshot = _resolve_snapshot(args)
    if args.save_snapshot:
        snapshot.save(args.save_snapshot)
    engine = QueryEngine(snapshot, cache_size=args.cache_size,
                         kernel=args.kernel)
    query_faults = (snapshot.max_faults if args.query_faults is None
                    else args.query_faults)
    if args.workload == "uniform":
        queries = uniform_workload(snapshot.spanner, args.queries,
                                   max_faults=query_faults,
                                   fault_model=snapshot.fault_model,
                                   rng=args.seed)
    elif args.workload == "zipf":
        queries = zipf_workload(snapshot.spanner, args.queries,
                                skew=args.zipf_skew, max_faults=query_faults,
                                fault_pool=args.fault_pool,
                                fault_model=snapshot.fault_model,
                                rng=args.seed)
    else:  # churn
        per_session = max(1, args.queries // max(1, args.sessions))
        queries = fault_churn_sessions(snapshot.spanner, args.sessions,
                                       per_session, max_faults=query_faults,
                                       fault_model=snapshot.fault_model,
                                       rng=args.seed)
    # The workload replays through the daemon's own request-schema/dispatch
    # code (a degenerate zero-width coalescing window), so the one-shot
    # surface and the persistent daemon cannot drift apart.
    core = _engine_core(engine, window_seconds=0.0)
    started = time.perf_counter()
    reachable = 0
    for batch in split_batches(queries, args.batch_size):
        document = dispatch_sync(
            core, "distances_batch", {"queries": [_wire_query(q) for q in batch]})
        reachable += sum(1 for value in document["distances"]
                         if value is not None)
    elapsed = time.perf_counter() - started
    stats = core.stats()
    report = {
        "workload": {"shape": args.workload, "queries": len(queries),
                     "batch_size": args.batch_size,
                     "query_faults": query_faults, "seed": args.seed},
        "reachable_fraction": reachable / len(queries) if queries else 0.0,
        "wall_seconds": elapsed,
        "throughput_qps": len(queries) / elapsed if elapsed > 0 else 0.0,
        **stats,
    }
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    info = stats["snapshot"]
    print(f"snapshot: {info['algorithm']} k={info['stretch']} "
          f"f={info['max_faults']} ({info['fault_model']}) "
          f"n={info['nodes']} m={info['edges']}")
    if args.save_snapshot:
        print(f"wrote snapshot to {args.save_snapshot}")
    print(f"workload: {args.workload}, {len(queries)} queries "
          f"(batch size {args.batch_size}, up to {query_faults} faults/query)")
    cache = stats["cache"]
    print(f"served {stats['queries_served']} queries in {elapsed:.3f}s "
          f"-> {report['throughput_qps']:,.0f} queries/s")
    print(f"kernel calls: {stats['kernel_calls']} "
          f"({stats['kernel_calls_saved']} saved by batching+caching); "
          f"cache hit rate {cache['hit_rate']:.1%} "
          f"({cache['hits']} hits, {cache['evictions']} evictions)")
    print(f"reachable: {report['reachable_fraction']:.1%} of queries")
    return 0


def _daemon_core(args: argparse.Namespace, snapshot: SpannerSnapshot):
    """The protocol core the daemon serves: live when possible, else frozen.

    A snapshot carrying its original graph resumes incremental maintenance
    (:class:`~repro.dynamic.live.LiveEngine` behind the core's write path,
    ``/v1/update`` enabled); one without serves read-only through a plain
    :class:`QueryEngine` and answers 409 on updates.
    """
    from repro.serve.core import EngineCore

    window_seconds = max(0.0, args.window_ms) / 1000.0
    if snapshot.original is not None:
        from repro.dynamic.live import LiveEngine
        from repro.dynamic.maintain import DynamicSpanner

        spec = _maintainer_spec(args, snapshot)
        maintainer = DynamicSpanner.from_snapshot(snapshot, spec=spec)
        engine = LiveEngine(maintainer, cache_size=args.cache_size)
    else:
        engine = QueryEngine(snapshot, cache_size=args.cache_size,
                             kernel=args.kernel)
    return EngineCore(engine, window_seconds=window_seconds,
                      max_batch=args.max_batch)


def _cmd_daemon(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.daemon import ServingDaemon

    if not SpannerSnapshot.is_snapshot_file(args.input):
        # Graph-file input: no recorded spec to reconcile against, so the
        # sentinels resolve to the shared defaults before the build.
        _resolve_spec_sentinels(args)
    snapshot = _resolve_snapshot(args)
    core = _daemon_core(args, snapshot)
    daemon = ServingDaemon(core, host=args.host, port=args.port,
                           queue_limit=args.queue_limit,
                           drain_grace_seconds=args.drain_grace)

    async def _serve() -> None:
        await daemon.start()
        info = snapshot.describe()
        mode = ("live, /v1/update enabled" if core.writable
                else "frozen snapshot, read-only")
        # The "listening" line is the startup contract: smoke tests and
        # process supervisors parse it to learn the bound (ephemeral) port.
        print(f"daemon listening on http://{daemon.host}:{daemon.port}",
              flush=True)
        print(f"serving: {info['algorithm']} k={info['stretch']} "
              f"f={info['max_faults']} ({info['fault_model']}) "
              f"n={info['nodes']} m={info['edges']} [{mode}]; "
              f"coalescing window {args.window_ms:g}ms "
              f"(max batch {args.max_batch}), "
              f"queue limit {args.queue_limit}", flush=True)
        await daemon.run()

    asyncio.run(_serve())
    print("daemon drained cleanly")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    snapshot = _resolve_snapshot(args)
    engine = QueryEngine(snapshot, cache_size=0, kernel=args.kernel)
    core = _engine_core(engine, window_seconds=0.0)
    source = parse_node(args.source)
    target = parse_node(args.target)
    faults = _parse_fault_spec(args.faults_spec, snapshot.fault_model)
    # Both answers come through the daemon's verb dispatch, so the JSON
    # shapes here are exactly the /v1/distance and /v1/stretch_audit bodies.
    payload = {"source": source, "target": target,
               "faults": [list(f) if isinstance(f, tuple) else f
                          for f in faults]}
    document = dispatch_sync(core, "distance", payload)
    distance = from_wire_distance(document["distance"])
    audit = None
    if args.audit:
        try:
            audit = dispatch_sync(core, "stretch_audit", payload)["audit"]
        except RequestError as error:
            _LOGGER.error("%s", error)
            return 2
    if args.json:
        document["fault_model"] = snapshot.fault_model
        if audit is not None:
            document["audit"] = audit
        print(json.dumps(document, indent=2))
        if audit is not None:
            return 0 if audit["ok"] else 1
    else:
        shown = "unreachable" if math.isinf(distance) else f"{distance:.6g}"
        print(f"dist_{{H \\ F}}({source}, {target}) = {shown} "
              f"({len(faults)} {snapshot.fault_model} fault(s))")
        if audit is not None:
            original = from_wire_distance(audit["original_distance"])
            base = ("unreachable" if math.isinf(original)
                    else f"{original:.6g}")
            print(f"original: {base}; "
                  f"stretch {from_wire_distance(audit['stretch']):.4f} "
                  f"(required <= {audit['required_stretch']}"
                  f"{'' if audit['within_budget'] else ', fault set over budget'}) "
                  f"-> {'OK' if audit['ok'] else 'VIOLATED'}")
            return 0 if audit["ok"] else 1
    return 0


def _resolve_spec_sentinels(args: argparse.Namespace) -> None:
    """Fill the update verb's unset-sentinels with the shared defaults.

    Needed wherever the sentinel-parsing ``update`` verb hands its args to
    :func:`spec_from_args` (which expects the regular defaults).
    """
    for name, default in (("algorithm", "auto"), ("stretch", 3.0),
                          ("faults", 0), ("workers", 1), ("param", [])):
        if getattr(args, name) is None:
            setattr(args, name, default)


def _maintainer_spec(args: argparse.Namespace,
                     snapshot: SpannerSnapshot) -> BuildSpec:
    """The spec a maintenance verb runs under: recorded beats re-derived.

    A snapshot built through the registry knows its own spec — trusting it
    keeps ``update`` faithful to however the spanner was actually built;
    bare-graph snapshots fall back to the shared CLI translator.
    Construction options that *conflict* with the recorded contract are an
    error rather than silently dropped (changing ``k``/``f`` means a
    different spanner — rebuild from the graph file for that); the
    execution knobs (``--workers``/``--backend``) are not part of the
    contract and always win, so certification can shard.
    """
    recorded = snapshot.build_spec
    if recorded is None:
        _resolve_spec_sentinels(args)
        return spec_from_args(args)
    # The update verb parses these flags with None sentinels (see
    # build_parser), so an *explicitly passed* value — even one equal to the
    # usual default — is visible here and must match the recorded contract.
    # ``--algorithm auto`` defers to the snapshot by definition.
    requested = [
        ("--algorithm",
         None if args.algorithm == "auto" else args.algorithm,
         recorded.algorithm),
        ("--stretch", args.stretch, recorded.stretch),
        ("--faults", args.faults, recorded.max_faults),
        ("--fault-model", args.fault_model, recorded.fault_model),
        ("--oracle", args.oracle, recorded.oracle),
    ]
    conflicts = [f"{flag} {value}" for flag, value, kept in requested
                 if value is not None and value != kept]
    for pair in args.param or []:
        key, value = _parse_param(pair)
        if key not in recorded.params or recorded.params[key] != value:
            conflicts.append(f"--param {pair}")
    if conflicts:
        raise ValueError(
            f"snapshot records its build spec ({recorded.summary()}); "
            f"conflicting option(s) {', '.join(conflicts)} would change the "
            f"maintained contract — rebuild from the graph file instead")
    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.kernel is not None:
        overrides["kernel"] = args.kernel
    return recorded.replace(**overrides) if overrides else recorded


def _cmd_update(args: argparse.Namespace) -> int:
    from repro.dynamic import DynamicSpanner, UpdateJournal

    if not SpannerSnapshot.is_snapshot_file(args.input):
        # Graph-file input: there is no recorded spec to reconcile against,
        # so resolve the sentinels up front for the build in _resolve_snapshot
        # (the resulting snapshot then records exactly that spec).
        _resolve_spec_sentinels(args)
    snapshot = _resolve_snapshot(args)
    journal = UpdateJournal.load(args.journal)
    spec = _maintainer_spec(args, snapshot)
    maintainer = DynamicSpanner.from_snapshot(snapshot, spec=spec)
    edges_before = maintainer.spanner.number_of_edges()
    maintainer.apply_journal(journal)
    stats = maintainer.stats()
    record = None
    if args.certify:
        record = maintainer.certify(method=args.method, samples=args.samples,
                                    rng=args.seed)
    if args.save_snapshot:
        SpannerSnapshot(
            spanner=maintainer.spanner,
            stretch=spec.stretch,
            max_faults=spec.max_faults,
            fault_model=maintainer.model.name,
            algorithm=f"{spec.algorithm}[dynamic]",
            original=maintainer.graph,
            metadata={"build_spec": spec.to_json(),
                      "updates_applied": maintainer.updates_applied},
        ).save(args.save_snapshot)
    if args.output:
        save_graph_auto(maintainer.spanner, args.output)
    if args.json:
        report = {"command": "update", "input": args.input,
                  "journal": args.journal, "edges_before": edges_before,
                  **stats}
        if record is not None:
            report["certified"] = {
                "ok": record.ok,
                "exhaustive": record.report.exhaustive,
                "fault_sets_checked": record.report.fault_sets_checked,
                "worst_stretch": record.report.worst_stretch,
            }
        print(json.dumps(report, indent=2))
        return 0 if record is None or record.ok else 1
    counts = stats["update_counts"]
    print(f"journal: {len(journal)} updates "
          f"(+{counts['insert']} -{counts['delete']} ~{counts['reweight']})")
    print(f"graph: n={stats['graph_nodes']} m={stats['graph_edges']}; "
          f"spanner: {edges_before} -> {stats['spanner_edges']} edges")
    print(f"maintenance: {stats['incremental_accepts']} accepts, "
          f"{stats['repairs']} repairs re-adding {stats['repair_edges_added']} "
          f"edge(s), {stats['dirty_candidates_checked']} dirty candidates "
          f"checked ({stats['dirty_selectivity']:.1%} of pool) "
          f"in {stats['maintenance_seconds']:.3f}s")
    if args.save_snapshot:
        print(f"wrote snapshot to {args.save_snapshot}")
    if args.output:
        print(f"wrote spanner to {args.output}")
    if record is not None:
        report = record.report
        print(f"certified over {report.fault_sets_checked} fault sets "
              f"({'exhaustive' if report.exhaustive else 'sampled'}): "
              f"worst stretch {report.worst_stretch:.4f} "
              f"(required <= {spec.stretch})")
        print("VERDICT:", "OK" if record.ok else "VIOLATED")
        return 0 if record.ok else 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.build import build
    from repro.dynamic import DynamicSpanner, UpdateJournal, certify

    graph = load_graph_auto(args.input)
    journal = UpdateJournal.load(args.journal)
    final = journal.replay(graph)
    counts = journal.counts()
    document = {
        "command": "replay", "input": args.input, "journal": args.journal,
        "updates": len(journal), "update_counts": counts,
        "before": {"nodes": graph.number_of_nodes(),
                   "edges": graph.number_of_edges()},
        "after": {"nodes": final.number_of_nodes(),
                  "edges": final.number_of_edges()},
    }
    if not args.json:
        print(f"journal: {len(journal)} updates "
              f"(+{counts['insert']} -{counts['delete']} ~{counts['reweight']})")
        print(f"replayed: n={graph.number_of_nodes()} "
              f"m={graph.number_of_edges()} -> n={final.number_of_nodes()} "
              f"m={final.number_of_edges()}")
    if args.output:
        save_graph_auto(final, args.output)
        if not args.json:
            print(f"wrote final graph to {args.output}")
    ok = True
    if args.check:
        # The property anchor, from the command line: maintaining through
        # the journal and rebuilding at the final graph must both certify,
        # and the size gap is the documented online-vs-offline factor.
        spec = spec_from_args(args)
        maintained = DynamicSpanner(graph.copy(), spec)
        maintained.apply_journal(journal)
        maintained_record = maintained.certify(
            method=args.method, samples=args.samples, rng=args.seed)
        rebuilt = build(final, spec)
        rebuilt_report = certify(
            final, rebuilt.spanner, spec.stretch, spec.max_faults,
            maintained.model.name, method=args.method, samples=args.samples,
            rng=args.seed, workers=spec.workers, backend=spec.backend)
        ratio = (maintained.spanner.number_of_edges()
                 / max(1, rebuilt.spanner.number_of_edges()))
        ok = maintained_record.ok and rebuilt_report.ok
        document["check"] = {
            "spec": spec.to_json(),
            "maintained_edges": maintained.spanner.number_of_edges(),
            "rebuilt_edges": rebuilt.spanner.number_of_edges(),
            "size_ratio": ratio,
            "maintained_ok": maintained_record.ok,
            "rebuilt_ok": rebuilt_report.ok,
            "exhaustive": maintained_record.report.exhaustive,
        }
        if not args.json:
            print(f"check ({spec.summary()}): maintained "
                  f"{maintained.spanner.number_of_edges()} edges vs rebuilt "
                  f"{rebuilt.spanner.number_of_edges()} edges "
                  f"(ratio {ratio:.2f})")
            print(f"maintained: "
                  f"{'OK' if maintained_record.ok else 'VIOLATED'}; rebuilt: "
                  f"{'OK' if rebuilt_report.ok else 'VIOLATED'} "
                  f"({'exhaustive' if maintained_record.report.exhaustive else 'sampled'})")
    if args.json:
        print(json.dumps(document, indent=2))
    return 0 if ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    document = load_metrics_json(args.metrics)
    snapshot = document["metrics"]
    if args.format == "json":
        print(json.dumps(document, indent=2))
    elif args.format == "prometheus":
        print(render_prometheus(snapshot), end="")
    else:
        print(render_metrics_table(snapshot).to_ascii())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.paths import describe_kernel_backends

    print("algorithms:")
    for name in available_algorithms():
        entry = ALGORITHMS[name]
        print(f"  {name:16s} [{entry.capabilities.describe()}] "
              f"{entry.description}")
        if entry.capabilities.supported_oracles:
            print(f"  {'':16s} oracles: "
                  f"{', '.join(entry.capabilities.supported_oracles)}")
    print("\nkernels:")
    for row in describe_kernel_backends():
        status = "" if row["available"] else " (unavailable)"
        print(f"  {row['name']:16s} {row['description']}{status}")
    print("\nexperiments:")
    for ident, spec in sorted(EXPERIMENTS.items()):
        print(f"  {ident:4s} {spec.title} — {spec.claim}")
    print("\nworkloads:")
    for name, workload in sorted(WORKLOADS.items()):
        print(f"  {name:18s} {workload.description}")
    return 0


# --------------------------------------------------------------------------
# Argument parsing
# --------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-spanner",
        description="Fault tolerant spanners: constructions, verification, experiments.",
    )
    parser.add_argument("--verbose", action="store_true", help="debug logging")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_spec_options(command: argparse.ArgumentParser, *,
                         seed: bool = True) -> None:
        """Construction options shared by build/serve/query — one translator
        (:func:`spec_from_args`) turns them into a :class:`BuildSpec`, so
        defaults cannot drift between the subcommands."""
        command.add_argument("--algorithm", "-a", default="auto",
                             choices=["auto"] + available_algorithms(),
                             help="construction to run (auto: ft-greedy when "
                                  "--faults > 0, else greedy)")
        command.add_argument("--stretch", "-k", type=float, default=3.0)
        command.add_argument("--faults", "-f", type=int, default=0,
                             help="fault budget of the construction")
        command.add_argument("--fault-model", choices=["vertex", "edge"],
                             default=None,
                             help="default: the algorithm's native model")
        command.add_argument("--oracle", default=None,
                             choices=["branch-and-bound", "tiered",
                                      "exhaustive", "greedy-path-packing"])
        command.add_argument("--param", "-P", action="append", default=[],
                             metavar="KEY=VALUE",
                             help="algorithm-specific parameter (repeatable; "
                                  "values parsed as JSON, e.g. "
                                  "-P samples=40)")
        command.add_argument("--workers", type=int, default=1,
                             help="shard the construction's fault checks "
                                  "over this many worker processes "
                                  "(parallelizable algorithms only; spanner "
                                  "and witnesses are byte-identical)")
        command.add_argument("--backend", choices=["auto", "serial", "process"],
                             default=None, help="execution backend")
        command.add_argument("--kernel", default=None,
                             help="distance-kernel backend: 'loop', 'numpy', "
                                  "or 'auto' (default: auto — numpy on "
                                  "graphs of >= 100k nodes when available; "
                                  "answers are byte-identical either way)")
        if seed:
            command.add_argument("--seed", type=int, default=None,
                                 help="seed for randomized constructions")

    def add_obs_options(command: argparse.ArgumentParser) -> None:
        """Observability outputs shared by the run-something verbs; the
        flags beat the environment variables, which beat "off"."""
        command.add_argument("--trace", default=None, metavar="PATH",
                             help="write a JSONL span trace of this run here "
                                  f"(default: ${TRACE_ENV_VAR})")
        command.add_argument("--metrics-json", default=None, metavar="PATH",
                             help="write this run's metrics snapshot here as "
                                  f"JSON (default: ${METRICS_ENV_VAR}); "
                                  "render it with 'repro-spanner stats'")

    build = sub.add_parser("build", help="build a (fault tolerant) spanner of a graph file")
    build.add_argument("input", help="input graph (.json or edge list)")
    build.add_argument("--output", "-o", help="where to write the spanner")
    add_spec_options(build)
    build.add_argument("--save-snapshot",
                       help="also write a serving snapshot (records the "
                            "build spec for later rebuilds)")
    add_obs_options(build)
    build.set_defaults(func=_cmd_build)

    verify = sub.add_parser("verify", help="verify the (FT) spanner property")
    verify.add_argument("original", help="original graph file")
    verify.add_argument("subgraph", help="candidate spanner file")
    verify.add_argument("--stretch", "-k", type=float, default=3.0)
    verify.add_argument("--faults", "-f", type=int, default=0)
    verify.add_argument("--fault-model", choices=["vertex", "edge"], default="vertex")
    verify.add_argument("--method", choices=["auto", "exhaustive", "sampled"], default="auto")
    verify.add_argument("--samples", type=int, default=100)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--workers", type=int, default=1,
                        help="shard the verification sweep over this many "
                             "worker processes (results are bit-identical)")
    verify.add_argument("--backend", choices=["auto", "serial", "process"],
                        default="auto",
                        help="execution backend (auto: process pool when "
                             "--workers > 1)")
    verify.add_argument("--kernel", default=None,
                        help="distance-kernel backend ('loop', 'numpy', "
                             "'auto'); results are byte-identical")
    verify.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    add_obs_options(verify)
    verify.set_defaults(func=_cmd_verify)

    experiment = sub.add_parser("experiment", help="run a registered experiment (E1..E10)")
    experiment.add_argument("ident", help="experiment id (E1..E10) or 'all'")
    experiment.add_argument("--scale", choices=["quick", "full"], default="quick")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--workers", type=int, default=1,
                            help="shard verification-heavy experiments (E8/E9) "
                                 "over this many worker processes")
    experiment.add_argument("--markdown", action="store_true", help="emit markdown tables")
    experiment.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON instead of tables")
    experiment.add_argument("--csv-dir", help="also write each table as CSV into this directory")
    experiment.set_defaults(func=_cmd_experiment)

    lower = sub.add_parser("lower-bound", help="generate a BDPW lower-bound instance")
    lower.add_argument("--faults", "-f", type=int, required=True)
    lower.add_argument("--stretch", "-k", type=float, default=3.0)
    lower.add_argument("--base-nodes", type=int, default=14)
    lower.add_argument("--seed", type=int, default=0)
    lower.add_argument("--output", "-o", help="where to write the instance")
    lower.set_defaults(func=_cmd_lower_bound)

    generate = sub.add_parser("generate", help="generate a named workload graph")
    generate.add_argument("workload", choices=sorted(WORKLOADS))
    generate.add_argument("output", help="output file (.json or edge list)")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    serve = sub.add_parser(
        "serve",
        help="replay a synthetic query workload through the batched engine")
    serve.add_argument("input", help="snapshot JSON, or a graph file to build from")
    add_spec_options(serve, seed=False)  # serve's own --seed doubles as spec seed
    serve.add_argument("--save-snapshot", help="write the (built) snapshot here")
    serve.add_argument("--workload", choices=["uniform", "zipf", "churn"],
                       default="zipf")
    serve.add_argument("--queries", "-n", type=int, default=2000)
    serve.add_argument("--batch-size", type=int, default=64)
    serve.add_argument("--query-faults", type=int, default=None,
                       help="max faults per query (default: the snapshot's f)")
    serve.add_argument("--zipf-skew", type=float, default=1.1)
    serve.add_argument("--fault-pool", type=int, default=8,
                       help="number of concurrent fault sets in the zipf workload")
    serve.add_argument("--sessions", type=int, default=20,
                       help="number of sessions for the churn workload")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="LRU capacity in (source, faults) vectors; 0 disables")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--json", action="store_true",
                       help="emit the serving report as JSON")
    add_obs_options(serve)
    serve.set_defaults(func=_cmd_serve)

    daemon = sub.add_parser(
        "daemon",
        help="run the persistent serving daemon (HTTP + WebSocket API over "
             "the snapshot, with cross-client batch coalescing)")
    daemon.add_argument("input",
                        help="snapshot JSON, or a graph file to build from")
    add_spec_options(daemon)
    # Same unset-sentinels as the update verb: a snapshot's recorded build
    # spec wins, and explicitly conflicting construction flags are an error
    # (see _maintainer_spec).
    daemon.set_defaults(algorithm=None, stretch=None, faults=None,
                        oracle=None, workers=None, backend=None, param=None)
    daemon.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback only)")
    daemon.add_argument("--port", type=int, default=8350,
                        help="TCP port; 0 picks an ephemeral port (printed "
                             "on the 'listening' line)")
    daemon.add_argument("--window-ms", type=float, default=2.0,
                        help="cross-client coalescing window in milliseconds; "
                             "0 disables coalescing (answers are identical "
                             "either way)")
    daemon.add_argument("--max-batch", type=int, default=512,
                        help="flush the window early once this many queries "
                             "are pending")
    daemon.add_argument("--queue-limit", type=int, default=256,
                        help="max in-flight requests before new ones are "
                             "answered 429")
    daemon.add_argument("--drain-grace", type=float, default=10.0,
                        help="seconds SIGTERM waits for in-flight work "
                             "before force-closing connections")
    daemon.add_argument("--cache-size", type=int, default=256,
                        help="LRU capacity in (source, faults) vectors; "
                             "0 disables")
    add_obs_options(daemon)
    daemon.set_defaults(func=_cmd_daemon)

    query = sub.add_parser(
        "query", help="answer one fault-tolerant distance query")
    query.add_argument("input", help="snapshot JSON, or a graph file to build from")
    add_spec_options(query)
    query.add_argument("--source", "-s", required=True)
    query.add_argument("--target", "-t", required=True)
    query.add_argument("--faults-spec", "-F", default="", metavar="FAULTS",
                       help="comma-separated failed nodes, or u:v pairs for "
                            "edge faults (e.g. '3,17' or '3:5,2:9')")
    query.add_argument("--audit", action="store_true",
                       help="also compare against the original graph "
                            "(snapshot must carry it)")
    query.add_argument("--json", action="store_true")
    add_obs_options(query)
    query.set_defaults(func=_cmd_query)

    update = sub.add_parser(
        "update",
        help="apply an update journal through the incremental maintainer")
    update.add_argument("input", help="snapshot JSON, or a graph file to build from")
    add_spec_options(update)
    # Unset-sentinels (parser-level defaults override the argument-level
    # ones): the update verb must tell "flag not given" apart from "flag
    # given at its usual default" to reconcile explicit options against a
    # snapshot's recorded build spec — see _maintainer_spec.
    update.set_defaults(algorithm=None, stretch=None, faults=None,
                        oracle=None, workers=None, backend=None, param=None)
    update.add_argument("--journal", "-j", required=True,
                        help="update journal JSON (see repro.dynamic.updates)")
    update.add_argument("--save-snapshot",
                        help="write the maintained snapshot here")
    update.add_argument("--output", "-o",
                        help="also write the maintained spanner graph here")
    update.add_argument("--certify", action="store_true",
                        help="run is_ft_spanner over the maintained spanner "
                             "(exit code reflects the verdict)")
    update.add_argument("--method", choices=["auto", "exhaustive", "sampled"],
                        default="auto")
    update.add_argument("--samples", type=int, default=100,
                        help="fault sets per sampled certification")
    update.add_argument("--json", action="store_true",
                        help="emit the maintenance report as JSON")
    add_obs_options(update)
    update.set_defaults(func=_cmd_update)

    replay = sub.add_parser(
        "replay",
        help="deterministically replay an update journal onto a graph file")
    replay.add_argument("input", help="base graph (.json or edge list)")
    add_spec_options(replay)
    replay.add_argument("--journal", "-j", required=True,
                        help="update journal JSON (see repro.dynamic.updates)")
    replay.add_argument("--output", "-o", help="where to write the final graph")
    replay.add_argument("--check", action="store_true",
                        help="also maintain a spanner through the journal and "
                             "certify it against a from-scratch rebuild at "
                             "the final graph")
    replay.add_argument("--method", choices=["auto", "exhaustive", "sampled"],
                        default="auto")
    replay.add_argument("--samples", type=int, default=100,
                        help="fault sets per sampled certification")
    replay.add_argument("--json", action="store_true",
                        help="emit the replay report as JSON")
    replay.set_defaults(func=_cmd_replay)

    stats = sub.add_parser(
        "stats",
        help="render a metrics snapshot saved by --metrics-json")
    stats.add_argument("metrics",
                       help="metrics JSON written by --metrics-json or "
                            f"${METRICS_ENV_VAR}")
    stats.add_argument("--format", choices=["table", "prometheus", "json"],
                       default="table",
                       help="rendering (default: human-readable table)")
    stats.set_defaults(func=_cmd_stats)

    lister = sub.add_parser(
        "list", help="list algorithms, experiments, and workloads")
    lister.set_defaults(func=_cmd_list)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_cli_logging(verbose=args.verbose)
    # Only verbs that declare the observability flags honour the env vars:
    # `stats` and `list` never trace themselves.
    trace_path = (args.trace or os.environ.get(TRACE_ENV_VAR)
                  if hasattr(args, "trace") else None)
    metrics_path = (args.metrics_json or os.environ.get(METRICS_ENV_VAR)
                    if hasattr(args, "metrics_json") else None)
    tracer = get_tracer()
    try:
        if trace_path:
            tracer.configure(trace_path)
        code = args.func(args)
        if metrics_path:
            write_metrics_json(metrics_path, get_registry(),
                               meta={"command": args.command,
                                     "exit_code": code})
        return code
    except (ValueError, OSError) as error:
        _LOGGER.error("%s", error)
        return 2
    finally:
        tracer.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
