"""Dynamic updates: incremental spanner maintenance under live edge churn.

Real networks mutate while queries are in flight — links appear, fail, and
get re-weighted.  This package maintains a valid ``f``-fault-tolerant
``k``-spanner across such a stream without rebuilding from scratch:

* :mod:`repro.dynamic.updates` — the typed ops (:class:`EdgeInsert` /
  :class:`EdgeDelete` / :class:`WeightChange`) and the append-only,
  JSON-round-trippable :class:`UpdateJournal` whose replay deterministically
  reproduces the maintained state;
* :mod:`repro.dynamic.maintain` — :class:`DynamicSpanner`: insertions run
  the paper's greedy acceptance test on just the new edge; deletions and
  weight increases open a provably sufficient *dirty region* that is
  repaired by re-running the acceptance sweep over candidate replacement
  edges only (sharded through :mod:`repro.runtime` when workers are
  configured, byte-identical to the serial sweep);
* :mod:`repro.dynamic.repair` — the dirty-region filter (two SSSP runs
  bound which rejected edges can flip), keyed on :attr:`Graph.version`
  deltas, plus the :func:`~repro.dynamic.repair.certify` ground-truth hook
  (= :func:`~repro.spanners.verify.is_ft_spanner`);
* :mod:`repro.dynamic.live` — :class:`LiveEngine`: the batched
  :class:`~repro.engine.engine.QueryEngine` over the live spanner, with
  updates atomically invalidating exactly the cached answers they obsolete.

The maintained spanner carries the same ``k``/``f`` guarantee as a fresh
build after every update (property-tested in ``tests/test_dynamic.py``
against both fault models); its size may exceed the from-scratch greedy's
by the online-vs-offline gap measured in ``benchmarks/bench_dynamic.py``.
"""

from repro.dynamic.updates import (
    JOURNAL_FORMAT,
    ChurnState,
    EdgeDelete,
    EdgeInsert,
    UpdateError,
    UpdateJournal,
    UpdateOp,
    WeightChange,
    random_journal,
    update_from_json,
    update_to_json,
)
from repro.dynamic.repair import (
    CertificationRecord,
    DirtyRegion,
    all_rejected_candidates,
    certify,
    dirty_candidates,
)
from repro.dynamic.maintain import DynamicSpanner, UpdateOutcome
from repro.dynamic.live import LiveEngine

__all__ = [
    "JOURNAL_FORMAT",
    "ChurnState",
    "EdgeDelete",
    "EdgeInsert",
    "UpdateError",
    "UpdateJournal",
    "UpdateOp",
    "WeightChange",
    "random_journal",
    "update_from_json",
    "update_to_json",
    "CertificationRecord",
    "DirtyRegion",
    "all_rejected_candidates",
    "certify",
    "dirty_candidates",
    "DynamicSpanner",
    "UpdateOutcome",
    "LiveEngine",
]
