"""Dynamic updates: incremental spanner maintenance under live edge churn.

Real networks mutate while queries are in flight — links appear, fail, and
get re-weighted.  This package maintains a valid ``f``-fault-tolerant
``k``-spanner across such a stream without rebuilding from scratch:

* :mod:`repro.dynamic.updates` — the typed ops (:class:`EdgeInsert` /
  :class:`EdgeDelete` / :class:`WeightChange`) and the append-only,
  JSON-round-trippable :class:`UpdateJournal` whose replay deterministically
  reproduces the maintained state;
* :mod:`repro.dynamic.maintain` — :class:`DynamicSpanner`: insertions run
  the paper's greedy acceptance test on just the new edge; deletions and
  weight increases open a provably sufficient *dirty region* that is
  repaired by re-running the acceptance sweep over candidate replacement
  edges only (sharded through :mod:`repro.runtime` when workers are
  configured, byte-identical to the serial sweep);
* :mod:`repro.dynamic.repair` — the dirty-region filter (two SSSP runs
  bound which rejected edges can flip), keyed on :attr:`Graph.version`
  deltas, plus the :func:`~repro.dynamic.repair.certify` ground-truth hook
  (= :func:`~repro.spanners.verify.is_ft_spanner`);
* :mod:`repro.dynamic.live` — :class:`LiveEngine`: the batched
  :class:`~repro.engine.engine.QueryEngine` over the live spanner, with
  updates atomically invalidating exactly the cached answers they obsolete.

The maintained spanner carries the same ``k``/``f`` guarantee as a fresh
build after every update (property-tested in ``tests/test_dynamic.py``
against both fault models); its size may exceed the from-scratch greedy's
by the online-vs-offline gap measured in ``benchmarks/bench_dynamic.py``.
"""

from repro.dynamic.updates import (
    JOURNAL_FORMAT,
    ChurnState,
    EdgeDelete,
    EdgeInsert,
    UpdateError,
    UpdateJournal,
    UpdateOp,
    WeightChange,
    random_journal,
    update_from_json,
    update_to_json,
)
__all__ = [
    "JOURNAL_FORMAT",
    "ChurnState",
    "EdgeDelete",
    "EdgeInsert",
    "UpdateError",
    "UpdateJournal",
    "UpdateOp",
    "WeightChange",
    "random_journal",
    "update_from_json",
    "update_to_json",
    "CertificationRecord",
    "DirtyRegion",
    "all_rejected_candidates",
    "certify",
    "dirty_candidates",
    "DynamicSpanner",
    "UpdateOutcome",
    "LiveEngine",
]


# The journal layer (repro.dynamic.updates) stays eager — it is pure graph
# core and what the serving transport parses ops with.  The maintainer and
# the live engine resolve lazily: they pull in the kernel registry / query
# engine (and numpy), which journal-only consumers never need.
_LAZY = {
    "CertificationRecord": "repro.dynamic.repair",
    "DirtyRegion": "repro.dynamic.repair",
    "all_rejected_candidates": "repro.dynamic.repair",
    "certify": "repro.dynamic.repair",
    "dirty_candidates": "repro.dynamic.repair",
    "DynamicSpanner": "repro.dynamic.maintain",
    "UpdateOutcome": "repro.dynamic.maintain",
    "LiveEngine": "repro.dynamic.live",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
