"""Serving queries against a spanner that is being maintained live.

:class:`LiveEngine` is the meeting point of the two halves of the system:
the batched query engine (:mod:`repro.engine`), which assumes an immutable
snapshot, and the dynamic maintainer (:mod:`repro.dynamic.maintain`), which
mutates the spanner in place.  The bridge is the version machinery the lower
layers already speak:

* the engine's :class:`~repro.engine.snapshot.SpannerSnapshot` wraps the
  maintainer's **live** graphs (spanner ``H`` + original ``G``), so an
  applied update is visible to the very next query — no copy, no reload;
* the engine's result cache keys on :attr:`Graph.version` of ``H`` and
  flushes itself the moment the version moves, so a mutated spanner can
  never serve a stale distance; between updates the version is still, so
  query batches keep batching and caching exactly as against a frozen
  snapshot;
* updates that leave ``H`` untouched (deleting a rejected edge, a
  weight-increase outside ``H``) do not move ``H``'s version, so they are
  *free* for the serving path — the cache survives them by construction.

:meth:`LiveEngine.apply` is the only mutation entry point: it runs the
maintainer, then synchronously re-syncs the cache (so invalidation is
attributed to the update, not smeared into the next query) and counts what
happened.  :meth:`stats` merges the serving report with the maintenance
report and the invalidation ledger.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.dynamic.maintain import DynamicSpanner, UpdateOutcome
from repro.dynamic.repair import CertificationRecord
from repro.dynamic.updates import UpdateOp
from repro.engine.engine import QueryEngine
from repro.engine.snapshot import SpannerSnapshot


class LiveEngine:
    """A query engine over a dynamically maintained spanner.

    Parameters
    ----------
    dynamic:
        The maintainer owning the live graph and spanner.
    cache_size / admit_threshold:
        Forwarded to the underlying :class:`~repro.engine.engine.QueryEngine`.

    Examples
    --------
    >>> from repro.graph import generators
    >>> from repro.build import BuildSpec, BuildSession
    >>> from repro.dynamic import LiveEngine
    >>> graph = generators.gnm(24, 60, rng=0, connected=True)
    >>> session = BuildSession(graph, BuildSpec("ft-greedy", stretch=3, max_faults=1))
    >>> live = LiveEngine(session.dynamic())
    >>> _ = live.distance(0, 5)
    """

    def __init__(self, dynamic: DynamicSpanner, *, cache_size: int = 256,
                 admit_threshold: int = 2):
        self.dynamic = dynamic
        spec = dynamic.spec
        # The snapshot wraps the *live* graphs: updates flow through without
        # copying, and Graph.version carries the invalidation signal.
        self.snapshot = SpannerSnapshot(
            spanner=dynamic.spanner,
            stretch=spec.stretch,
            max_faults=spec.max_faults,
            fault_model=dynamic.model.name,
            algorithm=f"{spec.algorithm}[dynamic]",
            original=dynamic.graph,
            metadata={"build_spec": spec.to_json(), "live": True},
        )
        self.engine = QueryEngine(self.snapshot, cache_size=cache_size,
                                  admit_threshold=admit_threshold,
                                  backend=spec.backend, workers=spec.workers)
        self.updates_applied = 0
        self.updates_spanner_changed = 0
        self.cache_invalidations = 0

    # ----------------------------------------------------------------- updates
    def apply(self, update: UpdateOp) -> UpdateOutcome:
        """Apply one update; the refreshed spanner serves the next query.

        The maintainer mutates ``H`` in place, bumping its version; syncing
        the cache here makes the swap atomic from the serving side — either
        a query sees the old spanner with the old cache, or the new spanner
        with a clean one, never a mix.
        """
        before = self.engine.cache.invalidations
        outcome = self.dynamic.apply(update)
        self.engine.cache.sync(self.dynamic.spanner.version)
        self.cache_invalidations += self.engine.cache.invalidations - before
        self.updates_applied += 1
        if outcome.spanner_changed:
            self.updates_spanner_changed += 1
        return outcome

    def apply_journal(self, journal: Iterable[UpdateOp]) -> List[UpdateOutcome]:
        """Apply every op of a journal in order; returns the outcomes."""
        return [self.apply(update) for update in journal]

    # ----------------------------------------------------------------- queries
    def distance(self, source, target, faults: Iterable = ()) -> float:
        """``dist_{H \\ F}(source, target)`` against the current spanner."""
        return self.engine.distance(source, target, faults)

    def distances_batch(self, queries: Sequence) -> List[float]:
        """Answer a batch of ``(source, target, faults)`` queries."""
        return self.engine.distances_batch(queries)

    def connectivity(self, source, target, faults: Iterable = ()) -> bool:
        """Whether ``target`` is reachable from ``source`` in ``H \\ F``."""
        return self.engine.connectivity(source, target, faults)

    def stretch_audit(self, source, target, faults: Iterable = ()):
        """Audit one served distance against the live original graph."""
        return self.engine.stretch_audit(source, target, faults)

    def certify(self, *, method: str = "auto", samples: int = 200,
                rng=None) -> CertificationRecord:
        """Ground-truth certification of the spanner being served."""
        return self.dynamic.certify(method=method, samples=samples, rng=rng)

    # ----------------------------------------------------------------- reports
    def stats(self) -> Dict[str, Any]:
        """Serving + maintenance report with the invalidation ledger.

        ``update_cache_invalidations`` counts flushes attributed to applied
        updates (synced inside :meth:`apply`); the engine's own cache stats
        keep the raw totals.
        """
        return {
            **self.engine.stats(),
            "maintenance": self.dynamic.stats(),
            "updates_applied": self.updates_applied,
            "updates_spanner_changed": self.updates_spanner_changed,
            "update_cache_invalidations": self.cache_invalidations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LiveEngine updates={self.updates_applied} "
                f"served={self.engine.queries_served} "
                f"invalidations={self.cache_invalidations}>")
