"""Incremental maintenance of a fault-tolerant greedy spanner under churn.

:class:`DynamicSpanner` keeps the paper's invariant alive across a stream of
edge updates without rebuilding from scratch.  The invariant is the one the
FT-greedy construction establishes and its correctness proof consumes:

    for every edge ``(u, v, w)`` of ``G`` **outside** ``H`` and every fault
    set ``|F| <= f``:   ``dist_{H \\ F}(u, v) <= k * w``.

(Edges inside ``H`` need no condition — they survive in ``H \\ F`` whenever
they survive in ``G \\ F``.)  Standard path-decomposition then gives
``dist_{H\\F}(s, t) <= k * dist_{G\\F}(s, t)`` for *all* pairs, i.e. ``H`` is
a valid ``f``-fault-tolerant ``k``-spanner.  Each update kind preserves the
invariant with bounded work:

* **insert** — adds exactly one new condition (the new edge's own), so one
  oracle acceptance test decides membership; every existing condition is
  untouched (``H`` only gains edges, distances only shrink).
* **delete / weight-increase of a spanner edge** — conditions of rejected
  edges whose witness paths routed through the touched edge may break.
  :func:`repro.dynamic.repair.dirty_candidates` bounds that set soundly with
  two SSSP runs; the dirty candidates are re-swept in greedy order
  (increasing weight), re-admitting exactly the ones the oracle now breaks.
  With ``spec.workers > 1`` the sweep's fault checks shard through
  :mod:`repro.runtime` as one speculative batch against the frozen ``H`` —
  monotone-safe rejects, version-guarded accepts — so the repaired spanner
  and its witnesses are **byte-identical** to the serial sweep (the same
  argument, and the same worker entry point, as the parallel FT-greedy
  build).
* **delete / weight-increase of a rejected edge, weight-decrease of a
  spanner edge** — provably free: the touched condition disappears or
  every surviving condition only slackens.
* **weight-decrease of a rejected edge** — its own budget tightened; one
  acceptance test at the new weight decides re-admission.

The maintained spanner carries the same ``k``/``f`` guarantee as a fresh
build at every step, but its *size* may exceed the from-scratch greedy's:
updates arrive in time order, not weight order, so early acceptances cannot
be revisited when later, lighter edges land (the classic online-vs-offline
greedy gap).  ``benchmarks/bench_dynamic.py`` measures that factor alongside
the latency win; the acceptance tests bound it.

Everything applied through :meth:`DynamicSpanner.apply` is also appended to
an internal :class:`~repro.dynamic.updates.UpdateJournal`, so any maintained
state can be reproduced by replaying the journal against the base graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.build.registry import validate_spec
from repro.build.spec import BuildError, BuildSpec
from repro.dynamic.repair import (
    Candidate,
    CertificationRecord,
    DirtyRegion,
    certify,
    dirty_candidates,
)
from repro.dynamic.updates import (
    EdgeDelete,
    EdgeInsert,
    UpdateError,
    UpdateJournal,
    UpdateOp,
    WeightChange,
)
from repro.faults.models import FaultSet, get_fault_model
from repro.graph.core import Graph, edge_key
from repro.graph.csr import csr_snapshot
from repro.obs.metrics import SIZE_BUCKETS, component_registry, get_registry
from repro.obs.trace import get_tracer
from repro.paths.registry import get_kernels
from repro.runtime.backend import ExecutionBackend, get_backend
from repro.runtime.merge import merge_counters
from repro.runtime.shard import split_sequence
from repro.spanners.base import SpannerResult
from repro.spanners.fault_check import get_oracle
from repro.spanners.ft_greedy import _ft_check_chunk, _FTCheckContext
from repro.utils.logging import get_logger

_LOGGER = get_logger("dynamic.maintain")

#: Sweeps smaller than this stay serial even when workers are configured —
#: a process-pool dispatch costs more than a handful of oracle calls.
_PARALLEL_SWEEP_MIN = 8


@dataclass(frozen=True)
class UpdateOutcome:
    """What one applied update did to the maintained spanner.

    ``accepted`` is the acceptance-test verdict for ops that ran one (new or
    re-weighted candidate edges); ``None`` for ops that needed no test.
    ``region`` is the dirty region a destructive op opened (``None`` for the
    provably free cases), and ``repair_added`` lists the candidates the
    repair sweep re-admitted into ``H``.
    """

    update: UpdateOp
    accepted: Optional[bool] = None
    region: Optional[DirtyRegion] = None
    repair_added: Tuple[Candidate, ...] = ()
    spanner_changed: bool = False
    graph_version: int = 0
    spanner_version: int = 0
    maintenance_seconds: float = 0.0


class DynamicSpanner:
    """A live graph plus an incrementally maintained FT-greedy spanner.

    Parameters
    ----------
    graph:
        The live graph ``G`` — owned by the maintainer from here on; apply
        every further mutation through :meth:`apply`.
    spec:
        The construction contract to maintain.  Must name an algorithm of
        the FT-greedy family (``ft-greedy`` / ``vft-greedy`` /
        ``eft-greedy``): the maintained invariant is exactly the one that
        family establishes, and an exact oracle is required for the same
        reason the parallel builder requires one — a heuristic ``None`` is
        not evidence the invariant holds.
    result:
        Optionally adopt an already-built :class:`SpannerResult` for this
        exact ``(graph, spec)`` pair instead of building from scratch.

    Examples
    --------
    >>> from repro.graph import generators
    >>> from repro.build import BuildSpec
    >>> from repro.dynamic import DynamicSpanner, EdgeInsert
    >>> graph = generators.gnm(24, 60, rng=0, connected=True)
    >>> dyn = DynamicSpanner(graph, BuildSpec("ft-greedy", stretch=3, max_faults=1))
    >>> outcome = dyn.apply(EdgeInsert(0, 9, 0.8)) if not graph.has_edge(0, 9) else None
    >>> dyn.certify(method="sampled", samples=20, rng=0).ok
    True
    """

    def __init__(self, graph: Graph, spec: BuildSpec, *,
                 result: Optional[SpannerResult] = None):
        entry = validate_spec(spec)
        caps = entry.capabilities
        if not (caps.fault_tolerant and caps.produces_witnesses
                and caps.accepts_oracle):
            raise BuildError(
                f"DynamicSpanner maintains the FT-greedy invariant; algorithm "
                f"{spec.algorithm!r} does not establish it (need an "
                f"ft-greedy-family spec, got capabilities "
                f"[{caps.describe()}])")
        self.spec = spec
        self.graph = graph
        # validate_spec already enforced model/algorithm compatibility (the
        # pinned vft/eft variants reject mismatched spec models outright).
        self.model = get_fault_model(spec.fault_model)
        self.oracle = get_oracle(spec.oracle, spec.kernel)
        if not self.oracle.exact:
            raise BuildError(
                "incremental maintenance requires an exact oracle: the "
                f"heuristic {self.oracle.name!r} oracle's misses are not "
                "evidence the maintained invariant holds")
        self.stretch = spec.stretch
        self.max_faults = spec.max_faults
        if result is None:
            from repro.build import build
            result = build(graph, spec)
        elif result.spanner is None or not result.spanner.is_subgraph_of(graph):
            raise BuildError("adopted result's spanner is not a subgraph of "
                             "the maintained graph")
        self.spanner: Graph = result.spanner
        self.witnesses: Dict[Tuple, FaultSet] = dict(result.witness_fault_sets)
        # Compile H's CSR up front (kept in sync across accepts, recompiled
        # after removals) so acceptance tests never pay a cold compile.
        csr_snapshot(self.spanner)
        #: Every update applied through :meth:`apply`, in order — replaying
        #: this journal against the base graph reproduces the final graph.
        self.journal = UpdateJournal(name="applied-updates")
        #: Dirty regions opened by destructive updates, in order.
        self.repair_log: List[DirtyRegion] = []
        #: Certification outcomes, in order.
        self.certifications: List[CertificationRecord] = []
        # Maintenance counters live on the maintainer's own registry
        # (``dynamic.*`` family, attached to the process default); the
        # historical attribute names stay readable as properties below.
        self.metrics = component_registry("dynamic")
        self._updates_applied = self.metrics.counter(
            "dynamic.updates_applied", "updates applied through apply()")
        self._incremental_accepts = self.metrics.counter(
            "dynamic.incremental_accepts", "acceptance tests that kept an edge")
        self._incremental_rejects = self.metrics.counter(
            "dynamic.incremental_rejects",
            "acceptance tests that dropped an edge")
        self._repairs = self.metrics.counter(
            "dynamic.repairs", "dirty-region repair sweeps run")
        self._repair_edges_added = self.metrics.counter(
            "dynamic.repair_edges_added", "edges re-admitted by repairs")
        self._dirty_candidates_checked = self.metrics.counter(
            "dynamic.dirty_candidates_checked",
            "dirty candidates re-swept by repairs")
        self._dirty_pool_seen = self.metrics.counter(
            "dynamic.dirty_pool_seen",
            "rejected-edge pool size across repairs (selectivity denominator)")
        self._maintenance_seconds = self.metrics.counter(
            "dynamic.maintenance_seconds", "wall time spent inside apply()")
        self._update_seconds = self.metrics.histogram(
            "dynamic.update_seconds", "per-update maintenance latency")
        self._repair_seconds = self.metrics.histogram(
            "dynamic.repair_seconds", "per-repair sweep latency")
        self._dirty_region_size = self.metrics.histogram(
            "dynamic.dirty_region_size", "dirty candidates per repair",
            buckets=SIZE_BUCKETS)
        self._certify_seconds = self.metrics.histogram(
            "dynamic.certify_seconds", "per-certification wall time")
        self._base_oracle_queries = self.oracle.stats.queries
        # Oracle work done inside worker processes (their per-process stats
        # never reach self.oracle.stats) — folded into stats() so parallel
        # runs report actual speculative work, like the parallel builder.
        self._worker_counters: Dict[str, float] = {}

    # ----------------------------------------------------- counter thin views
    @property
    def updates_applied(self) -> int:
        return self._updates_applied.value

    @property
    def incremental_accepts(self) -> int:
        return self._incremental_accepts.value

    @property
    def incremental_rejects(self) -> int:
        return self._incremental_rejects.value

    @property
    def repairs(self) -> int:
        return self._repairs.value

    @property
    def repair_edges_added(self) -> int:
        return self._repair_edges_added.value

    @property
    def dirty_candidates_checked(self) -> int:
        return self._dirty_candidates_checked.value

    @property
    def dirty_pool_seen(self) -> int:
        return self._dirty_pool_seen.value

    @property
    def maintenance_seconds(self) -> float:
        return self._maintenance_seconds.value

    # ------------------------------------------------------------ construction
    @classmethod
    def from_snapshot(cls, snapshot, spec: Optional[BuildSpec] = None) -> "DynamicSpanner":
        """Resume maintenance from a serving snapshot.

        The snapshot must carry the original graph (that *is* the live
        graph) and either record its build spec or be handed one.  Witness
        fault sets are not serialised in snapshots, so a resumed maintainer
        re-derives witnesses only for edges it adds from now on.
        """
        if snapshot.original is None:
            raise BuildError(
                "snapshot kept no original graph; incremental maintenance "
                "needs the live graph, not just the spanner")
        spec = spec if spec is not None else snapshot.build_spec
        if spec is None:
            raise BuildError(
                "snapshot records no build spec; pass the spec to maintain")
        result = SpannerResult(
            spanner=snapshot.spanner, original=snapshot.original,
            stretch=spec.stretch, max_faults=spec.max_faults,
            fault_model=get_fault_model(spec.fault_model).name,
            algorithm=snapshot.algorithm or spec.algorithm)
        return cls(snapshot.original, spec, result=result)

    # -------------------------------------------------------------- the oracle
    def _accept(self, u, v, weight: float) -> Optional[FaultSet]:
        """The paper's acceptance test for one candidate edge against live H."""
        return self.oracle.find_breaking_fault_set(
            self.spanner, u, v, self.stretch * weight, self.max_faults,
            self.model)

    # ----------------------------------------------------------------- updates
    def apply(self, update: UpdateOp) -> UpdateOutcome:
        """Apply one update to ``G`` and repair ``H``; returns what happened.

        Raises :class:`~repro.dynamic.updates.UpdateError` (and changes
        nothing) when the op does not fit the live graph.
        """
        started = time.perf_counter()
        with get_tracer().span("dynamic.apply",
                               op=type(update).__name__) as span:
            if isinstance(update, EdgeInsert):
                outcome = self._apply_insert(update)
            elif isinstance(update, EdgeDelete):
                outcome = self._apply_delete(update)
            elif isinstance(update, WeightChange):
                outcome = self._apply_reweight(update)
            else:
                raise UpdateError(f"not an update op: {update!r}")
            elapsed = time.perf_counter() - started
            span.set(spanner_changed=outcome[3])
        self._maintenance_seconds.inc(elapsed)
        self._update_seconds.observe(elapsed)
        self._updates_applied.inc()
        self.journal.append(update)
        return UpdateOutcome(
            update=update,
            accepted=outcome[0],
            region=outcome[1],
            repair_added=outcome[2],
            spanner_changed=outcome[3],
            graph_version=self.graph.version,
            spanner_version=self.spanner.version,
            maintenance_seconds=elapsed,
        )

    def apply_journal(self, journal: Iterable[UpdateOp]) -> List[UpdateOutcome]:
        """Apply every op of a journal in order; returns the outcomes."""
        return [self.apply(update) for update in journal]

    def _apply_insert(self, update: EdgeInsert):
        update.apply(self.graph)
        # The spanner spans every node of G; new endpoints enter H edgeless.
        self.spanner.add_node(update.u)
        self.spanner.add_node(update.v)
        fault_set = self._accept(update.u, update.v, update.weight)
        if fault_set is not None:
            self.spanner.add_edge(update.u, update.v, update.weight)
            self.witnesses[update.edge] = fault_set
            self._incremental_accepts.inc()
            return True, None, (), True
        self._incremental_rejects.inc()
        return False, None, (), False

    def _apply_delete(self, update: EdgeDelete):
        in_spanner = self.spanner.has_edge(update.u, update.v)
        region = None
        if in_spanner:
            # Filter against the *old* H (still holding the edge): the dirty
            # argument reasons about the witness paths that existed before.
            candidates, pool = dirty_candidates(
                self.graph, self.spanner, update.edge, self.stretch,
                kernel=self.spec.kernel)
            version_before = self.graph.version
        update.apply(self.graph)
        if not in_spanner:
            # Deleting a rejected edge removes its own condition and touches
            # no other: H is unchanged and G-side budgets are per-edge.
            return None, None, (), False
        self.spanner.remove_edge(update.u, update.v)
        self.witnesses.pop(update.edge, None)
        region = DirtyRegion(
            trigger=update.edge, reason="delete", candidates=candidates,
            candidate_pool=pool, version_before=version_before,
            version_after=self.graph.version)
        added = self._repair(region)
        return None, region, added, True

    def _apply_reweight(self, update: WeightChange):
        if not self.graph.has_edge(update.u, update.v):
            # Match update.apply()'s own validation so apply() keeps its
            # "raises UpdateError, changes nothing" contract on this path too.
            raise UpdateError(
                f"reweight of missing edge {update.edge!r}; use EdgeInsert")
        old_weight = self.graph.weight(update.u, update.v)
        new_weight = float(update.weight)
        in_spanner = self.spanner.has_edge(update.u, update.v)
        if in_spanner and new_weight > old_weight:
            candidates, pool = dirty_candidates(
                self.graph, self.spanner, update.edge, self.stretch,
                edge_weight=old_weight, kernel=self.spec.kernel)
            version_before = self.graph.version
        update.apply(self.graph)
        if in_spanner:
            # H mirrors G's weights (H is a subgraph *with matching
            # weights*); an overwrite keeps the edge in both.
            self.spanner.add_edge(update.u, update.v, new_weight)
            if new_weight <= old_weight:
                # Distances in H only shrink: every rejected-edge condition
                # stays satisfied. Provably free.
                return None, None, (), True
            region = DirtyRegion(
                trigger=update.edge, reason="reweight", candidates=candidates,
                candidate_pool=pool, version_before=version_before,
                version_after=self.graph.version)
            added = self._repair(region)
            return None, region, added, True
        if new_weight < old_weight:
            # A rejected edge got cheaper: its own budget k*w tightened, so
            # re-run its acceptance test; everything else is untouched.
            fault_set = self._accept(update.u, update.v, new_weight)
            if fault_set is not None:
                self.spanner.add_edge(update.u, update.v, new_weight)
                self.witnesses[update.edge] = fault_set
                self._incremental_accepts.inc()
                return True, None, (), True
            self._incremental_rejects.inc()
            return False, None, (), False
        # A rejected edge got heavier: its budget grew, H is unchanged.
        return None, None, (), False

    # ------------------------------------------------------------------ repair
    def _repair(self, region: DirtyRegion) -> Tuple[Candidate, ...]:
        """Greedy acceptance sweep over one dirty region; returns re-admissions."""
        self._repairs.inc()
        self.repair_log.append(region)
        self._dirty_candidates_checked.inc(len(region.candidates))
        self._dirty_pool_seen.inc(region.candidate_pool)
        self._dirty_region_size.observe(len(region.candidates))
        if not region.candidates:
            self._repair_seconds.observe(0.0)
            return ()
        started = time.perf_counter()
        backend = get_backend(self.spec.backend, self.spec.workers)
        if backend.workers > 1 and len(region.candidates) >= _PARALLEL_SWEEP_MIN:
            added = self._sweep_parallel(region.candidates, backend)
        else:
            added = self._sweep_serial(region.candidates)
        self._repair_seconds.observe(time.perf_counter() - started)
        self._repair_edges_added.inc(len(added))
        if added:
            _LOGGER.debug("repair after %s %s: %d/%d dirty candidates re-admitted",
                          region.reason, region.trigger, len(added),
                          len(region.candidates))
        return tuple(added)

    def _sweep_serial(self, candidates: Tuple[Candidate, ...]) -> List[Candidate]:
        added: List[Candidate] = []
        for u, v, w in candidates:
            fault_set = self._accept(u, v, w)
            if fault_set is not None:
                self.spanner.add_edge(u, v, w)
                self.witnesses[edge_key(u, v)] = fault_set
                added.append((u, v, w))
        return added

    def _sweep_parallel(self, candidates: Tuple[Candidate, ...],
                        backend: ExecutionBackend) -> List[Candidate]:
        """One speculative batch against the frozen H — byte-identical to serial.

        The correctness argument is the parallel FT-greedy build's, and so
        is the worker entry point (:func:`repro.spanners.ft_greedy._ft_check_chunk`):
        rejects against the batch-start ``H`` are monotone-safe, accepts are
        trusted only while ``H`` is unchanged and replayed serially
        otherwise.  Dirty regions are small, so a single batch (no geometric
        growth) covers them.
        """
        ship_elements = self.oracle.name == "exhaustive"
        h_version = self.spanner.version
        context = _FTCheckContext(
            csr=csr_snapshot(self.spanner), fault_model=self.model.name,
            oracle=self.oracle.name, max_faults=self.max_faults,
            kernel=get_kernels(self.spec.kernel).name,
            nodes=(tuple(self.spanner.nodes())
                   if ship_elements and self.model.uses_vertex_mask else None),
            edges=(tuple(self.spanner.edge_keys())
                   if ship_elements and not self.model.uses_vertex_mask else None),
        )
        tasks = [(u, v, self.stretch * w) for u, v, w in candidates]
        speculative: List[Optional[FaultSet]] = []
        registry = get_registry()
        for chunk_found, counters in backend.map(
                _ft_check_chunk, split_sequence(tasks, backend.workers),
                context=context, metrics=registry):
            speculative.extend(chunk_found)
            # Same two-target fold as the parallel builder: local tally for
            # stats(), process registry for the exported oracle totals.
            merge_counters(self._worker_counters, counters)
            registry.merge_counters(counters)
        added: List[Candidate] = []
        for (u, v, w), fault_set in zip(candidates, speculative):
            if fault_set is None:
                continue  # monotone-safe: serial would reject too
            if self.spanner.version != h_version:
                fault_set = self._accept(u, v, w)
                if fault_set is None:
                    continue
            self.spanner.add_edge(u, v, w)
            self.witnesses[edge_key(u, v)] = fault_set
            added.append((u, v, w))
        return added

    # ----------------------------------------------------------- certification
    def certify(self, *, method: str = "auto", samples: int = 200, rng=None,
                exhaustive_limit: int = 50_000) -> CertificationRecord:
        """Ground-truth check of the maintained spanner, sharded per the spec.

        Runs :func:`repro.dynamic.repair.certify` (=
        :func:`~repro.spanners.verify.is_ft_spanner`) with the spec's
        stretch/budget/model and its ``workers``/``backend`` knobs; the
        record is appended to :attr:`certifications`.
        """
        started = time.perf_counter()
        report = certify(
            self.graph, self.spanner, self.stretch, self.max_faults,
            self.model.name, method=method, samples=samples,
            rng=self.spec.seed if rng is None else rng,
            exhaustive_limit=exhaustive_limit,
            workers=self.spec.workers, backend=self.spec.backend,
            kernel=self.spec.kernel)
        self._certify_seconds.observe(time.perf_counter() - started)
        record = CertificationRecord(
            report=report, graph_version=self.graph.version,
            spanner_version=self.spanner.version,
            updates_applied=self.updates_applied)
        self.certifications.append(record)
        return record

    def rebuild(self) -> SpannerResult:
        """A from-scratch build of the spec at the *current* graph.

        The offline baseline the maintained spanner is compared against: the
        guarantee is identical, the size may be smaller (weight order beats
        arrival order) — this is the documented size-vs-rebuild trade-off.
        """
        from repro.build import build
        return build(self.graph, self.spec)

    # ----------------------------------------------------------------- reports
    def stats(self) -> Dict[str, Any]:
        """Flat maintenance report (counters, region selectivity, oracle work)."""
        return {
            "spec": self.spec.to_json(),
            "graph_nodes": self.graph.number_of_nodes(),
            "graph_edges": self.graph.number_of_edges(),
            "spanner_edges": self.spanner.number_of_edges(),
            "graph_version": self.graph.version,
            "spanner_version": self.spanner.version,
            "updates_applied": self.updates_applied,
            "update_counts": self.journal.counts(),
            "incremental_accepts": self.incremental_accepts,
            "incremental_rejects": self.incremental_rejects,
            "repairs": self.repairs,
            "repair_edges_added": self.repair_edges_added,
            "dirty_candidates_checked": self.dirty_candidates_checked,
            "dirty_pool_seen": self.dirty_pool_seen,
            "dirty_selectivity": (self.dirty_candidates_checked / self.dirty_pool_seen
                                  if self.dirty_pool_seen else 0.0),
            # Actual (speculative + recheck) work, workers included; unlike
            # the spanner and witnesses this is *not* identical to serial.
            "oracle_queries": (self.oracle.stats.queries
                               - self._base_oracle_queries
                               + int(self._worker_counters.get(
                                   "oracle.queries", 0))),
            "maintenance_seconds": self.maintenance_seconds,
            "certifications": len(self.certifications),
            "last_certification_ok": (self.certifications[-1].ok
                                      if self.certifications else None),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DynamicSpanner {self.spec.summary()} "
                f"n={self.graph.number_of_nodes()} "
                f"m={self.graph.number_of_edges()} "
                f"|H|={self.spanner.number_of_edges()} "
                f"updates={self.updates_applied}>")
