"""Dirty-region tracking and certification for incremental repairs.

When an edge leaves the spanner (deletion, or a weight increase that makes
old witness paths longer), the maintained invariant — *every non-spanner
edge of ``G`` passes the greedy rejection test against ``H``* — can break,
but only for pairs whose short fault-free detours actually routed through
the touched edge.  :func:`dirty_candidates` computes a provably sufficient
superset of those pairs with two unmasked SSSP runs, so the repair sweep
re-checks a small dirty region instead of every rejected edge:

    A rejected edge ``(u, v, w)`` satisfied ``dist_{H\\F}(u, v) <= k*w`` for
    every ``|F| <= f`` against the old spanner ``H`` (which contained the
    touched edge ``e = {a, b}`` at weight ``w_e``).  If the condition fails
    against ``H - e``, the old witness path for the failing ``F`` must have
    used ``e``, so it decomposes as ``u ~> a, e, b ~> v`` (or the reverse
    orientation) with total length ``<= k*w``.  Unmasked distances lower-
    bound masked ones, hence ``dist_H(u, a) + w_e + dist_H(b, v) <= k*w``
    (or the cross orientation) — exactly the filter below.  Candidates
    failing both orientations provably still pass and are skipped.

The region is recorded as a :class:`DirtyRegion` keyed on the
:attr:`Graph.version` delta of the mutation, so a maintenance log reads as
"version X -> Y: these candidates were re-checked, these re-entered H".

:func:`certify` is the subsystem's ground-truth hook: it re-runs
:func:`~repro.spanners.verify.is_ft_spanner` (exhaustive where feasible,
sampled otherwise) over the maintained spanner, sharding the fault-set sweep
through :mod:`repro.runtime` — the same machinery the static pipeline
trusts, so "maintained" and "built from scratch" are held to one standard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.graph.core import EdgeTuple, Graph, Node, edge_key
from repro.graph.csr import csr_snapshot
from repro.paths.registry import KernelLike, get_kernels
from repro.runtime.backend import BackendLike
from repro.spanners.verify import FTVerificationReport, is_ft_spanner

#: A candidate replacement edge, in rejection-test order: ``(u, v, weight)``.
Candidate = Tuple[Node, Node, float]


@dataclass(frozen=True)
class DirtyRegion:
    """The re-check work one destructive update induced.

    ``version_before``/``version_after`` bracket the mutation on the *graph*
    version counter, so a sequence of regions is an auditable log of what
    changed and what was re-certified in response.
    """

    #: Canonical key of the edge whose removal/re-weighting opened the region.
    trigger: EdgeTuple
    #: Why the region opened: ``"delete"`` or ``"reweight"``.
    reason: str
    #: Rejected edges whose acceptance test must be re-run, in the greedy
    #: sweep order (increasing weight, ties on the canonical key).
    candidates: Tuple[Candidate, ...]
    #: How many rejected edges existed in total (the filter's denominator).
    candidate_pool: int
    #: :attr:`Graph.version` of ``G`` before/after the triggering mutation.
    version_before: int = 0
    version_after: int = 0

    @property
    def selectivity(self) -> float:
        """Fraction of the rejected-edge pool the filter kept (0 when empty)."""
        if self.candidate_pool == 0:
            return 0.0
        return len(self.candidates) / self.candidate_pool


def _sorted_candidates(candidates: List[Candidate]) -> Tuple[Candidate, ...]:
    """Greedy sweep order: increasing weight, ties on the canonical key."""
    return tuple(sorted(
        candidates, key=lambda item: (item[2], repr(edge_key(item[0], item[1])))))


def dirty_candidates(graph: Graph, spanner: Graph, edge: EdgeTuple,
                     stretch: float, *,
                     edge_weight: Optional[float] = None,
                     kernel: KernelLike = None) -> Tuple[Tuple[Candidate, ...], int]:
    """Rejected edges whose acceptance test may flip when ``edge`` leaves ``spanner``.

    **Call before mutating**: both ``graph`` and ``spanner`` must still
    contain ``edge`` (at its old weight), because the filter reasons about
    the old witness paths.  Returns ``(candidates, pool)`` where
    ``candidates`` is the dirty subset of the pool of all rejected edges, in
    greedy sweep order, and ``pool`` is that pool's size.

    The filter is sound, not tight: it may keep a candidate whose test still
    passes (the sweep just re-rejects it), but provably never drops one
    whose test now fails — see the module docstring for the argument.
    """
    a, b = edge
    if not spanner.has_edge(a, b):
        raise ValueError(f"edge {edge!r} is not in the spanner")
    w_edge = spanner.weight(a, b) if edge_weight is None else float(edge_weight)
    csr = csr_snapshot(spanner)
    sssp = get_kernels(kernel).resolve(csr).sssp_dijkstra_csr
    dist_a, _ = sssp(csr, csr.index_of[a])
    dist_b, _ = sssp(csr, csr.index_of[b])
    index_of = csr.index_of
    dirty: List[Candidate] = []
    pool = 0
    for u, v, w in graph.edges():
        if spanner.has_edge(u, v):
            continue
        pool += 1
        ui = index_of.get(u)
        vi = index_of.get(v)
        if ui is None or vi is None:
            # A rejected edge whose endpoint the spanner has never seen can
            # have no witness path at all — it is vacuously clean.
            continue
        budget = stretch * w
        through = min(dist_a[ui] + dist_b[vi], dist_b[ui] + dist_a[vi]) + w_edge
        if through <= budget:
            dirty.append((u, v, w))
    return _sorted_candidates(dirty), pool


def all_rejected_candidates(graph: Graph, spanner: Graph) -> Tuple[Candidate, ...]:
    """Every edge of ``graph`` outside ``spanner``, in greedy sweep order.

    The unfiltered fallback the maintainer uses when no sound filter applies
    (and the reference the filter's soundness tests compare against).
    """
    return _sorted_candidates(
        [(u, v, w) for u, v, w in graph.edges() if not spanner.has_edge(u, v)])


@dataclass
class CertificationRecord:
    """One certification outcome tied to the graph/spanner versions it saw."""

    report: FTVerificationReport
    graph_version: int
    spanner_version: int
    updates_applied: int

    @property
    def ok(self) -> bool:
        return self.report.ok


def certify(graph: Graph, spanner: Graph, stretch: float, max_faults: int,
            fault_model: str, *, method: str = "auto", samples: int = 200,
            rng=None, exhaustive_limit: int = 50_000, workers: int = 1,
            backend: BackendLike = None,
            kernel: KernelLike = None) -> FTVerificationReport:
    """Ground-truth check of the maintained spanner (sharded like the static path).

    A thin, argument-for-argument wrapper over
    :func:`repro.spanners.verify.is_ft_spanner`, kept as its own entry point
    so the dynamic subsystem has exactly one certification surface: the
    maintainer, the live engine, the CLI ``update --certify`` verb, and the
    property tests all call this (and therefore all shard through the same
    :mod:`repro.runtime` backends, serial ≡ parallel).
    """
    return is_ft_spanner(graph, spanner, stretch, max_faults, fault_model,
                         method=method, samples=samples, rng=rng,
                         exhaustive_limit=exhaustive_limit,
                         workers=workers, backend=backend, kernel=kernel)
