"""Typed edge updates and the append-only, replayable update journal.

Live graphs churn in exactly three ways — a link appears, a link fails, a
link is re-weighted — and this module gives each its own frozen op type:

* :class:`EdgeInsert` — a new edge ``{u, v}`` with a positive weight;
* :class:`EdgeDelete` — an existing edge disappears;
* :class:`WeightChange` — an existing edge gets a new positive weight.

Ops validate against the graph they are applied to (inserting an existing
edge or deleting a missing one raises :class:`UpdateError` rather than
silently merging), so a journal is an unambiguous record: every op either
applied exactly as written or the replay stops.

An :class:`UpdateJournal` is the append-only stream of such ops.  It is the
subsystem's source of truth for reproducibility — the journal serialises to
one JSON document, and :meth:`UpdateJournal.replay` applied to the same base
graph deterministically reproduces the same final graph (same node and edge
*insertion order*, hence byte-identical CSR snapshots and spanners
downstream).  ``tests/test_dynamic.py`` holds the determinism line
property-style.

:func:`random_journal` generates seeded mixed-update streams against a
graph's live edge set (inserts pick current non-edges, deletes and reweights
pick current edges), which is what the churn benchmark and the acceptance
tests replay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.graph.core import EdgeTuple, Graph, GraphError, Node, edge_key
from repro.graph.io import _restore_node
from repro.utils.rng import ensure_rng

PathLike = Union[str, Path]

#: The ``format`` field of a serialised journal document.
JOURNAL_FORMAT = "repro-update-journal"


class UpdateError(ValueError):
    """An update op does not apply to the graph it was aimed at."""


@dataclass(frozen=True)
class EdgeInsert:
    """A new edge ``{u, v}`` with the given positive weight.

    Inserting an edge that already exists is an :class:`UpdateError` — use
    :class:`WeightChange` to re-weight.  Endpoints missing from the graph
    are created, exactly like :meth:`Graph.add_edge`.
    """

    u: Node
    v: Node
    weight: float = 1.0

    kind = "insert"

    @property
    def edge(self) -> EdgeTuple:
        """Canonical ``(min, max)`` key of the touched edge."""
        return edge_key(self.u, self.v)

    def apply(self, graph: Graph) -> None:
        if graph.has_edge(self.u, self.v):
            raise UpdateError(
                f"insert of existing edge {self.edge!r}; use WeightChange")
        try:
            graph.add_edge(self.u, self.v, self.weight)
        except GraphError as error:
            raise UpdateError(str(error)) from None


@dataclass(frozen=True)
class EdgeDelete:
    """An existing edge ``{u, v}`` disappears (endpoints stay)."""

    u: Node
    v: Node

    kind = "delete"

    @property
    def edge(self) -> EdgeTuple:
        """Canonical ``(min, max)`` key of the touched edge."""
        return edge_key(self.u, self.v)

    def apply(self, graph: Graph) -> None:
        if not graph.has_edge(self.u, self.v):
            raise UpdateError(f"delete of missing edge {self.edge!r}")
        graph.remove_edge(self.u, self.v)


@dataclass(frozen=True)
class WeightChange:
    """An existing edge ``{u, v}`` gets a new positive weight."""

    u: Node
    v: Node
    weight: float

    kind = "reweight"

    @property
    def edge(self) -> EdgeTuple:
        """Canonical ``(min, max)`` key of the touched edge."""
        return edge_key(self.u, self.v)

    def apply(self, graph: Graph) -> None:
        if not graph.has_edge(self.u, self.v):
            raise UpdateError(
                f"reweight of missing edge {self.edge!r}; use EdgeInsert")
        try:
            graph.add_edge(self.u, self.v, self.weight)
        except GraphError as error:
            raise UpdateError(str(error)) from None


UpdateOp = Union[EdgeInsert, EdgeDelete, WeightChange]

_OP_TYPES: Dict[str, type] = {
    EdgeInsert.kind: EdgeInsert,
    EdgeDelete.kind: EdgeDelete,
    WeightChange.kind: WeightChange,
}


def update_to_json(update: UpdateOp) -> Dict[str, Any]:
    """One op as a JSON-serialisable dict (inverse of :func:`update_from_json`)."""
    document: Dict[str, Any] = {"op": update.kind, "u": update.u, "v": update.v}
    if update.kind != EdgeDelete.kind:
        document["weight"] = update.weight
    return document


def update_from_json(document: Dict[str, Any]) -> UpdateOp:
    """Rebuild one op from :func:`update_to_json` output.

    Tuple node labels (product graphs) survive the round trip via the same
    list→tuple restoration the graph JSON format uses.
    """
    try:
        op_type = _OP_TYPES[document["op"]]
    except KeyError:
        raise UpdateError(
            f"unknown update op {document.get('op')!r}; "
            f"expected one of {sorted(_OP_TYPES)}") from None
    u = _restore_node(document["u"])
    v = _restore_node(document["v"])
    if op_type is EdgeDelete:
        return EdgeDelete(u, v)
    return op_type(u, v, float(document["weight"]))


class UpdateJournal:
    """An append-only, JSON-round-trippable stream of edge updates.

    The journal is the replayable record of a live graph's churn: ops only
    ever append (there is no rewrite API), and :meth:`replay` applied to the
    same base graph reproduces the same final graph deterministically —
    including node/edge insertion order, so everything downstream (CSR
    snapshots, maintained spanners) is byte-identical across replays.
    """

    __slots__ = ("_entries", "name")

    def __init__(self, updates: Optional[Iterable[UpdateOp]] = None,
                 name: str = ""):
        self._entries: List[UpdateOp] = list(updates or ())
        self.name = name

    # ------------------------------------------------------------- appending
    def append(self, update: UpdateOp) -> None:
        """Append one op (the only mutation the journal supports)."""
        if not isinstance(update, (EdgeInsert, EdgeDelete, WeightChange)):
            raise UpdateError(f"not an update op: {update!r}")
        self._entries.append(update)

    def extend(self, updates: Iterable[UpdateOp]) -> None:
        """Append every op in ``updates``."""
        for update in updates:
            self.append(update)

    # --------------------------------------------------------------- reading
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[UpdateOp]:
        return iter(self._entries)

    def __getitem__(self, index):
        return self._entries[index]

    def counts(self) -> Dict[str, int]:
        """Ops per kind (for reports): ``{"insert": ..., "delete": ..., "reweight": ...}``."""
        counts = {kind: 0 for kind in _OP_TYPES}
        for update in self._entries:
            counts[update.kind] += 1
        return counts

    # ---------------------------------------------------------------- replay
    def replay(self, graph: Graph, *, in_place: bool = False) -> Graph:
        """Apply every op in order; returns the final graph.

        Replays onto a copy by default, so the base graph is reusable as the
        fixed point journals are measured against; ``in_place=True`` mutates
        ``graph`` directly (what the live subsystem does).  Deterministic:
        same base + same journal → structurally identical result with the
        same insertion order.
        """
        target = graph if in_place else graph.copy()
        for update in self._entries:
            update.apply(target)
        return target

    # ------------------------------------------------------------------- I/O
    def to_json(self) -> Dict[str, Any]:
        """One self-describing JSON document holding the whole stream."""
        return {
            "format": JOURNAL_FORMAT,
            "version": 1,
            "name": self.name,
            "updates": [update_to_json(update) for update in self._entries],
        }

    @classmethod
    def from_json(cls, document: Dict[str, Any]) -> "UpdateJournal":
        """Rebuild a journal from :meth:`to_json` output."""
        if document.get("format") != JOURNAL_FORMAT:
            raise UpdateError(f"not a {JOURNAL_FORMAT} JSON document")
        return cls(
            updates=[update_from_json(entry)
                     for entry in document.get("updates", [])],
            name=document.get("name", ""),
        )

    def save(self, path: PathLike, *, indent: int = 2) -> None:
        """Write the journal as one JSON document."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=indent)
            handle.write("\n")

    @classmethod
    def load(cls, path: PathLike) -> "UpdateJournal":
        """Load a journal written by :meth:`save`."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.counts()
        return (f"<UpdateJournal len={len(self._entries)} "
                f"+{counts['insert']} -{counts['delete']} "
                f"~{counts['reweight']}>")


# --------------------------------------------------------------------------
# Seeded journal generation (churn streams for tests and benchmarks)
# --------------------------------------------------------------------------

#: Default op mix of the churn generators (insert, delete, reweight).
_DEFAULT_MIX = (0.4, 0.3, 0.3)

_KINDS = (EdgeInsert.kind, EdgeDelete.kind, WeightChange.kind)


def _validate_churn_params(mix, weight_range) -> Tuple[float, float]:
    if len(mix) != 3 or any(p < 0 for p in mix) or sum(mix) <= 0:
        raise ValueError("mix must be three non-negative weights, not all zero")
    low, high = weight_range
    if not 0 < low <= high:
        raise ValueError("weight_range must be positive and ordered")
    return low, high


class ChurnState:
    """The simulated live edge set a seeded churn stream draws against.

    One draw produces one valid op *and* advances the state, so a sequence
    of draws always replays cleanly in order: inserts pick uniformly among
    the current non-edges, deletes and reweights among the current edges.
    Shared by :func:`random_journal` and
    :func:`repro.engine.workload.update_churn` so the two generators cannot
    drift on the gating/sampling rules.  The node set is held fixed.
    """

    __slots__ = ("nodes", "present", "present_list", "total_pairs")

    def __init__(self, graph: Graph):
        self.nodes = list(graph.nodes())
        if len(self.nodes) < 2:
            raise ValueError("churn needs a graph with at least two nodes")
        # Canonical edge keys currently present, kept as both a set
        # (membership) and a list (O(1) uniform draws with swap-pop).
        self.present = {edge_key(u, v) for u, v, _ in graph.edges()}
        self.present_list = sorted(self.present, key=repr)
        self.total_pairs = len(self.nodes) * (len(self.nodes) - 1) // 2

    @property
    def live_edges(self) -> List[EdgeTuple]:
        """The current edge keys (e.g. to draw still-live fault sets from)."""
        return self.present_list

    def draw(self, rng, mix: Tuple[float, float, float],
             low: float, high: float) -> Optional[UpdateOp]:
        """One valid op per the (gated) ``mix``, or ``None`` if none applies."""
        # Disable impossible kinds at this step.
        allowed = list(mix)
        if len(self.present_list) >= self.total_pairs:
            allowed[0] = 0.0
        if not self.present_list:
            allowed[1] = allowed[2] = 0.0
        if sum(allowed) <= 0:
            return None  # complete graph with insert-only mix, etc.
        kind = rng.weighted_choice(_KINDS, weights=allowed)
        if kind == EdgeInsert.kind:
            while True:
                u, v = rng.sample(self.nodes, 2)
                key = edge_key(u, v)
                if key not in self.present:
                    break
            update = EdgeInsert(key[0], key[1], rng.uniform(low, high))
            self.present.add(key)
            self.present_list.append(key)
            return update
        index = rng.randint(0, len(self.present_list) - 1)
        key = self.present_list[index]
        if kind == EdgeDelete.kind:
            self.present_list[index] = self.present_list[-1]
            self.present_list.pop()
            self.present.remove(key)
            return EdgeDelete(key[0], key[1])
        return WeightChange(key[0], key[1], rng.uniform(low, high))


def random_journal(graph: Graph, length: int, *,
                   mix: Tuple[float, float, float] = _DEFAULT_MIX,
                   weight_range: Tuple[float, float] = (0.5, 2.0),
                   rng=None) -> UpdateJournal:
    """A seeded journal of ``length`` mixed updates valid against ``graph``.

    The generator tracks the evolving edge set through :class:`ChurnState`,
    so the journal replays cleanly (every op applies).  ``mix`` weights the
    three kinds ``(insert, delete, reweight)``; kinds that are impossible at
    some step (no non-edge left to insert, no edge left to delete) fall back
    to the others.  The node set is held fixed.  Deterministic from ``rng``.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    low, high = _validate_churn_params(mix, weight_range)
    rng = ensure_rng(rng)
    state = ChurnState(graph)
    journal = UpdateJournal(name=f"random_journal(len={length})")
    for _ in range(length):
        update = state.draw(rng, mix, low, high)
        if update is None:
            break
        journal.append(update)
    return journal
