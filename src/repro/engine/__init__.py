"""Batched fault-tolerant query serving on top of prebuilt spanners.

The paper's object of study is a *compact structure you query after faults*;
this package is the layer that actually serves those queries at volume.  The
pieces, bottom-up:

* :mod:`repro.engine.snapshot` — :class:`SpannerSnapshot`, an immutable
  bundle of the spanner graph, its compiled CSR form, and the construction
  metadata (``k``, ``f``, fault model), with ``save``/``load`` so a service
  restarts without rebuilding;
* :mod:`repro.engine.batch` — the batch planner: incoming
  ``(source, target, fault set)`` queries are grouped by ``(source, fault
  mask)`` and each group is answered by **one** masked kernel run instead of
  one Dijkstra per query, with fault-mask buffers reused across groups;
* :mod:`repro.engine.cache` — a versioned LRU cache of per-``(source,
  faults)`` distance vectors, invalidated by :attr:`Graph.version`;
* :mod:`repro.engine.engine` — :class:`QueryEngine`, the facade exposing
  ``distance`` / ``distances_batch`` / ``connectivity`` / ``stretch_audit``
  plus a serving-stats report;
* :mod:`repro.engine.workload` — synthetic query-traffic generators
  (uniform, Zipf-skewed, fault-churn sessions) for benchmarks and the
  ``repro-spanner serve`` CLI.

Batched answers are *identical* to per-query answers — the batch planner is
an execution strategy, never a semantic change; ``tests/test_engine.py``
enforces this against the dict-based reference path.
"""

from repro.engine.batch import BatchPlan, MaskBuffer, plan_batches
from repro.engine.cache import ResultCache
from repro.engine.engine import EngineError, QueryEngine, StretchAudit
from repro.engine.snapshot import SpannerSnapshot
from repro.engine.workload import (
    Query,
    fault_churn_sessions,
    split_batches,
    uniform_workload,
    update_churn,
    zipf_workload,
)

__all__ = [
    "BatchPlan",
    "MaskBuffer",
    "plan_batches",
    "ResultCache",
    "EngineError",
    "QueryEngine",
    "StretchAudit",
    "SpannerSnapshot",
    "Query",
    "uniform_workload",
    "zipf_workload",
    "fault_churn_sessions",
    "update_churn",
    "split_batches",
]
