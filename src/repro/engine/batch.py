"""Batched query planning: group queries, run one kernel per group.

The serving hot path receives a stream of ``(source, target, fault set)``
queries.  Answering each with its own Dijkstra wastes most of the work —
real traffic is heavily skewed (few popular sources, few concurrent fault
sets), so many queries share a ``(source, fault set)`` pair.  The planner
exploits that:

1. :func:`plan_batches` buckets queries by ``(source, canonical fault set)``
   in first-seen order (deterministic), remembering each query's position so
   answers can be scattered back in request order;
2. each group is answered by **one** masked kernel run —
   :func:`multi_target_group` early-exits once the group's targets settle,
   :func:`sssp_group` computes the full distance vector (the cacheable
   form);
3. a :class:`MaskBuffer` is reused across groups: applying a fault set
   writes ``|F|`` bytes and resetting clears exactly those bytes, so the
   per-group masking cost is O(|F|), not O(n).  When a vectorized kernel
   backend serves the plan, :class:`MaskMatrix` stacks all the groups' masks
   into one boolean matrix (same O(|F|)-per-group reuse discipline) so a
   multi-source kernel answers the whole plan in one sweep.

Because the kernels replicate the per-query reference decision-for-decision
(see :mod:`repro.paths.kernels`), grouping never changes an answer — only
how many heap operations it costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.faults.models import FaultModel, FaultSet
from repro.graph.core import Node
from repro.graph.csr import CSRGraph
from repro.paths.registry import KernelBackend, get_kernels


@dataclass
class BatchGroup:
    """All queries of one batch that share ``(source, fault set)``."""

    source: Node
    faults: FaultSet
    targets: List[Node] = field(default_factory=list)
    positions: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.targets)


@dataclass
class BatchPlan:
    """The grouped form of one incoming query batch."""

    groups: List[BatchGroup]
    num_queries: int

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def largest_group(self) -> int:
        """Size of the biggest group (0 for an empty plan)."""
        if not self.groups:
            return 0
        return max(len(group) for group in self.groups)


def plan_batches(queries: Iterable, model: FaultModel) -> BatchPlan:
    """Group ``queries`` by ``(source, canonical fault set)``.

    Each query is anything exposing ``source`` / ``target`` / ``faults``
    attributes (:class:`repro.engine.workload.Query`) or a plain
    ``(source, target, faults)`` / ``(source, target)`` tuple.  Groups come
    out in first-seen order and positions index into the original stream, so
    executing the plan and scattering results reproduces per-query order
    exactly.
    """
    index: Dict[Tuple[Node, FaultSet], BatchGroup] = {}
    groups: List[BatchGroup] = []
    count = 0
    for position, query in enumerate(queries):
        count += 1
        if hasattr(query, "source"):
            source, target, faults = query.source, query.target, query.faults
        elif len(query) == 2:
            (source, target), faults = query, ()
        else:
            source, target, faults = query
        canonical = model.canonical(faults)
        key = (source, canonical)
        group = index.get(key)
        if group is None:
            group = BatchGroup(source=source, faults=canonical)
            index[key] = group
            groups.append(group)
        group.targets.append(target)
        group.positions.append(position)
    return BatchPlan(groups=groups, num_queries=count)


class MaskBuffer:
    """A reusable fault mask over one CSR snapshot.

    Allocating a fresh ``bytearray(n)`` per group is what the PR 1 oracles
    stopped doing; the engine keeps one buffer per served graph and flips
    only the faulted bytes in and out.  The buffer transparently re-sizes
    when the underlying snapshot grew (incremental appends add nodes/edges
    without recompiling).
    """

    __slots__ = ("csr", "model", "_mask", "_set_indices")

    def __init__(self, csr: CSRGraph, model: FaultModel):
        self.csr = csr
        self.model = model
        self._mask = model.new_mask(csr)
        self._set_indices: List[int] = []

    def apply(self, faults: Iterable) -> Tuple[bytearray, bytearray]:
        """Mask ``faults`` and return the kernel ``(vertex_mask, edge_mask)`` pair.

        Fault elements unknown to the snapshot are dropped, matching
        :class:`~repro.graph.views.ExclusionView` semantics.  Call
        :meth:`reset` after the kernel run.
        """
        if self._set_indices:
            raise RuntimeError("MaskBuffer.apply called before reset")
        required = (self.csr.num_nodes if self.model.uses_vertex_mask
                    else self.csr.num_edges)
        if len(self._mask) != required:
            self._mask = self.model.new_mask(self.csr)
        indices = self.model.mask_indices(self.csr, faults)
        mask = self._mask
        for index in indices:
            mask[index] = 1
        self._set_indices = indices
        return self.model.kernel_masks(mask)

    def reset(self) -> None:
        """Clear exactly the bytes the last :meth:`apply` set."""
        mask = self._mask
        for index in self._set_indices:
            mask[index] = 0
        self._set_indices = []


class MaskMatrix:
    """A reusable stack of per-group fault mask rows (numpy backends only).

    Where :class:`MaskBuffer` serves one group at a time, the matrix holds
    one boolean row per group of a plan so the whole fault-set batch can be
    handed to a multi-source kernel in a single call.  Rows are reused across
    plans with the same O(|F|)-per-group cost discipline: applying a plan
    writes only the faulted cells, and the next apply clears exactly the
    cells the previous one set.  Row capacity grows geometrically.
    """

    __slots__ = ("csr", "model", "_matrix", "_set_cells")

    def __init__(self, csr: CSRGraph, model: FaultModel):
        self.csr = csr
        self.model = model
        self._matrix = None
        self._set_cells: List[Tuple[int, List[int]]] = []

    def apply(self, fault_sets: Sequence[Iterable]):
        """Mask ``fault_sets`` row-by-row; returns ``(vertex_masks, edge_masks)``.

        One of the two is the ``(len(fault_sets), width)`` uint8 matrix (per
        the fault model), the other ``None`` — mirroring
        :meth:`FaultModel.kernel_masks` shape-for-shape, one row per group.
        """
        import numpy as np

        width = (self.csr.num_nodes if self.model.uses_vertex_mask
                 else self.csr.num_edges)
        rows = len(fault_sets)
        matrix = self._matrix
        if matrix is None or matrix.shape[1] != width or matrix.shape[0] < rows:
            capacity = rows if matrix is None else max(rows, 2 * matrix.shape[0])
            matrix = np.zeros((capacity, width), dtype=np.uint8)
            self._matrix = matrix
            self._set_cells = []
        for row, indices in self._set_cells:
            matrix[row, indices] = 0
        self._set_cells = []
        for row, faults in enumerate(fault_sets):
            indices = self.model.mask_indices(self.csr, faults)
            if indices:
                matrix[row, indices] = 1
                self._set_cells.append((row, indices))
        view = matrix[:rows]
        if self.model.uses_vertex_mask:
            return view, None
        return None, view


def sssp_group(csr: CSRGraph, buffer: MaskBuffer, source_index: int,
               faults: Iterable,
               kernels: KernelBackend = None) -> List[float]:
    """Full masked distance vector from ``source_index`` (the cacheable form)."""
    if kernels is None:
        kernels = get_kernels(None)
    kernels = kernels.resolve(csr)
    vertex_mask, edge_mask = buffer.apply(faults)
    try:
        dist, _ = kernels.sssp_dijkstra_csr(csr, source_index, None,
                                            vertex_mask, edge_mask)
        return dist
    finally:
        buffer.reset()


def multi_target_group(csr: CSRGraph, buffer: MaskBuffer, source_index: int,
                       faults: Iterable, target_indices: Sequence[int],
                       kernels: KernelBackend = None) -> List[float]:
    """Masked distances to just ``target_indices``; early-exits when all settle."""
    if kernels is None:
        kernels = get_kernels(None)
    kernels = kernels.resolve(csr)
    vertex_mask, edge_mask = buffer.apply(faults)
    try:
        return kernels.multi_target_dijkstra_csr(
            csr, source_index, list(target_indices), vertex_mask, edge_mask)
    finally:
        buffer.reset()
