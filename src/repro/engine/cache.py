"""Versioned LRU result cache for the query engine.

The engine caches one *distance vector* per ``(source, canonical fault set)``
pair: a single masked SSSP run answers every target for that pair, so the
vector is the natural unit of reuse — a cache hit turns a whole query group
into list lookups.

Two invalidation mechanisms:

* **LRU eviction** — bounded capacity, least-recently-*used* entry dropped
  first (reads refresh recency);
* **version invalidation** — every entry set is tied to one
  :attr:`Graph.version`; :meth:`ResultCache.sync` clears the cache the
  moment the served graph's version moves, so a mutated spanner can never
  serve stale distances.

All traffic is counted on the metrics registry (:mod:`repro.obs`) under the
``engine.cache.*`` family — hits / misses / evictions / invalidations — and
surfaces both in :meth:`QueryEngine.stats` (the historical dict view) and in
the process-wide metrics export.  ``hit_rate`` is always a number: an
untouched cache reports ``0.0``, never a division error.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from repro.obs.metrics import MetricsRegistry, component_registry


class ResultCache:
    """A bounded LRU mapping with hit/miss/eviction/invalidation counters.

    ``capacity <= 0`` disables caching entirely (every ``get`` misses, every
    ``put`` is a no-op) — the engine uses this to run in pure streaming mode.
    ``metrics`` lets an owning component (the engine) host the cache
    counters on its own registry; a standalone cache gets its own, attached
    to the process default either way.
    """

    __slots__ = ("capacity", "version", "metrics", "_hits", "_misses",
                 "_evictions", "_invalidations", "_entries")

    def __init__(self, capacity: int = 256, *,
                 metrics: Optional[MetricsRegistry] = None):
        self.capacity = capacity
        self.version: Optional[int] = None
        self.metrics = metrics if metrics is not None else component_registry("cache")
        self._hits = self.metrics.counter(
            "engine.cache.hits", "cache lookups answered from memory")
        self._misses = self.metrics.counter(
            "engine.cache.misses", "cache lookups that fell through")
        self._evictions = self.metrics.counter(
            "engine.cache.evictions", "LRU entries dropped at capacity")
        self._invalidations = self.metrics.counter(
            "engine.cache.invalidations",
            "whole-cache clears on graph version moves")
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    # ------------------------------------------------------------ thin views
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    # ------------------------------------------------------------- lifecycle
    def sync(self, version: int) -> None:
        """Bind the cache to ``version``, clearing it if the version moved.

        Call before every lookup round; cheap when nothing changed (one
        comparison).
        """
        if self.version is None:
            self.version = version
            return
        if version != self.version:
            if self._entries:
                self._invalidations.inc()
                self._entries.clear()
            self.version = version

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    # --------------------------------------------------------------- traffic
    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value for ``key`` (refreshing recency) or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses.inc()
            return None
        self._hits.inc()
        self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key`` → ``value``, evicting the LRU entry when full."""
        if self.capacity <= 0:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self._evictions.inc()

    # ----------------------------------------------------------------- stats
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        hits = self._hits.value
        total = hits + self._misses.value
        if total == 0:
            return 0.0
        return hits / total

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for the engine's stats report."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses} evictions={self.evictions}>"
        )
