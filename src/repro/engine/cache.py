"""Versioned LRU result cache for the query engine.

The engine caches one *distance vector* per ``(source, canonical fault set)``
pair: a single masked SSSP run answers every target for that pair, so the
vector is the natural unit of reuse — a cache hit turns a whole query group
into list lookups.

Two invalidation mechanisms:

* **LRU eviction** — bounded capacity, least-recently-*used* entry dropped
  first (reads refresh recency);
* **version invalidation** — every entry set is tied to one
  :attr:`Graph.version`; :meth:`ResultCache.sync` clears the cache the
  moment the served graph's version moves, so a mutated spanner can never
  serve stale distances.

All traffic is counted (hits / misses / evictions / invalidations) and
surfaces in :meth:`QueryEngine.stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional


class ResultCache:
    """A bounded LRU mapping with hit/miss/eviction/invalidation counters.

    ``capacity <= 0`` disables caching entirely (every ``get`` misses, every
    ``put`` is a no-op) — the engine uses this to run in pure streaming mode.
    """

    __slots__ = ("capacity", "version", "hits", "misses", "evictions",
                 "invalidations", "_entries")

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self.version: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    # ------------------------------------------------------------- lifecycle
    def sync(self, version: int) -> None:
        """Bind the cache to ``version``, clearing it if the version moved.

        Call before every lookup round; cheap when nothing changed (one
        comparison).
        """
        if self.version is None:
            self.version = version
            return
        if version != self.version:
            if self._entries:
                self.invalidations += 1
                self._entries.clear()
            self.version = version

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    # --------------------------------------------------------------- traffic
    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value for ``key`` (refreshing recency) or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key`` → ``value``, evicting the LRU entry when full."""
        if self.capacity <= 0:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    # ----------------------------------------------------------------- stats
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for the engine's stats report."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses} evictions={self.evictions}>"
        )
