"""The :class:`QueryEngine` facade: serve distance queries against a snapshot.

One engine serves one :class:`~repro.engine.snapshot.SpannerSnapshot`.  Query
types:

* :meth:`QueryEngine.distance` — ``dist_{H \\ F}(s, t)`` for one query;
* :meth:`QueryEngine.distances_batch` — a whole batch at once, grouped by
  ``(source, fault set)`` so each group costs one masked kernel run;
* :meth:`QueryEngine.connectivity` — reachability under faults;
* :meth:`QueryEngine.stretch_audit` — compare the served (spanner) distance
  against the original graph under the same fault set, i.e. measure the
  stretch actually delivered (requires the snapshot to carry the original).

Caching: per-``(source, canonical fault set)`` full distance vectors in a
versioned LRU (:mod:`repro.engine.cache`).  A cache hit answers every target
of a group with list lookups; a miss costs one full masked SSSP.  With the
cache disabled (``cache_size=0``) groups run the early-exiting multi-target
kernel instead — cheaper for one-shot traffic, nothing worth keeping.

Answers are identical either way, and identical to the per-query reference
(one Dijkstra per query over ``ExclusionView``): batching and caching are
execution strategies, not approximations.  ``tests/test_engine.py`` holds
this line property-style.

Observability: every serving counter lives on the engine's own metrics
registry (``engine.*`` family, attached to the process default — see
:mod:`repro.obs`), with the historical attributes (``queries_served``,
``kernel_calls``, ...) preserved as read-only views and :meth:`stats` as the
dict rendering.  Batch occupancy and per-group kernel time are histograms;
``distances_batch`` opens a tracer span so traces attribute kernel work to
the batches that caused it.  Pooled audit sweeps ship their counters back
per chunk and fold through :func:`repro.obs.merge_counters`, so parallel
audits report exactly the serial counters.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.batch import (
    BatchGroup,
    MaskBuffer,
    MaskMatrix,
    multi_target_group,
    plan_batches,
    sssp_group,
)
from repro.engine.cache import ResultCache
from repro.engine.snapshot import SpannerSnapshot
from repro.faults.models import FaultSet, get_fault_model
from repro.graph.core import Node
from repro.graph.csr import CSRGraph
from repro.obs.metrics import SIZE_BUCKETS, component_registry, get_registry
from repro.obs.trace import get_tracer
from repro.paths.registry import KernelLike, get_kernels
from repro.runtime.backend import BackendLike, SerialBackend, get_backend
from repro.runtime.shard import split_sequence

_INF = math.inf
_RELATIVE_TOLERANCE = 1e-9


class EngineError(Exception):
    """Raised on invalid engine requests (e.g. audits without the original)."""


@dataclass(frozen=True)
class StretchAudit:
    """Outcome of one stretch audit: served distance vs ground truth.

    ``stretch`` is ``dist_{H \\ F} / dist_{G \\ F}`` (1.0 when the pair is
    disconnected in the surviving original — the demand is vacuous, exactly
    as in Definition 2).  ``within_budget`` records whether the fault set
    was within the snapshot's budget ``f``; only then does the construction
    promise ``ok``.
    """

    source: Node
    target: Node
    faults: FaultSet
    spanner_distance: float
    original_distance: float
    required_stretch: float
    within_budget: bool

    @property
    def stretch(self) -> float:
        if math.isinf(self.original_distance):
            return 1.0
        if self.original_distance == 0:
            # source == target: both distances are 0, stretch is trivially 1.
            return 1.0 if self.spanner_distance == 0 else _INF
        return self.spanner_distance / self.original_distance

    @property
    def ok(self) -> bool:
        """Whether the served distance honours the promised stretch."""
        return self.stretch <= self.required_stretch * (1.0 + _RELATIVE_TOLERANCE)


@dataclass(frozen=True)
class _AuditContext:
    """Picklable payload for sharded audit sweeps (shipped once per worker)."""

    csr_h: CSRGraph
    csr_g: CSRGraph
    fault_model: str
    kernel: str = "auto"


def _audit_chunk(ctx: _AuditContext,
                 chunk: List) -> Tuple[List[Tuple[float, float]], Dict[str, int]]:
    """Resolve one chunk of ``(source, target, canonical faults)`` audits.

    Returns the ``(spanner_distance, original_distance)`` pairs in request
    order plus a flat counters mapping (spanner / original kernel-run
    counts, plus ``engine.fused_sweeps`` when the chunk fused) — the
    workers' contribution to the engine registry, folded by the caller
    through :meth:`MetricsRegistry.merge_counters`.

    When the resolved backend exposes ``multi_source_multi_target``, all of
    a side's audits run in one fused sweep (mask-matrix rows, one kernel
    invocation) instead of one multi-target run per audit — the PR 6 fused
    serving-path idiom applied inside the worker.  The fused kernel
    replicates the single-source kernel's per-group semantics, so distances
    stay bit-identical to :meth:`QueryEngine.stretch_audit` either way;
    ``kernel_calls`` / ``audit_kernel_calls`` keep counting logical runs.
    """
    model = get_fault_model(ctx.fault_model)
    kernels = get_kernels(ctx.kernel)
    calls = [0, 0]  # [spanner, original]
    fused = 0
    results = [[_INF, _INF] for _ in chunk]
    for side, csr in enumerate((ctx.csr_h, ctx.csr_g)):
        backend = kernels.resolve(csr)
        # Audits whose endpoints the snapshot knows; the rest stay inf
        # without a kernel call, exactly as the per-audit loop behaves.
        pending = [(row, csr.index_of.get(source), csr.index_of.get(target), faults)
                   for row, (source, target, faults) in enumerate(chunk)]
        pending = [entry for entry in pending
                   if entry[1] is not None and entry[2] is not None]
        if not pending:
            continue
        if backend.multi_source_multi_target is not None and len(pending) > 1:
            vertex_masks, edge_masks = MaskMatrix(csr, model).apply(
                [faults for _, _, _, faults in pending])
            answers = backend.multi_source_multi_target(
                csr, [si for _, si, _, _ in pending],
                [[ti] for _, _, ti, _ in pending], vertex_masks, edge_masks)
            for group, (row, _, _, _) in enumerate(pending):
                results[row][side] = answers[group][0]
            calls[side] += len(pending)
            fused += 1
            continue
        for row, source_index, target_index, faults in pending:
            mask = model.new_mask(csr)
            for index in model.mask_indices(csr, faults):
                mask[index] = 1
            vertex_mask, edge_mask = model.kernel_masks(mask)
            results[row][side] = backend.multi_target_dijkstra_csr(
                csr, source_index, [target_index], vertex_mask, edge_mask)[0]
            calls[side] += 1
    counters = {"engine.kernel_calls": calls[0],
                "engine.audit_kernel_calls": calls[1]}
    if fused:
        counters["engine.fused_sweeps"] = fused
    return [(pair[0], pair[1]) for pair in results], counters


class QueryEngine:
    """Serve fault-tolerant distance queries against one spanner snapshot.

    Parameters
    ----------
    snapshot:
        The prebuilt spanner (plus metadata, plus optionally the original
        graph for audits).
    cache_size:
        LRU capacity in ``(source, fault set)`` distance vectors; ``0``
        disables caching (pure streaming mode).
    backend:
        Execution backend (:func:`repro.runtime.get_backend` spec) used by
        :meth:`stretch_audit_batch` to shard audit sweeps; serving-path
        queries always run in-process.  Defaults to serial.
    kernel:
        Kernel backend (:func:`repro.paths.get_kernels` spec) answering the
        distance queries; ``None`` auto-selects by graph size.  When the
        resolved backend ships multi-source kernels, whole plans are served
        by fused sweeps (one kernel invocation for many groups) — answers,
        counters and cache behaviour stay bit-identical to per-group runs.
    """

    def __init__(self, snapshot: SpannerSnapshot, *, cache_size: int = 256,
                 admit_threshold: int = 2, backend: BackendLike = None,
                 workers: int = 1, kernel: KernelLike = None):
        self.snapshot = snapshot
        self.model = get_fault_model(snapshot.fault_model)
        self.metrics = component_registry("engine")
        self.cache = ResultCache(cache_size, metrics=self.metrics)
        self.backend = get_backend(backend, workers)
        self.kernel = get_kernels(kernel)
        #: Admission policy: a full distance vector is computed and cached
        #: only when the expected reuse of its ``(source, faults)`` key —
        #: the group size, plus one if the key was requested before — reaches
        #: this threshold.  Cold singleton groups run the cheaper early-exit
        #: multi-target kernel instead, so one-shot traffic never pays for a
        #: vector nobody will read again.  ``1`` caches unconditionally.
        self.admit_threshold = admit_threshold
        self._queries_served = self.metrics.counter(
            "engine.queries_served", "distance queries answered")
        self._batches_planned = self.metrics.counter(
            "engine.batches_planned", "distances_batch calls planned")
        self._groups_executed = self.metrics.counter(
            "engine.groups_executed", "(source, fault set) groups served")
        self._kernel_calls = self.metrics.counter(
            "engine.kernel_calls", "logical serving kernel runs")
        # Multi-source kernel invocations; each replaces >= 2 logical kernel
        # runs (``kernel_calls`` keeps counting those, so batching metrics
        # stay comparable across kernel backends).
        self._fused_sweeps = self.metrics.counter(
            "engine.fused_sweeps", "multi-source kernel invocations")
        self._audits = self.metrics.counter(
            "engine.audits", "stretch audits resolved")
        self._audit_kernel_calls = self.metrics.counter(
            "engine.audit_kernel_calls", "ground-truth kernel runs for audits")
        self._busy_seconds = self.metrics.counter(
            "engine.busy_seconds", "wall time spent inside the engine")
        self._batch_occupancy = self.metrics.histogram(
            "engine.batch_occupancy", "queries per distances_batch call",
            buckets=SIZE_BUCKETS)
        self._group_kernel_seconds = self.metrics.histogram(
            "engine.group_kernel_seconds",
            "kernel time per served group / fused sweep")
        self._buffers: Dict[int, MaskBuffer] = {}
        self._matrices: Dict[int, MaskMatrix] = {}
        self._seen_keys: set = set()

    # ----------------------------------------------------- counter thin views
    @property
    def queries_served(self) -> int:
        return self._queries_served.value

    @property
    def batches_planned(self) -> int:
        return self._batches_planned.value

    @property
    def groups_executed(self) -> int:
        return self._groups_executed.value

    @property
    def kernel_calls(self) -> int:
        return self._kernel_calls.value

    @property
    def fused_sweeps(self) -> int:
        return self._fused_sweeps.value

    @property
    def audits(self) -> int:
        return self._audits.value

    @property
    def audit_kernel_calls(self) -> int:
        return self._audit_kernel_calls.value

    @property
    def busy_seconds(self) -> float:
        return self._busy_seconds.value

    # ------------------------------------------------------------- internals
    def _buffer_for(self, csr: CSRGraph) -> MaskBuffer:
        """The reusable fault-mask buffer bound to ``csr``.

        Snapshots are recompiled (new object) after removals, so buffers are
        keyed by object identity; stale bindings are dropped.
        """
        key = id(csr)
        buffer = self._buffers.get(key)
        if buffer is None:
            if len(self._buffers) > 4:
                # Recompiled snapshots leave stale bindings behind; an engine
                # only ever serves two live CSRs (spanner + original).
                self._buffers.clear()
            buffer = MaskBuffer(csr, self.model)
            self._buffers[key] = buffer
        return buffer

    def _matrix_for(self, csr: CSRGraph) -> MaskMatrix:
        """The reusable fault-mask matrix bound to ``csr`` (fused sweeps)."""
        key = id(csr)
        matrix = self._matrices.get(key)
        if matrix is None:
            if len(self._matrices) > 4:
                self._matrices.clear()
            matrix = MaskMatrix(csr, self.model)
            self._matrices[key] = matrix
        return matrix

    def _multi_target(self, csr: CSRGraph, source_index: int,
                      canonical: FaultSet,
                      target_indices: List) -> List[float]:
        """Early-exit kernel run for the group; ``None`` targets answer inf."""
        known = [t for t in target_indices if t is not None]
        started = time.perf_counter()
        distances = multi_target_group(csr, self._buffer_for(csr), source_index,
                                       canonical, known, self.kernel)
        self._group_kernel_seconds.observe(time.perf_counter() - started)
        self._kernel_calls.inc()
        answered = iter(distances)
        return [next(answered) if t is not None else _INF for t in target_indices]

    def _serve_group(self, csr: CSRGraph, source: Node, canonical: FaultSet,
                     targets: Sequence[Node]) -> List[float]:
        """Distances for one ``(source, faults)`` group, in target order.

        Both execution strategies — cached full vector and early-exit
        multi-target run — produce bitwise-identical distances (enforced by
        ``tests/test_engine.py``), so the admission choice is purely about
        cost.
        """
        self._groups_executed.inc()
        index_of = csr.index_of
        source_index = index_of.get(source)
        if source_index is None:
            return [_INF] * len(targets)
        target_indices = [index_of.get(target) for target in targets]
        if not self.cache.enabled:
            return self._multi_target(csr, source_index, canonical, target_indices)
        key = (source, canonical)
        vector = self.cache.get(key)
        if vector is None:
            expected_reuse = len(targets) + (1 if key in self._seen_keys else 0)
            if expected_reuse < self.admit_threshold:
                # Cold singleton: remember the key so a repeat gets promoted,
                # but serve it with the cheap early-exit kernel for now.
                if len(self._seen_keys) > 16 * max(self.cache.capacity, 64):
                    self._seen_keys.clear()
                self._seen_keys.add(key)
                return self._multi_target(csr, source_index, canonical,
                                          target_indices)
            started = time.perf_counter()
            vector = sssp_group(csr, self._buffer_for(csr), source_index,
                                canonical, self.kernel)
            self._group_kernel_seconds.observe(time.perf_counter() - started)
            self._kernel_calls.inc()
            self.cache.put(key, vector)
        return [vector[t] if t is not None else _INF for t in target_indices]

    def _serve_plan_fused(self, csr: CSRGraph, plan,
                          results: List[float]) -> None:
        """Serve a whole plan with at most two multi-source kernel sweeps.

        Runs the exact per-group decision loop of :meth:`_serve_group` —
        same cache reads/writes, admission checks and counter bumps, in plan
        order — but *defers* the kernel work: admitted groups put an empty
        placeholder vector in the cache (plan keys are unique, so nothing
        reads it within this batch) and queue up; early-exit groups queue
        up likewise.  Each queue is then answered by one fused sweep over a
        :class:`MaskMatrix`, the placeholders filled in place, and answers
        scattered.  Every distance, counter and cache-state transition is
        bit-identical to the per-group path.
        """
        kernels = self.kernel.resolve(csr)
        index_of = csr.index_of
        multi_pending: List[Tuple[BatchGroup, int, List]] = []
        sssp_pending: List[Tuple[BatchGroup, int, List[float], List]] = []
        for group in plan.groups:
            self._groups_executed.inc()
            source_index = index_of.get(group.source)
            if source_index is None:
                continue  # results already hold inf
            target_indices = [index_of.get(t) for t in group.targets]
            if self.cache.enabled:
                key = (group.source, group.faults)
                vector = self.cache.get(key)
                if vector is not None:
                    for position, t in zip(group.positions, target_indices):
                        results[position] = vector[t] if t is not None else _INF
                    continue
                expected_reuse = len(group.targets) + (
                    1 if key in self._seen_keys else 0)
                if expected_reuse >= self.admit_threshold:
                    vector = []
                    self._kernel_calls.inc()
                    self.cache.put(key, vector)
                    sssp_pending.append(
                        (group, source_index, vector, target_indices))
                    continue
                if len(self._seen_keys) > 16 * max(self.cache.capacity, 64):
                    self._seen_keys.clear()
                self._seen_keys.add(key)
            self._kernel_calls.inc()
            multi_pending.append((group, source_index, target_indices))

        if sssp_pending:
            started = time.perf_counter()
            if len(sssp_pending) == 1:
                group, source_index, vector, _ = sssp_pending[0]
                vector[:] = sssp_group(csr, self._buffer_for(csr),
                                       source_index, group.faults, kernels)
            else:
                vm, em = self._matrix_for(csr).apply(
                    [group.faults for group, _, _, _ in sssp_pending])
                rows = kernels.multi_source_sssp(
                    csr, [si for _, si, _, _ in sssp_pending], vm, em)
                self._fused_sweeps.inc()
                for (_, _, vector, _), row in zip(sssp_pending, rows):
                    vector[:] = row
            self._group_kernel_seconds.observe(time.perf_counter() - started)
            for group, _, vector, target_indices in sssp_pending:
                for position, t in zip(group.positions, target_indices):
                    results[position] = vector[t] if t is not None else _INF

        if multi_pending:
            started = time.perf_counter()
            known_lists = [[t for t in tis if t is not None]
                           for _, _, tis in multi_pending]
            if len(multi_pending) == 1:
                group, source_index, _ = multi_pending[0]
                answers = [multi_target_group(
                    csr, self._buffer_for(csr), source_index, group.faults,
                    known_lists[0], kernels)]
            else:
                vm, em = self._matrix_for(csr).apply(
                    [group.faults for group, _, _ in multi_pending])
                answers = kernels.multi_source_multi_target(
                    csr, [si for _, si, _ in multi_pending], known_lists, vm, em)
                self._fused_sweeps.inc()
            self._group_kernel_seconds.observe(time.perf_counter() - started)
            for (group, _, target_indices), row in zip(multi_pending, answers):
                answered = iter(row)
                for position, t in zip(group.positions, target_indices):
                    results[position] = (next(answered) if t is not None
                                         else _INF)

    # --------------------------------------------------------------- queries
    def distance(self, source: Node, target: Node,
                 faults: Iterable = ()) -> float:
        """``dist_{H \\ F}(source, target)`` (``inf`` when unreachable/masked)."""
        return self.distances_batch([(source, target, tuple(faults))])[0]

    def distances_batch(self, queries: Sequence) -> List[float]:
        """Answer a batch of ``(source, target, faults)`` queries.

        Queries are grouped by ``(source, canonical fault set)``; each group
        costs at most one kernel run (zero on a cache hit).  The returned
        list is aligned with ``queries``.
        """
        started = time.perf_counter()
        with get_tracer().span("engine.distances_batch",
                               queries=len(queries)) as span:
            try:
                plan = plan_batches(queries, self.model)
                self._batches_planned.inc()
                self._queries_served.inc(plan.num_queries)
                self._batch_occupancy.observe(plan.num_queries)
                span.set(groups=plan.num_groups)
                self.cache.sync(self.snapshot.spanner.version)
                csr = self.snapshot.csr
                results: List[float] = [_INF] * plan.num_queries
                if (plan.num_groups > 1
                        and self.kernel.resolve(csr).multi_source_sssp is not None):
                    self._serve_plan_fused(csr, plan, results)
                    return results
                for group in plan.groups:
                    answers = self._serve_group(csr, group.source, group.faults,
                                                group.targets)
                    for position, answer in zip(group.positions, answers):
                        results[position] = answer
                return results
            finally:
                self._busy_seconds.inc(time.perf_counter() - started)

    def connectivity(self, source: Node, target: Node,
                     faults: Iterable = ()) -> bool:
        """Whether ``target`` is reachable from ``source`` in ``H \\ F``."""
        return not math.isinf(self.distance(source, target, faults))

    def stretch_audit(self, source: Node, target: Node,
                      faults: Iterable = ()) -> StretchAudit:
        """Compare the served distance against the original graph under ``F``.

        Requires the snapshot to carry the original graph; raises
        :class:`EngineError` otherwise.  The audit is the serving-layer twin
        of Definition 2: customers see ``dist_{H \\ F}``, the audit reports
        how far that is from the unserveable ground truth ``dist_{G \\ F}``.
        """
        original_csr = self.snapshot.original_csr
        if original_csr is None:
            raise EngineError(
                "stretch_audit needs a snapshot built with the original graph "
                "(SpannerSnapshot.original is None)"
            )
        faults = tuple(faults)
        canonical = self.model.canonical(faults)
        spanner_distance = self.distance(source, target, faults)
        started = time.perf_counter()
        try:
            self._audits.inc()
            index_of = original_csr.index_of
            source_index = index_of.get(source)
            target_index = index_of.get(target)
            if source_index is None or target_index is None:
                original_distance = _INF
            else:
                original_distance = multi_target_group(
                    original_csr, self._buffer_for(original_csr), source_index,
                    canonical, [target_index], self.kernel)[0]
                # Counted apart from kernel_calls: audits are ground-truth
                # lookups, not serving work, and must not skew the
                # batching-savings accounting below.
                self._audit_kernel_calls.inc()
        finally:
            self._busy_seconds.inc(time.perf_counter() - started)
        return StretchAudit(
            source=source,
            target=target,
            faults=canonical,
            spanner_distance=spanner_distance,
            original_distance=original_distance,
            required_stretch=self.snapshot.stretch,
            within_budget=len(canonical) <= self.snapshot.max_faults,
        )

    def stretch_audit_batch(self, requests: Sequence) -> List[StretchAudit]:
        """Audit a whole batch of ``(source, target, faults)`` requests.

        With the engine's default serial backend this is a plain loop over
        :meth:`stretch_audit` (counters and cache behave exactly as per-call
        audits).  With a pooled backend the requests shard across workers —
        each worker resolves both sides of its audits with the same masked
        multi-target kernel, so every :class:`StretchAudit` field is
        identical to the serial path.  Counter-merge rule for pooled runs:
        the batch planner and result cache are bypassed, so each audit
        counts one served query, one spanner kernel call, and one audit
        kernel call, while ``batches_planned``/``groups_executed`` are left
        untouched.
        """
        original_csr = self.snapshot.original_csr
        if original_csr is None:
            raise EngineError(
                "stretch_audit needs a snapshot built with the original graph "
                "(SpannerSnapshot.original is None)"
            )
        if isinstance(self.backend, SerialBackend):
            return [self.stretch_audit(source, target, faults)
                    for source, target, faults in requests]
        normalized = [(source, target, self.model.canonical(faults))
                      for source, target, faults in requests]
        started = time.perf_counter()
        try:
            context = _AuditContext(csr_h=self.snapshot.csr, csr_g=original_csr,
                                    fault_model=self.model.name,
                                    kernel=self.kernel.name)
            distance_pairs: List[Tuple[float, float]] = []
            # metrics=get_registry(): worker-side module counters (kernel
            # dispatch) fold into the process registry, while the explicit
            # per-chunk counts below land on the engine's own counters.
            for chunk_results, counters in self.backend.map(
                    _audit_chunk,
                    split_sequence(normalized, self.backend.workers),
                    context=context, metrics=get_registry()):
                self.metrics.merge_counters(counters)
                distance_pairs.extend(chunk_results)
            self._queries_served.inc(len(normalized))
            self._audits.inc(len(normalized))
            return [
                StretchAudit(
                    source=source,
                    target=target,
                    faults=canonical,
                    spanner_distance=spanner_distance,
                    original_distance=original_distance,
                    required_stretch=self.snapshot.stretch,
                    within_budget=len(canonical) <= self.snapshot.max_faults,
                )
                for (source, target, canonical), (spanner_distance, original_distance)
                in zip(normalized, distance_pairs)
            ]
        finally:
            self._busy_seconds.inc(time.perf_counter() - started)

    # ----------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        """Serving report: traffic, batching effectiveness, cache, throughput."""
        saved = self.queries_served - self.kernel_calls
        return {
            "snapshot": self.snapshot.describe(),
            "queries_served": self.queries_served,
            "batches_planned": self.batches_planned,
            "groups_executed": self.groups_executed,
            "kernel_calls": self.kernel_calls,
            "kernel_calls_saved": saved,
            "kernel": self.kernel.name,
            "fused_sweeps": self.fused_sweeps,
            "audits": self.audits,
            "audit_kernel_calls": self.audit_kernel_calls,
            "busy_seconds": self.busy_seconds,
            "queries_per_second": (self.queries_served / self.busy_seconds
                                   if self.busy_seconds > 0 else 0.0),
            "cache": self.cache.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QueryEngine {self.snapshot.fault_model} k={self.snapshot.stretch} "
            f"served={self.queries_served} kernel_calls={self.kernel_calls}>"
        )
