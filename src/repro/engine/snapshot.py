"""Immutable serving snapshots of a prebuilt (fault-tolerant) spanner.

A :class:`SpannerSnapshot` is what a query service loads at startup: the
spanner graph ``H``, optionally the original graph ``G`` it was built from
(needed only by stretch audits), and the construction metadata — stretch
``k``, fault budget ``f``, fault model, algorithm name.  The compiled CSR
form is exposed via :attr:`SpannerSnapshot.csr` and cached on the graph
itself, so repeated access is free.

Snapshots serialise to a single self-describing JSON document (embedding the
graphs via :func:`repro.graph.io.graph_to_json`), so a service can start
from disk without re-running the construction; plain graph files are pulled
in through :func:`repro.graph.io.load_graph_auto`, the same extension
dispatch the CLI uses.

Snapshots built through :mod:`repro.build` additionally record the
originating :class:`~repro.build.spec.BuildSpec` in their metadata
(:attr:`SpannerSnapshot.build_spec`), which survives the JSON round trip —
so a snapshot knows exactly how it was constructed and can
:meth:`~SpannerSnapshot.rebuild` itself (against its stored original graph
or a new one) through the algorithm registry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.faults.models import get_fault_model
from repro.graph.core import Graph, GraphError
from repro.graph.csr import CSRGraph, csr_snapshot
from repro.graph.io import graph_from_json, graph_to_json, load_graph_auto
from repro.spanners.base import SpannerResult

PathLike = Union[str, Path]

#: The ``format`` field of the snapshot JSON document.
SNAPSHOT_FORMAT = "repro-spanner-snapshot"


@dataclass
class SpannerSnapshot:
    """A prebuilt spanner plus everything a query engine needs to serve it.

    Treat instances as immutable: the engine keys its result cache on
    :attr:`Graph.version` of :attr:`spanner`, so mutating the graph behind a
    live engine invalidates cached answers (safely — the cache notices), but
    defeats the point of a snapshot.
    """

    spanner: Graph
    stretch: float
    max_faults: int = 0
    fault_model: str = "vertex"
    algorithm: str = ""
    original: Optional[Graph] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Fail fast on unknown fault models rather than at first query.
        get_fault_model(self.fault_model)

    # --------------------------------------------------------------- building
    @classmethod
    def from_result(cls, result: SpannerResult, *,
                    keep_original: bool = True,
                    spec: Optional[Any] = None) -> "SpannerSnapshot":
        """Wrap a :class:`~repro.spanners.base.SpannerResult` for serving.

        Pass the originating :class:`~repro.build.spec.BuildSpec` as
        ``spec`` to record it in the snapshot metadata; the spec then
        survives save/load and powers :meth:`rebuild`.
        """
        fault_model = result.fault_model if result.fault_model != "none" else "vertex"
        metadata: Dict[str, Any] = {
            "construction_seconds": result.construction_seconds,
            "edges_considered": result.edges_considered,
            **result.parameters,
        }
        if spec is not None:
            metadata["build_spec"] = spec.to_json()
        return cls(
            spanner=result.spanner,
            stretch=result.stretch,
            max_faults=result.max_faults,
            fault_model=fault_model,
            algorithm=result.algorithm,
            original=result.original if keep_original else None,
            metadata=metadata,
        )

    @classmethod
    def build(cls, graph: Graph, spec: Any, *,
              keep_original: bool = True) -> "SpannerSnapshot":
        """Construct a spanner through the algorithm registry and wrap it."""
        from repro.build import build as run_build

        return cls.from_result(run_build(graph, spec),
                               keep_original=keep_original, spec=spec)

    # ----------------------------------------------------------- build specs
    @property
    def build_spec(self):
        """The recorded :class:`~repro.build.spec.BuildSpec`, or ``None``.

        ``None`` for snapshots predating the unified construction API or
        assembled from bare graph files.
        """
        from repro.build.spec import BuildSpec

        document = self.metadata.get("build_spec")
        if document is None:
            return None
        return BuildSpec.from_json(document)

    def rebuild(self, graph: Optional[Graph] = None, *,
                keep_original: bool = True) -> "SpannerSnapshot":
        """Re-run the recorded build spec and return the fresh snapshot.

        Rebuilds against ``graph`` when given, else against the stored
        original graph.  Deterministic specs (everything but an unseeded
        ``sampling-union``) reproduce the spanner exactly — the round trip
        is covered by ``tests/test_build.py``.
        """
        spec = self.build_spec
        if spec is None:
            raise GraphError(
                "snapshot records no build spec; rebuild it explicitly via "
                "repro.build.build(graph, spec)")
        target = graph if graph is not None else self.original
        if target is None:
            raise GraphError(
                "snapshot kept no original graph; pass one to rebuild against")
        return type(self).build(target, spec, keep_original=keep_original)

    @classmethod
    def from_graph_files(cls, spanner_path: PathLike, *,
                         original_path: Optional[PathLike] = None,
                         stretch: float = 1.0, max_faults: int = 0,
                         fault_model: str = "vertex",
                         algorithm: str = "") -> "SpannerSnapshot":
        """Build a snapshot from plain graph files (``.json`` or edge list)."""
        return cls(
            spanner=load_graph_auto(spanner_path),
            stretch=stretch,
            max_faults=max_faults,
            fault_model=fault_model,
            algorithm=algorithm,
            original=(load_graph_auto(original_path)
                      if original_path is not None else None),
        )

    # ------------------------------------------------------------ properties
    @property
    def csr(self) -> CSRGraph:
        """Compiled CSR form of the spanner (cached on the graph)."""
        return csr_snapshot(self.spanner)

    @property
    def original_csr(self) -> Optional[CSRGraph]:
        """Compiled CSR form of the original graph, if it was kept."""
        if self.original is None:
            return None
        return csr_snapshot(self.original)

    def describe(self) -> Dict[str, Any]:
        """Flat summary of the snapshot (for CLI output and stats reports)."""
        return {
            "algorithm": self.algorithm or "unknown",
            "stretch": self.stretch,
            "max_faults": self.max_faults,
            "fault_model": self.fault_model,
            "nodes": self.spanner.number_of_nodes(),
            "edges": self.spanner.number_of_edges(),
            "has_original": self.original is not None,
            "original_edges": (self.original.number_of_edges()
                               if self.original is not None else None),
        }

    # ------------------------------------------------------------------- I/O
    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable document describing the snapshot."""
        document: Dict[str, Any] = {
            "format": SNAPSHOT_FORMAT,
            "version": 1,
            "stretch": self.stretch,
            "max_faults": self.max_faults,
            "fault_model": self.fault_model,
            "algorithm": self.algorithm,
            "metadata": self.metadata,
            "spanner": graph_to_json(self.spanner),
        }
        if self.original is not None:
            document["original"] = graph_to_json(self.original)
        return document

    @classmethod
    def from_json(cls, document: Dict[str, Any]) -> "SpannerSnapshot":
        """Rebuild a snapshot from :meth:`to_json` output."""
        if document.get("format") != SNAPSHOT_FORMAT:
            raise GraphError("not a repro-spanner-snapshot JSON document")
        original = document.get("original")
        return cls(
            spanner=graph_from_json(document["spanner"]),
            stretch=float(document["stretch"]),
            max_faults=int(document["max_faults"]),
            fault_model=document.get("fault_model", "vertex"),
            algorithm=document.get("algorithm", ""),
            original=graph_from_json(original) if original is not None else None,
            metadata=dict(document.get("metadata", {})),
        )

    def save(self, path: PathLike, *, indent: int = 2) -> None:
        """Write the snapshot as one JSON document."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=indent)
            handle.write("\n")

    @classmethod
    def load(cls, path: PathLike) -> "SpannerSnapshot":
        """Load a snapshot written by :meth:`save`."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    @staticmethod
    def is_snapshot_file(path: PathLike) -> bool:
        """Cheaply detect whether ``path`` holds a snapshot document.

        Used by the CLI to accept either a snapshot or a plain graph file in
        the same positional argument.  Only the leading bytes are inspected.
        """
        path = Path(path)
        if path.suffix != ".json":
            return False
        try:
            with path.open("r", encoding="utf-8") as handle:
                head = handle.read(256)
        except OSError:
            return False
        return SNAPSHOT_FORMAT in head

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpannerSnapshot {self.algorithm or 'unknown'} k={self.stretch} "
            f"f={self.max_faults} ({self.fault_model}) "
            f"n={self.spanner.number_of_nodes()} m={self.spanner.number_of_edges()}>"
        )
