"""Synthetic query-traffic generators for the serving layer.

Three traffic shapes, mirroring how real distance services are exercised:

* :func:`uniform_workload` — the unstructured baseline: every query draws a
  fresh source, target, and fault set.  Worst case for batching and caching
  (nothing repeats), useful as the pessimistic bound in benchmarks;
* :func:`zipf_workload` — Zipf-skewed sources over a shared pool of
  concurrent fault sets: a few popular sources dominate, exactly the shape
  batching exploits;
* :func:`fault_churn_sessions` — session traffic: each session pins one
  fault set (the currently failed elements) and issues many queries against
  it before the fault set *churns* to the next session's.  This is the
  paper's fault model as seen from a service: faults change slowly relative
  to query rate;
* :func:`update_churn` — the fault-churn shape with the *graph itself*
  churning too: each session opens with a burst of edge updates
  (:mod:`repro.dynamic.updates` ops against the simulated live edge set)
  before its pinned-fault queries.  This is the
  :class:`~repro.dynamic.live.LiveEngine` benchmark workload — updates are
  rare relative to queries, exactly the regime incremental maintenance
  targets.

Everything is deterministic from a seed via :func:`repro.utils.rng.ensure_rng`;
fault sets are drawn through the snapshot's fault model, so the same
generators cover VFT and EFT traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.faults.models import FaultModel, get_fault_model
from repro.graph.core import Graph, Node
from repro.utils.rng import RandomSource, ensure_rng


@dataclass(frozen=True)
class Query:
    """One distance query: ``dist_{H \\ F}(source, target)``.

    Batching groups queries by ``(source, canonical(faults))`` — see
    :func:`repro.engine.batch.plan_batches`.
    """

    source: Node
    target: Node
    faults: Tuple = ()


def _draw_fault_set(elements: List, max_faults: int,
                    rng: RandomSource) -> Tuple:
    """A random fault set of size uniform in ``[0, max_faults]``."""
    if max_faults <= 0 or not elements:
        return ()
    size = rng.randint(0, min(max_faults, len(elements)))
    if size == 0:
        return ()
    return tuple(rng.sample(elements, size))


def _traffic_population(graph: Graph, model: FaultModel) -> Tuple[List[Node], List]:
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("workloads need a graph with at least two nodes")
    return nodes, model.all_elements(graph)


def uniform_workload(graph: Graph, num_queries: int, *, max_faults: int = 0,
                     fault_model: "str | FaultModel" = "vertex",
                     rng=None) -> List[Query]:
    """Fully uniform traffic: fresh source/target/fault set per query."""
    rng = ensure_rng(rng)
    model = get_fault_model(fault_model)
    nodes, elements = _traffic_population(graph, model)
    queries = []
    for _ in range(num_queries):
        source, target = rng.sample(nodes, 2)
        queries.append(Query(source, target,
                             _draw_fault_set(elements, max_faults, rng)))
    return queries


def zipf_workload(graph: Graph, num_queries: int, *, skew: float = 1.1,
                  max_faults: int = 0, fault_pool: int = 8,
                  fault_model: "str | FaultModel" = "vertex",
                  rng=None) -> List[Query]:
    """Zipf-skewed sources over a small pool of concurrent fault sets.

    Source popularity follows ``1 / rank^skew`` over a random permutation of
    the nodes (so which nodes are popular is seed-dependent, not
    label-dependent); targets stay uniform.  ``fault_pool`` pre-drawn fault
    sets model the bounded number of concurrently failed configurations a
    service sees — queries pick among them, which is what makes
    ``(source, faults)`` groups repeat.
    """
    if skew < 0:
        raise ValueError("skew must be non-negative")
    rng = ensure_rng(rng)
    model = get_fault_model(fault_model)
    nodes, elements = _traffic_population(graph, model)
    ranked = list(nodes)
    rng.shuffle(ranked)
    cumulative = list(itertools.accumulate(
        1.0 / (rank + 1) ** skew for rank in range(len(ranked))))
    pool = [_draw_fault_set(elements, max_faults, rng)
            for _ in range(max(1, fault_pool))]
    queries = []
    for _ in range(num_queries):
        source = rng.weighted_choice(ranked, cum_weights=cumulative)
        target = rng.choice(nodes)
        while target == source:
            target = rng.choice(nodes)
        queries.append(Query(source, target, rng.choice(pool)))
    return queries


def fault_churn_sessions(graph: Graph, num_sessions: int,
                         queries_per_session: int, *, max_faults: int = 1,
                         fault_model: "str | FaultModel" = "vertex",
                         rng=None) -> List[Query]:
    """Session traffic: one fault set per session, churned between sessions.

    Returns the sessions concatenated in order (the flat stream a service
    would see).  Within a session every query shares the session's fault
    set, so batches drawn from one session collapse into per-source groups.
    """
    rng = ensure_rng(rng)
    model = get_fault_model(fault_model)
    nodes, elements = _traffic_population(graph, model)
    queries = []
    for _ in range(num_sessions):
        faults = _draw_fault_set(elements, max_faults, rng)
        for _ in range(queries_per_session):
            source, target = rng.sample(nodes, 2)
            queries.append(Query(source, target, faults))
    return queries


def update_churn(graph: Graph, num_sessions: int, queries_per_session: int, *,
                 updates_per_session: int = 4, max_faults: int = 1,
                 fault_model: "str | FaultModel" = "vertex",
                 update_mix: Tuple[float, float, float] = (0.4, 0.3, 0.3),
                 weight_range: Tuple[float, float] = (0.5, 2.0),
                 rng=None) -> List:
    """Mixed query/update traffic: fault-churn sessions over a churning graph.

    Extends :func:`fault_churn_sessions`: each session opens with
    ``updates_per_session`` edge updates — :class:`~repro.dynamic.updates.EdgeInsert`
    / ``EdgeDelete`` / ``WeightChange`` ops drawn against the *simulated live
    edge set* (inserts pick current non-edges, deletes and reweights current
    edges, so the stream applies cleanly in order) — then pins one fault set
    and issues ``queries_per_session`` queries against it.  Under the edge
    fault model the pinned fault sets are drawn from the session's current
    edge set, so they stay live faults rather than references to deleted
    edges.

    Returns the flat event stream a live service would see: a list whose
    items are either :class:`Query` or an update op, in arrival order.
    Consumers batch the query runs between updates (that is exactly what
    :meth:`~repro.dynamic.live.LiveEngine.apply` + ``distances_batch``
    exploit; ``benchmarks/bench_dynamic.py`` is the reference consumer).
    """
    from repro.dynamic.updates import ChurnState, _validate_churn_params

    if updates_per_session < 0:
        raise ValueError("updates_per_session must be non-negative")
    low, high = _validate_churn_params(update_mix, weight_range)
    rng = ensure_rng(rng)
    model = get_fault_model(fault_model)
    nodes, _ = _traffic_population(graph, model)
    # The simulated live edge set evolves through the same seeded draw the
    # journal generator uses, so both stay valid-in-order by construction.
    state = ChurnState(graph)
    events: List = []
    for _ in range(num_sessions):
        for _ in range(updates_per_session):
            update = state.draw(rng, update_mix, low, high)
            if update is None:
                break
            events.append(update)
        elements = nodes if model.uses_vertex_mask else state.live_edges
        faults = _draw_fault_set(list(elements), max_faults, rng)
        for _ in range(queries_per_session):
            source, target = rng.sample(nodes, 2)
            events.append(Query(source, target, faults))
    return events


def split_batches(queries: List[Query], batch_size: int) -> Iterable[List[Query]]:
    """Chop a query stream into service-sized batches (the last may be short)."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    for start in range(0, len(queries), batch_size):
        yield queries[start:start + batch_size]
