"""Experiment harness: one driver per claim of the paper.

The paper is a theory paper without an empirical section, so the reproduction
defines the evaluation (see DESIGN.md §4): each experiment Ei validates one
theorem, lemma, or comparison claim on synthetic workloads and produces a
result table in the exact shape EXPERIMENTS.md records.

Every experiment module exposes

* a ``Config`` dataclass with ``quick()`` and ``full()`` presets, and
* a ``run(config=None, *, rng=0) -> Table`` function,

and registers itself in :data:`repro.experiments.registry.EXPERIMENTS` so the
CLI (``python -m repro experiment E3``) and the benchmark files can drive them
uniformly.
"""

from repro.experiments.registry import EXPERIMENTS, ExperimentSpec, get_experiment, run_experiment
from repro.experiments import workloads

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "run_experiment",
    "workloads",
]
