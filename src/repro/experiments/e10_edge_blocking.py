"""E10 — the EFT limitation: small edge blocking sets on the lower-bound graph.

The closing remark of Section 2 shows why the paper's technique cannot, by
itself, improve the EFT upper bound for ``k ≥ 5``: the dense lower-bound
instance (blow-up of a high-girth graph) admits an *edge* ``(k+1)``-blocking
set of size at most ``f · |E|`` — so "has a small edge blocking set" does not
distinguish graphs that must be dense from graphs that could be sparsified.

The experiment constructs the instance, builds the closing-remark edge
blocking set explicitly (pairs of blow-up edges that share an endpoint and
project to the same base edge), verifies the blocking property against
exhaustive short-cycle enumeration, and reports its size against ``f · |E|``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bounds.lower_bound import bdpw_lower_bound_instance, edge_blocking_set_for_blowup
from repro.spanners.blocking import is_edge_blocking_set
from repro.utils.rng import ensure_rng
from repro.utils.tables import Table


@dataclass
class Config:
    """Parameters of the E10 study."""

    #: (max_faults, stretch, base_nodes) triples.
    cases: List[Tuple[int, float, int]] = field(
        default_factory=lambda: [(2, 3.0, 10), (3, 3.0, 10), (4, 3.0, 10)]
    )
    #: Verify the blocking property only when the instance has at most this many edges.
    verify_edge_limit: int = 700

    @classmethod
    def quick(cls) -> "Config":
        return cls()

    @classmethod
    def full(cls) -> "Config":
        return cls(
            cases=[(2, 3.0, 14), (3, 3.0, 14), (4, 3.0, 14), (5, 3.0, 14),
                   (2, 5.0, 14), (3, 5.0, 14)],
            verify_edge_limit=1500,
        )


def run(config: Optional[Config] = None, *, rng=0) -> Table:
    """Run E10 and return the result table."""
    config = config or Config.quick()
    source = ensure_rng(rng)
    table = Table(
        columns=["f", "stretch", "copies", "nodes", "edges", "blocking_pairs",
                 "bound_f_times_m", "within_bound", "verified"],
        title="E10: edge blocking sets on the BDPW blow-up",
    )
    for f, stretch, base_nodes in config.cases:
        instance = bdpw_lower_bound_instance(
            f, stretch, base_nodes=base_nodes, rng=source.spawn("base", f, stretch)
        )
        blocking = edge_blocking_set_for_blowup(instance)
        bound = f * instance.edges
        verified = "skipped"
        if instance.edges <= config.verify_edge_limit:
            verified = "ok" if is_edge_blocking_set(instance.graph, blocking) else "FAILED"
        table.add_row({
            "f": f,
            "stretch": stretch,
            "copies": instance.copies,
            "nodes": instance.nodes,
            "edges": instance.edges,
            "blocking_pairs": blocking.size,
            "bound_f_times_m": bound,
            "within_bound": blocking.size <= bound,
            "verified": verified,
        })
    return table
