"""E1 — spanner size as a function of ``n`` (Corollary 2, growth in ``n``).

For stretch ``2k − 1`` and fault budget ``f``, Corollary 2 predicts
``|E(H)| = O(n^{1+1/k} · f^{1−1/k})``.  This experiment builds FT greedy
spanners of ``G(n, m)`` graphs with a fixed average degree for growing ``n``
and reports, per row, the measured size, the Corollary 2 value, their ratio
(which should stay bounded as ``n`` grows), and — as a summary of the series —
the fitted log–log slope of size vs. ``n``, which should be close to
``1 + 1/k`` and in particular well below 2 (the trivial bound's slope).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bounds.theoretical import corollary2_bound
from repro.experiments.workloads import gnm_scaling_series
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.utils.rng import ensure_rng
from repro.utils.tables import Table


@dataclass
class Config:
    """Parameters of the E1 sweep."""

    sizes: List[int] = field(default_factory=lambda: [40, 60, 80, 100])
    average_degree: int = 30
    stretch: float = 3.0
    fault_budgets: List[int] = field(default_factory=lambda: [1, 2])
    fault_model: str = "vertex"
    trials: int = 1

    @classmethod
    def quick(cls) -> "Config":
        """Seconds-scale preset used by the benchmarks."""
        return cls()

    @classmethod
    def full(cls) -> "Config":
        """The preset used to regenerate EXPERIMENTS.md."""
        return cls(sizes=[40, 60, 80, 100, 140, 180, 220], trials=3)


def fitted_slope(points: List[Tuple[float, float]]) -> float:
    """Least-squares slope of ``log(y)`` against ``log(x)``."""
    if len(points) < 2:
        return float("nan")
    xs = [math.log(x) for x, _ in points]
    ys = [math.log(y) for _, y in points if y > 0]
    if len(ys) != len(xs):
        return float("nan")
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den if den else float("nan")


def run(config: Optional[Config] = None, *, rng=0) -> Table:
    """Run E1 and return the result table."""
    config = config or Config.quick()
    source = ensure_rng(rng)
    k_half = (config.stretch + 1.0) / 2.0
    table = Table(
        columns=["f", "n", "m", "spanner_edges", "corollary2", "ratio",
                 "fitted_slope", "predicted_slope"],
        title=f"E1: size vs n (stretch={config.stretch}, model={config.fault_model})",
    )
    for f in config.fault_budgets:
        points: List[Tuple[float, float]] = []
        rows = []
        for trial in range(config.trials):
            series = gnm_scaling_series(
                config.sizes, config.average_degree,
                rng=source.spawn("series", f, trial),
            )
            for n, graph in series:
                result = ft_greedy_spanner(graph, config.stretch, f,
                                           fault_model=config.fault_model)
                bound = corollary2_bound(n, f, config.stretch)
                points.append((float(n), float(result.size)))
                rows.append({
                    "f": f,
                    "n": n,
                    "m": graph.number_of_edges(),
                    "spanner_edges": result.size,
                    "corollary2": bound,
                    "ratio": result.size / bound,
                })
        slope = fitted_slope(points)
        for row in rows:
            row["fitted_slope"] = slope
            row["predicted_slope"] = 1.0 + 1.0 / k_half
            table.add_row(row)
    return table.sort_by("f", "n")
