"""E2 — spanner size as a function of the fault budget ``f`` (Corollary 2).

For fixed ``n`` and stretch ``2k − 1``, Corollary 2 predicts growth
``f^{1−1/k}`` — strictly sublinear in ``f`` (for stretch 3 it is ``√f``).
This was the surprising part of the Bodwin–Dinitz–Parter–Williams line of
work: earlier constructions paid at least ``f`` (peeling) or ``f²``-ish
(sampling / CLPR) factors.  The experiment sweeps ``f`` on a fixed dense
instance and reports the measured size, the normalised size
``|E(H)| / f^{1−1/k}`` (which should flatten), and the ratio to the
``f = 1`` size (which should grow noticeably slower than ``f``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.workloads import get_workload
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.utils.rng import ensure_rng
from repro.utils.tables import Table


@dataclass
class Config:
    """Parameters of the E2 sweep."""

    workload: str = "gnm-medium-dense"
    stretches: List[float] = field(default_factory=lambda: [3.0, 5.0])
    fault_budgets: List[int] = field(default_factory=lambda: [0, 1, 2, 3])
    fault_model: str = "vertex"

    @classmethod
    def quick(cls) -> "Config":
        return cls(workload="gnm-small-dense", stretches=[3.0],
                   fault_budgets=[0, 1, 2, 3])

    @classmethod
    def full(cls) -> "Config":
        return cls(workload="gnm-medium-dense", stretches=[3.0, 5.0],
                   fault_budgets=[0, 1, 2, 3, 4, 5])


def run(config: Optional[Config] = None, *, rng=0) -> Table:
    """Run E2 and return the result table."""
    config = config or Config.quick()
    source = ensure_rng(rng)
    table = Table(
        columns=["stretch", "f", "n", "m", "spanner_edges",
                 "normalised_by_f_pow", "vs_f1", "f_exponent"],
        title=f"E2: size vs f on {config.workload} ({config.fault_model} faults)",
    )
    graph = get_workload(config.workload).instantiate(source.spawn("graph"))
    n, m = graph.number_of_nodes(), graph.number_of_edges()
    for stretch in config.stretches:
        k_half = (stretch + 1.0) / 2.0
        exponent = 1.0 - 1.0 / k_half
        size_at_one = None
        for f in config.fault_budgets:
            result = ft_greedy_spanner(graph, stretch, f,
                                       fault_model=config.fault_model)
            if f == 1:
                size_at_one = result.size
            normalised = result.size / (max(f, 1) ** exponent)
            table.add_row({
                "stretch": stretch,
                "f": f,
                "n": n,
                "m": m,
                "spanner_edges": result.size,
                "normalised_by_f_pow": normalised,
                "vs_f1": (result.size / size_at_one) if size_at_one else None,
                "f_exponent": exponent,
            })
    return table
