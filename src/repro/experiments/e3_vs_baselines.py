"""E3 — the FT greedy algorithm versus prior constructions.

The paper's headline claim is that the *trivial* algorithm (FT greedy) beats
every previously known construction.  This experiment builds, on the same
instances and with the same ``(k, f)``:

* the FT greedy spanner (this paper),
* the peeling union (the classic edge-fault construction, run here as a
  size baseline for both models),
* the sampling union (folklore randomized vertex-fault construction with the
  ``exp(f)`` sample count),
* the non-FT greedy spanner (the size floor — what fault tolerance costs),
* the trivial spanner (the size ceiling),

and reports edge counts, construction times, and a sampled fault-tolerance
check for each.  Expectation: FT greedy ≤ peeling < sampling ≤ trivial, with
the gap to peeling/sampling growing with ``f``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.build import ALGORITHMS, BuildSpec, build
from repro.experiments.workloads import build_workloads
from repro.spanners.verify import is_ft_spanner
from repro.utils.rng import ensure_rng
from repro.utils.tables import Table

#: Registry algorithms E3 compares, in reporting order (FT greedy first —
#: the other rows report their size relative to it).  ``greedy`` runs with
#: ``f = 0`` and is labelled accordingly: it is the size floor showing what
#: fault tolerance costs.
E3_ALGORITHMS = ("ft-greedy", "peeling-union", "sampling-union", "greedy",
                 "trivial")


@dataclass
class Config:
    """Parameters of the E3 comparison."""

    workloads: List[str] = field(default_factory=lambda: ["gnm-small-dense"])
    stretch: float = 3.0
    fault_budgets: List[int] = field(default_factory=lambda: [1, 2])
    fault_model: str = "vertex"
    verify_samples: int = 30
    max_sampling_baseline_samples: int = 150

    @classmethod
    def quick(cls) -> "Config":
        return cls()

    @classmethod
    def full(cls) -> "Config":
        return cls(
            workloads=["gnm-medium-dense", "geometric-dense", "caveman", "gnm-weighted"],
            fault_budgets=[1, 2, 3],
            verify_samples=100,
            max_sampling_baseline_samples=400,
        )


def run(config: Optional[Config] = None, *, rng=0) -> Table:
    """Run E3 and return the result table."""
    config = config or Config.quick()
    source = ensure_rng(rng)
    table = Table(
        columns=["workload", "f", "algorithm", "n", "m", "spanner_edges",
                 "vs_ft_greedy", "seconds", "ft_check"],
        title=f"E3: constructions compared (stretch={config.stretch}, "
              f"{config.fault_model} faults)",
    )
    for name, graph in build_workloads(config.workloads, rng=source.spawn("wl")):
        for f in config.fault_budgets:
            constructions = _build_all(graph, config, f, source.spawn("algos", name, f))
            ft_size = constructions[0][1].size
            for label, result in constructions:
                report = is_ft_spanner(
                    graph, result.spanner, config.stretch, f,
                    fault_model=config.fault_model, method="sampled",
                    samples=config.verify_samples,
                    rng=source.spawn("verify", name, f, label),
                )
                table.add_row({
                    "workload": name,
                    "f": f,
                    "algorithm": label,
                    "n": graph.number_of_nodes(),
                    "m": graph.number_of_edges(),
                    "spanner_edges": result.size,
                    "vs_ft_greedy": result.size / ft_size if ft_size else None,
                    "seconds": result.construction_seconds,
                    "ft_check": "ok" if report.ok else "VIOLATED",
                })
    return table


def _spec_for(name: str, config: Config, f: int, rng) -> BuildSpec:
    """The :class:`BuildSpec` E3 runs for one registered algorithm.

    Model-specific constructions fall back to their native fault model when
    the sweep's model is unsupported (exactly what the old hand-rolled
    dispatch did: ``peeling-union`` is always built as the EFT construction
    even when the comparison verifies under vertex faults).
    """
    caps = ALGORITHMS[name].capabilities
    fault_model = config.fault_model
    if not caps.fault_tolerant or fault_model not in caps.fault_models:
        fault_model = ALGORITHMS[name].default_fault_model
    params = {}
    if name == "sampling-union":
        params["max_samples"] = config.max_sampling_baseline_samples
    return BuildSpec(
        algorithm=name,
        stretch=config.stretch,
        max_faults=f if caps.fault_tolerant else 0,
        fault_model=fault_model,
        seed=rng.seed if caps.randomized else None,
        params=params,
    )


def _build_all(graph, config: Config, f: int, rng):
    """All competing constructions on one instance, FT greedy first.

    Iterates the algorithm registry (:data:`E3_ALGORITHMS`) through the
    unified :func:`repro.build.build` facade instead of importing the five
    construction functions individually.
    """
    results = []
    for name in E3_ALGORITHMS:
        label = "greedy (f=0)" if name == "greedy" else name
        results.append((label, build(graph, _spec_for(name, config, f, rng))))
    return results
