"""E4 — the lower-bound instances: Theorem 1 is tight in the VFT setting.

The Bodwin–Dinitz–Parter–Williams blow-up instance (high-girth base graph,
each vertex split into ``⌊f/2⌋ + 1`` copies, every base edge turned into a
biclique between copy groups) has ``Θ(f² · b(n/f, k+1))`` edges, *all* of
which are forced into any ``f``-VFT ``k``-spanner.  This experiment:

1. builds the instance for several ``(f, k)`` with cage / random high-girth
   bases;
2. checks (with the exact oracle, on a sample of edges) what fraction of
   edges is provably forced — expected 1.0;
3. runs the FT greedy algorithm on the instance and reports how many edges it
   keeps — expected all of them (the greedy never discards a forced edge);
4. reports the ratio of the instance size to the Theorem 1 formula, showing
   the upper and lower bounds meet up to constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bounds.lower_bound import bdpw_lower_bound_instance, forced_edge_fraction
from repro.bounds.theoretical import theorem1_bound
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.utils.rng import ensure_rng
from repro.utils.tables import Table


@dataclass
class Config:
    """Parameters of the E4 lower-bound study."""

    #: (max_faults, stretch, base_nodes) triples to instantiate.
    cases: List[Tuple[int, float, int]] = field(
        default_factory=lambda: [(2, 3.0, 10), (3, 3.0, 10), (4, 3.0, 10)]
    )
    #: How many edges to test for forcedness (None = all).
    forced_edge_sample: Optional[int] = 30
    #: Whether to also run the FT greedy algorithm on the instance.
    run_greedy: bool = True

    @classmethod
    def quick(cls) -> "Config":
        return cls()

    @classmethod
    def full(cls) -> "Config":
        return cls(
            cases=[(2, 3.0, 14), (3, 3.0, 14), (4, 3.0, 14),
                   (2, 5.0, 14), (3, 5.0, 14), (6, 3.0, 10)],
            forced_edge_sample=60,
        )


def run(config: Optional[Config] = None, *, rng=0) -> Table:
    """Run E4 and return the result table."""
    config = config or Config.quick()
    source = ensure_rng(rng)
    table = Table(
        columns=["f", "stretch", "base", "copies", "nodes", "edges",
                 "forced_fraction", "greedy_keeps", "theorem1",
                 "edges_over_theorem1"],
        title="E4: BDPW lower-bound instances vs Theorem 1",
    )
    for f, stretch, base_nodes in config.cases:
        instance = bdpw_lower_bound_instance(
            f, stretch, base_nodes=base_nodes, rng=source.spawn("base", f, stretch)
        )
        forced = forced_edge_fraction(
            instance,
            sample_edges=config.forced_edge_sample,
            rng=source.spawn("forced", f, stretch),
        )
        kept = None
        if config.run_greedy:
            greedy = ft_greedy_spanner(instance.graph, stretch, f, fault_model="vertex")
            kept = greedy.size
        bound = theorem1_bound(instance.nodes, f, stretch)
        table.add_row({
            "f": f,
            "stretch": stretch,
            "base": instance.base.name,
            "copies": instance.copies,
            "nodes": instance.nodes,
            "edges": instance.edges,
            "forced_fraction": forced,
            "greedy_keeps": kept,
            "theorem1": bound,
            "edges_over_theorem1": instance.edges / bound if bound else None,
        })
    return table
