"""E5 — Lemma 3: blocking sets extracted from FT greedy runs.

Lemma 3 states that any FT greedy output ``H`` (parameters ``k``, ``f``)
admits a ``(k + 1)``-blocking set of size at most ``f · |E(H)|`` — built from
the witness fault sets of the kept edges.  This experiment runs the FT greedy
algorithm over a grid of instances and ``f`` values, extracts the blocking
set, reports its size against the ``f · |E(H)|`` bound, and (on instances
small enough for exhaustive short-cycle enumeration) verifies Definition 3
with the independent cycle oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.workloads import build_workloads
from repro.spanners.blocking import extract_blocking_set, is_blocking_set
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.utils.rng import ensure_rng
from repro.utils.tables import Table


@dataclass
class Config:
    """Parameters of the E5 blocking-set study."""

    workloads: List[str] = field(default_factory=lambda: ["tiny-gnm", "gnm-small-dense"])
    stretch: float = 3.0
    fault_budgets: List[int] = field(default_factory=lambda: [1, 2])
    fault_model: str = "vertex"
    #: Verify Definition 3 exhaustively only on graphs with at most this many edges.
    verify_edge_limit: int = 400

    @classmethod
    def quick(cls) -> "Config":
        return cls()

    @classmethod
    def full(cls) -> "Config":
        return cls(
            workloads=["tiny-gnm", "tiny-weighted", "gnm-small-dense",
                       "gnm-medium-dense", "geometric-dense", "caveman"],
            fault_budgets=[1, 2, 3],
            verify_edge_limit=900,
        )


def run(config: Optional[Config] = None, *, rng=0) -> Table:
    """Run E5 and return the result table."""
    config = config or Config.quick()
    source = ensure_rng(rng)
    table = Table(
        columns=["workload", "f", "spanner_edges", "blocking_pairs",
                 "lemma3_bound", "within_bound", "pairs_per_edge", "verified"],
        title=f"E5: Lemma 3 blocking sets (stretch={config.stretch}, "
              f"{config.fault_model} faults)",
    )
    for name, graph in build_workloads(config.workloads, rng=source.spawn("wl")):
        for f in config.fault_budgets:
            result = ft_greedy_spanner(graph, config.stretch, f,
                                       fault_model=config.fault_model)
            blocking = extract_blocking_set(result)
            bound = f * result.size
            verified = "skipped"
            if result.size <= config.verify_edge_limit and config.fault_model == "vertex":
                verified = "ok" if is_blocking_set(result.spanner, blocking) else "FAILED"
            table.add_row({
                "workload": name,
                "f": f,
                "spanner_edges": result.size,
                "blocking_pairs": blocking.size,
                "lemma3_bound": bound,
                "within_bound": blocking.size <= bound,
                "pairs_per_edge": blocking.size / result.size if result.size else 0.0,
                "verified": verified,
            })
    return table
