"""E6 — Lemma 4: subsampling a blocked graph down to a high-girth subgraph.

Lemma 4 is the probabilistic heart of the size bound: a graph with a
``(k+1)``-blocking set of size ``≤ f·m`` contains a subgraph on ``⌈n/(2f)⌉``
nodes with girth ``> k + 1`` and ``Ω(m/f²)`` edges in expectation
(``m/(4f²) − |B|/(8f³)`` exactly).  The experiment replays the sampling on
FT greedy outputs, reporting per row the sampled node count, the surviving
edges of the best trial, the lemma's expectation bound, their ratio, and
whether the pruned subgraph's girth really exceeds ``k + 1``.

A second block of rows ablates the sampling constant (the ``1/(2f)`` vertex
fraction), showing how the surviving-edge count and the girth guarantee react
when the sample is made larger than the lemma prescribes (bigger samples keep
more edges but the expectation argument — and eventually the girth guarantee's
safety margin — degrades).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.workloads import build_workloads
from repro.spanners.blocking import extract_blocking_set, lemma4_subsample
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.utils.rng import ensure_rng
from repro.utils.tables import Table


@dataclass
class Config:
    """Parameters of the E6 subsampling study."""

    workloads: List[str] = field(default_factory=lambda: ["gnm-small-dense"])
    stretch: float = 3.0
    fault_budgets: List[int] = field(default_factory=lambda: [1, 2])
    trials: int = 5
    #: Multipliers on the lemma's ⌈n/(2f)⌉ sample size for the ablation rows.
    sample_multipliers: List[float] = field(default_factory=lambda: [1.0, 2.0])

    @classmethod
    def quick(cls) -> "Config":
        return cls()

    @classmethod
    def full(cls) -> "Config":
        return cls(
            workloads=["gnm-small-dense", "gnm-medium-dense", "geometric-dense"],
            fault_budgets=[1, 2, 3],
            trials=20,
            sample_multipliers=[0.5, 1.0, 2.0, 4.0],
        )


def run(config: Optional[Config] = None, *, rng=0) -> Table:
    """Run E6 and return the result table."""
    config = config or Config.quick()
    source = ensure_rng(rng)
    table = Table(
        columns=["workload", "f", "sample_multiplier", "spanner_edges",
                 "sampled_nodes", "surviving_edges", "expected_lb",
                 "edges_over_expectation", "girth_ok"],
        title=f"E6: Lemma 4 subsampling (stretch={config.stretch})",
    )
    for name, graph in build_workloads(config.workloads, rng=source.spawn("wl")):
        for f in config.fault_budgets:
            result = ft_greedy_spanner(graph, config.stretch, f, fault_model="vertex")
            blocking = extract_blocking_set(result)
            n = result.spanner.number_of_nodes()
            base_size = math.ceil(n / (2 * f))
            for multiplier in config.sample_multipliers:
                sample_size = min(n, max(1, round(base_size * multiplier)))
                outcome = lemma4_subsample(
                    result.spanner, blocking, f,
                    rng=source.spawn("sample", name, f, multiplier),
                    trials=config.trials,
                    sample_size=sample_size,
                )
                table.add_row({
                    "workload": name,
                    "f": f,
                    "sample_multiplier": multiplier,
                    "spanner_edges": result.size,
                    "sampled_nodes": outcome.sampled_nodes,
                    "surviving_edges": outcome.surviving_edges,
                    "expected_lb": outcome.expected_edges_lower_bound,
                    "edges_over_expectation": outcome.edges_per_expectation,
                    "girth_ok": outcome.girth_ok,
                })
    return table
