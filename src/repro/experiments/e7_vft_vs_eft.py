"""E7 — vertex faults versus edge faults.

Theorem 1 gives the *same* upper bound for both models, the proof being
"essentially identical"; the paper adds that for EFT and large stretch an even
better bound is conceivable (the open gap).  Empirically, faulting an edge
destroys strictly less than faulting one of its endpoints, so the EFT greedy
output is never larger than the VFT output on the same instance and ordering.
The experiment runs both models over a grid of instances and fault budgets and
reports the two sizes, their ratio, and the non-FT greedy size as the floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.workloads import build_workloads
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.utils.rng import ensure_rng
from repro.utils.tables import Table


@dataclass
class Config:
    """Parameters of the E7 comparison."""

    workloads: List[str] = field(default_factory=lambda: ["gnm-small-dense"])
    stretch: float = 3.0
    fault_budgets: List[int] = field(default_factory=lambda: [1, 2])

    @classmethod
    def quick(cls) -> "Config":
        return cls()

    @classmethod
    def full(cls) -> "Config":
        return cls(
            workloads=["gnm-small-dense", "gnm-medium-dense", "geometric-dense",
                       "caveman", "hypercube"],
            fault_budgets=[1, 2, 3, 4],
        )


def run(config: Optional[Config] = None, *, rng=0) -> Table:
    """Run E7 and return the result table."""
    config = config or Config.quick()
    source = ensure_rng(rng)
    table = Table(
        columns=["workload", "f", "m", "greedy_f0", "vft_edges", "eft_edges",
                 "eft_over_vft"],
        title=f"E7: VFT vs EFT greedy (stretch={config.stretch})",
    )
    for name, graph in build_workloads(config.workloads, rng=source.spawn("wl")):
        plain = greedy_spanner(graph, config.stretch)
        for f in config.fault_budgets:
            vft = ft_greedy_spanner(graph, config.stretch, f, fault_model="vertex")
            eft = ft_greedy_spanner(graph, config.stretch, f, fault_model="edge")
            table.add_row({
                "workload": name,
                "f": f,
                "m": graph.number_of_edges(),
                "greedy_f0": plain.size,
                "vft_edges": vft.size,
                "eft_edges": eft.size,
                "eft_over_vft": eft.size / vft.size if vft.size else None,
            })
    return table
