"""E8 — runtime of the fault-check oracles (the paper's open problem).

The paper notes the naive FT greedy implementation is exponential in ``f`` and
leaves a faster algorithm as an open question.  This experiment measures, on a
fixed instance and growing ``f``:

* the exhaustive oracle (only for the smallest ``f`` — its cost explodes),
* the exact branch-and-bound oracle (default — still exponential in ``f`` but
  with the short-path branching factor),
* the polynomial greedy path-packing heuristic,

reporting wall-clock construction time, the number of bounded-distance
queries, the resulting spanner size, and — because the heuristic is allowed to
be wrong — whether a sampled fault-tolerance check still passes.  This doubles
as the ablation of the oracle design choice called out in DESIGN.md §6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.workloads import get_workload
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.verify import is_ft_spanner
from repro.utils.rng import ensure_rng
from repro.utils.tables import Table


@dataclass
class Config:
    """Parameters of the E8 runtime study."""

    workload: str = "gnm-small-dense"
    stretch: float = 3.0
    fault_budgets: List[int] = field(default_factory=lambda: [1, 2, 3])
    #: Run the exhaustive oracle only for f values up to this limit.
    exhaustive_up_to: int = 1
    verify_samples: int = 20

    @classmethod
    def quick(cls) -> "Config":
        return cls()

    @classmethod
    def full(cls) -> "Config":
        return cls(workload="gnm-medium-dense",
                   fault_budgets=[1, 2, 3, 4],
                   exhaustive_up_to=1,
                   verify_samples=60)


def run(config: Optional[Config] = None, *, rng=0, workers: int = 1) -> Table:
    """Run E8 and return the result table.

    ``workers`` shards each trial's fault-tolerance check (the sampled
    ``is_ft_spanner`` sweep) across a process pool; the table is identical
    for any worker count.
    """
    config = config or Config.quick()
    source = ensure_rng(rng)
    graph = get_workload(config.workload).instantiate(source.spawn("graph"))
    table = Table(
        columns=["f", "oracle", "exact", "seconds", "distance_queries",
                 "spanner_edges", "ft_check"],
        title=f"E8: oracle runtime on {config.workload} (stretch={config.stretch})",
    )
    for f in config.fault_budgets:
        oracles = ["branch-and-bound", "greedy-path-packing"]
        if f <= config.exhaustive_up_to:
            oracles.insert(0, "exhaustive")
        for oracle_name in oracles:
            result = ft_greedy_spanner(graph, config.stretch, f,
                                       fault_model="vertex", oracle=oracle_name)
            report = is_ft_spanner(
                graph, result.spanner, config.stretch, f, fault_model="vertex",
                method="sampled", samples=config.verify_samples,
                rng=source.spawn("verify", f, oracle_name),
                workers=workers,
            )
            table.add_row({
                "f": f,
                "oracle": oracle_name,
                "exact": result.parameters.get("oracle_exact", True),
                "seconds": result.construction_seconds,
                "distance_queries": result.distance_queries,
                "spanner_edges": result.size,
                "ft_check": "ok" if report.ok else "VIOLATED",
            })
    return table
