"""E9 — correctness under faults: Definition 2 holds for the FT greedy output.

The experiment verifies, for each instance and fault budget:

* the FT greedy spanner survives *every* fault set of size ``≤ f``
  (exhaustively on small instances, by sampling plus adversarial search on
  larger ones) with stretch at most ``k``;
* the non-FT greedy spanner of the same instance, by contrast, is broken by
  some fault set (its worst-case stretch exceeds ``k``, often becoming
  infinite because a cut vertex of the sparse spanner is faulted) — the
  concrete demonstration of *why* fault tolerance costs extra edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.workloads import build_workloads
from repro.faults.adversarial import worst_case_fault_set
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.spanners.verify import is_ft_spanner
from repro.utils.rng import ensure_rng
from repro.utils.tables import Table


@dataclass
class Config:
    """Parameters of the E9 verification study."""

    workloads: List[str] = field(default_factory=lambda: ["tiny-gnm"])
    stretch: float = 3.0
    fault_budgets: List[int] = field(default_factory=lambda: [1, 2])
    #: Use exhaustive verification when the number of fault sets is below this.
    exhaustive_limit: int = 40_000
    sampled_checks: int = 60

    @classmethod
    def quick(cls) -> "Config":
        return cls()

    @classmethod
    def full(cls) -> "Config":
        return cls(
            workloads=["tiny-gnm", "tiny-weighted", "gnm-small-dense", "caveman"],
            fault_budgets=[1, 2],
            sampled_checks=200,
        )


def run(config: Optional[Config] = None, *, rng=0, workers: int = 1) -> Table:
    """Run E9 and return the result table.

    ``workers`` shards each trial's verification sweep (exhaustive or
    sampled) and the follow-up adversarial search across a process pool;
    verdicts, witnesses, and counters are identical for any worker count.
    """
    config = config or Config.quick()
    source = ensure_rng(rng)
    table = Table(
        columns=["workload", "f", "algorithm", "spanner_edges", "check_mode",
                 "fault_sets_checked", "worst_stretch", "within_stretch"],
        title=f"E9: fault-tolerance verification (stretch={config.stretch}, vertex faults)",
    )
    for name, graph in build_workloads(config.workloads, rng=source.spawn("wl")):
        for f in config.fault_budgets:
            ft = ft_greedy_spanner(graph, config.stretch, f, fault_model="vertex")
            plain = greedy_spanner(graph, config.stretch)
            for label, result in (("ft-greedy", ft), ("greedy (f=0)", plain)):
                report = is_ft_spanner(
                    graph, result.spanner, config.stretch, f,
                    fault_model="vertex", method="auto",
                    samples=config.sampled_checks,
                    exhaustive_limit=config.exhaustive_limit,
                    rng=source.spawn("verify", name, f, label),
                    workers=workers,
                )
                worst = report.worst_stretch
                if report.ok and not report.exhaustive:
                    # Push harder with an adversarial search so "ok" rows for
                    # the non-FT baseline are not sampling artefacts.
                    _, adversarial = worst_case_fault_set(
                        graph, result.spanner, "vertex", f,
                        method="sampled", samples=config.sampled_checks,
                        rng=source.spawn("adv", name, f, label),
                        workers=workers,
                    )
                    worst = max(worst, adversarial)
                table.add_row({
                    "workload": name,
                    "f": f,
                    "algorithm": label,
                    "spanner_edges": result.size,
                    "check_mode": "exhaustive" if report.exhaustive else "sampled",
                    "fault_sets_checked": report.fault_sets_checked,
                    "worst_stretch": worst,
                    "within_stretch": worst <= config.stretch * (1 + 1e-9),
                })
    return table
