"""Registry mapping experiment identifiers (E1..E10) to their drivers.

The registry is populated lazily (each experiment module registers on import)
to keep import costs low; :func:`get_experiment` imports the module on demand.

Spanner construction inside the drivers goes through the *algorithm*
registry of :mod:`repro.build` — either directly (E3 iterates it over all
competing constructions) or via the construction-function shims — so every
experiment builds exactly what ``build(graph, BuildSpec(...))`` would.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.utils.tables import Table


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata + entry point of one experiment."""

    ident: str
    title: str
    claim: str
    module: str

    def run(self, *, scale: str = "quick", rng=0, workers: int = 1,
            **kwargs) -> Table:
        """Import the experiment module and run it at the requested scale.

        ``workers`` fans the experiment's verification sweeps out through
        :mod:`repro.runtime` where the driver supports it (its ``run``
        accepts a ``workers`` keyword — e.g. E8 and E9, whose dominant cost
        is fault-set checking); drivers without the keyword run serially and
        the setting is ignored.  Results are identical either way.
        """
        mod = importlib.import_module(self.module)
        config = mod.Config.quick() if scale == "quick" else mod.Config.full()
        if "workers" in inspect.signature(mod.run).parameters:
            kwargs.setdefault("workers", workers)
        return mod.run(config, rng=rng, **kwargs)


#: All experiments, keyed by identifier.  Kept in sync with DESIGN.md §4.
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "E1": ExperimentSpec(
        "E1", "Spanner size vs n",
        "Corollary 2: |E(H)| = O(n^{1+1/k} f^{1-1/k}) — growth in n",
        "repro.experiments.e1_size_vs_n",
    ),
    "E2": ExperimentSpec(
        "E2", "Spanner size vs f",
        "Corollary 2: sublinear f^{1-1/k} growth in the fault budget",
        "repro.experiments.e2_size_vs_f",
    ),
    "E3": ExperimentSpec(
        "E3", "FT greedy vs baselines",
        "The FT greedy algorithm beats prior constructions (trivial, peeling "
        "union, sampling union) in size",
        "repro.experiments.e3_vs_baselines",
    ),
    "E4": ExperimentSpec(
        "E4", "Lower-bound instances",
        "Theorem 1 is tight in the VFT setting: the BDPW blow-up instances "
        "force Ω(f^2 b(n/f, k+1)) edges and the greedy keeps them",
        "repro.experiments.e4_lower_bound",
    ),
    "E5": ExperimentSpec(
        "E5", "Blocking sets (Lemma 3)",
        "Every FT greedy output has a (k+1)-blocking set of size ≤ f·|E(H)|",
        "repro.experiments.e5_blocking_sets",
    ),
    "E6": ExperimentSpec(
        "E6", "Subsampling (Lemma 4)",
        "Graphs with small blocking sets contain girth->k+1 subgraphs on "
        "O(n/f) nodes with Ω(m/f^2) edges",
        "repro.experiments.e6_subsampling",
    ),
    "E7": ExperimentSpec(
        "E7", "VFT vs EFT",
        "The same bound holds for both fault models; EFT outputs are never "
        "larger than VFT outputs on the same instance",
        "repro.experiments.e7_vft_vs_eft",
    ),
    "E8": ExperimentSpec(
        "E8", "Oracle runtime",
        "The naive check is exponential in f (the paper's open problem); the "
        "branch-and-bound oracle and the polynomial heuristic trade exactness "
        "for speed",
        "repro.experiments.e8_runtime",
    ),
    "E9": ExperimentSpec(
        "E9", "Fault-tolerance verification",
        "FT greedy outputs respect the stretch under every fault set; the "
        "non-FT greedy does not",
        "repro.experiments.e9_fault_verification",
    ),
    "E10": ExperimentSpec(
        "E10", "Edge blocking sets on the lower-bound graph",
        "The closing remark of §2: the blow-up instance admits an edge "
        "(k+1)-blocking set of size ≤ f·|E|, so edge blocking sets alone "
        "cannot improve the EFT bound",
        "repro.experiments.e10_edge_blocking",
    ),
}


def get_experiment(ident: str) -> ExperimentSpec:
    """Look up an experiment by identifier (case-insensitive)."""
    try:
        return EXPERIMENTS[ident.upper()]
    except KeyError:
        raise ValueError(
            f"unknown experiment {ident!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(ident: str, *, scale: str = "quick", rng=0,
                   workers: int = 1, **kwargs) -> Table:
    """Run an experiment by identifier and return its result table."""
    return get_experiment(ident).run(scale=scale, rng=rng, workers=workers,
                                     **kwargs)
