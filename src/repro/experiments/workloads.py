"""Workload registry: the synthetic graph families the experiments run on.

Every workload is a named, seeded recipe so experiment rows are reproducible
and EXPERIMENTS.md can reference workloads by name.  Two scales are provided:

* ``quick`` — seconds per experiment; used by the benchmark suite and CI;
* ``full``  — minutes per experiment; used when regenerating EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple

from repro.graph.core import Graph
from repro.graph import generators
from repro.utils.rng import RandomSource, ensure_rng


@dataclass(frozen=True)
class Workload:
    """A named graph recipe.

    ``build(rng)`` produces the graph; the recipe's parameters are also stored
    on ``graph.metadata`` by the generators themselves.
    """

    name: str
    description: str
    build: Callable[[RandomSource], Graph]

    def instantiate(self, rng=None) -> Graph:
        """Build the workload graph with a (seeded) random source."""
        graph = self.build(ensure_rng(rng))
        graph.metadata.setdefault("workload", self.name)
        return graph


def _dense_gnm(n: int, average_degree: int) -> Callable[[RandomSource], Graph]:
    m = min(n * average_degree // 2, n * (n - 1) // 2)
    return lambda rng: generators.gnm(n, m, rng=rng, connected=True)


def _weighted_gnm(n: int, average_degree: int) -> Callable[[RandomSource], Graph]:
    m = min(n * average_degree // 2, n * (n - 1) // 2)
    return lambda rng: generators.gnm(n, m, rng=rng, connected=True, weighted=True,
                                      weight_range=(1.0, 20.0))


def _geometric(n: int, radius: float) -> Callable[[RandomSource], Graph]:
    return lambda rng: generators.random_geometric(n, radius, rng=rng)


WORKLOADS: Dict[str, Workload] = {
    "gnm-small-dense": Workload(
        "gnm-small-dense",
        "Unweighted G(n,m): n=60, average degree 24 — dense enough to compress",
        _dense_gnm(60, 24),
    ),
    "gnm-medium-dense": Workload(
        "gnm-medium-dense",
        "Unweighted G(n,m): n=100, average degree 40",
        _dense_gnm(100, 40),
    ),
    "gnm-large-dense": Workload(
        "gnm-large-dense",
        "Unweighted G(n,m): n=160, average degree 50",
        _dense_gnm(160, 50),
    ),
    "gnm-weighted": Workload(
        "gnm-weighted",
        "Weighted G(n,m): n=80, average degree 30, uniform weights in [1, 20]",
        _weighted_gnm(80, 30),
    ),
    "geometric-city": Workload(
        "geometric-city",
        "Random geometric graph: n=120 points in the unit square, radius 0.22, "
        "Euclidean edge weights (road-network-like)",
        _geometric(120, 0.22),
    ),
    "geometric-dense": Workload(
        "geometric-dense",
        "Random geometric graph: n=90, radius 0.35 — dense local clustering",
        _geometric(90, 0.35),
    ),
    "caveman": Workload(
        "caveman",
        "Connected caveman graph: 8 cliques of 10 — small vertex cuts, the hard "
        "case for vertex fault tolerance",
        lambda rng: generators.connected_caveman(8, 10),
    ),
    "hypercube": Workload(
        "hypercube",
        "7-dimensional hypercube (128 nodes, 448 edges)",
        lambda rng: generators.hypercube(7),
    ),
    "grid": Workload(
        "grid",
        "12x12 grid with diagonals",
        lambda rng: generators.grid_2d(12, 12, diagonal=True),
    ),
    "tiny-gnm": Workload(
        "tiny-gnm",
        "Unweighted G(n,m): n=24, average degree 10 — small enough for exhaustive "
        "fault-set verification",
        _dense_gnm(24, 10),
    ),
    "tiny-weighted": Workload(
        "tiny-weighted",
        "Weighted G(n,m): n=20, average degree 8, uniform weights",
        _weighted_gnm(20, 8),
    ),
}


def get_workload(name: str) -> Workload:
    """Look up a workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def build_workloads(names: Iterable[str], *, rng=None) -> List[Tuple[str, Graph]]:
    """Instantiate several workloads with independent derived random streams."""
    source = ensure_rng(rng)
    graphs = []
    for name in names:
        workload = get_workload(name)
        graphs.append((name, workload.instantiate(source.spawn("workload", name))))
    return graphs


def gnm_scaling_series(sizes: Iterable[int], average_degree: int, *,
                       weighted: bool = False, rng=None) -> List[Tuple[int, Graph]]:
    """A series of ``G(n, m)`` graphs of growing ``n`` at fixed average degree.

    Used by the scaling experiments (E1/E2); each size gets an independent
    derived random stream so adding sizes does not perturb existing rows.
    """
    source = ensure_rng(rng)
    series = []
    for n in sizes:
        m = min(n * average_degree // 2, n * (n - 1) // 2)
        graph = generators.gnm(
            n, m, rng=source.spawn("scaling", n), connected=True,
            weighted=weighted, weight_range=(1.0, 20.0),
        )
        series.append((n, graph))
    return series
