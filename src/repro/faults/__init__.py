"""Fault models: which elements can fail, and how to enumerate/sample failures.

The paper considers two models (Definition 2):

* **vertex faults (VFT)** — up to ``f`` vertices are removed; and
* **edge faults (EFT)** — up to ``f`` edges are removed.

:class:`FaultModel` abstracts the difference so the greedy algorithm, the
verification code, and the experiments are written once and parametrised by
the model.
"""

from repro.faults.models import (
    FaultModel,
    VertexFaultModel,
    EdgeFaultModel,
    VERTEX_FAULTS,
    EDGE_FAULTS,
    get_fault_model,
)
from repro.faults.enumeration import (
    enumerate_fault_sets,
    count_fault_sets,
    sample_fault_sets,
)
from repro.faults.adversarial import worst_case_fault_set, stretch_under_faults

__all__ = [
    "FaultModel",
    "VertexFaultModel",
    "EdgeFaultModel",
    "VERTEX_FAULTS",
    "EDGE_FAULTS",
    "get_fault_model",
    "enumerate_fault_sets",
    "count_fault_sets",
    "sample_fault_sets",
    "worst_case_fault_set",
    "stretch_under_faults",
]
