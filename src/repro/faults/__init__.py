"""Fault models: which elements can fail, and how to enumerate/sample failures.

The paper considers two models (Definition 2):

* **vertex faults (VFT)** — up to ``f`` vertices are removed; and
* **edge faults (EFT)** — up to ``f`` edges are removed.

:class:`FaultModel` abstracts the difference so the greedy algorithm, the
verification code, and the experiments are written once and parametrised by
the model.
"""

from repro.faults.models import (
    FaultModel,
    VertexFaultModel,
    EdgeFaultModel,
    VERTEX_FAULTS,
    EDGE_FAULTS,
    get_fault_model,
)
from repro.faults.enumeration import (
    enumerate_fault_sets,
    count_fault_sets,
    sample_fault_sets,
)

# The adversarial-search module pulls in the kernel registry (and numpy);
# resolve it lazily so fault-model consumers — notably the serving
# transport, which must import without the engine loaded — stay light.
_ADVERSARIAL_EXPORTS = ("worst_case_fault_set", "stretch_under_faults")


def __getattr__(name):
    if name in _ADVERSARIAL_EXPORTS:
        from repro.faults import adversarial

        return getattr(adversarial, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FaultModel",
    "VertexFaultModel",
    "EdgeFaultModel",
    "VERTEX_FAULTS",
    "EDGE_FAULTS",
    "get_fault_model",
    "enumerate_fault_sets",
    "count_fault_sets",
    "sample_fault_sets",
    "worst_case_fault_set",
    "stretch_under_faults",
]
