"""Adversarial fault search: which fault set hurts a spanner the most?

Given an original graph ``G``, a candidate spanner ``H``, and a fault budget
``f``, these routines find (exhaustively for small instances, greedily for
large ones) the fault set maximising the worst pairwise stretch of
``H \\ F`` relative to ``G \\ F``.  Experiment E9 uses them to show that the
FT-greedy output really keeps its stretch under the worst faults while
non-fault-tolerant baselines do not.

The search is embarrassingly parallel over candidate fault sets, so
:func:`worst_case_fault_set` and :func:`random_fault_trial` accept
``workers`` / ``backend`` and shard their candidate list through
:mod:`repro.runtime`.  Results are bit-identical to the serial scan: chunks
are contiguous slices of the candidate order, merged with the serial
strict-``>`` update rule, and a chunk that hits the stop condition (infinite
stretch, or the ``stop_stretch`` refutation threshold) cancels every chunk
after it — never one before it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.faults.enumeration import enumerate_fault_sets, sample_fault_sets
from repro.faults.models import FaultModel, FaultSet, get_fault_model
from repro.graph.core import Graph, Node
from repro.graph.csr import CSRGraph, csr_snapshot
from repro.paths.dijkstra import dijkstra_distances
from repro.paths.registry import KernelLike, get_kernels
from repro.runtime.backend import BackendLike, get_backend
from repro.runtime.merge import ChunkArgmax, merge_argmax
from repro.runtime.shard import chunk_size_for, iter_chunks
from repro.utils.rng import ensure_rng


def stretch_under_faults(original: Graph, spanner: Graph,
                         fault_model: "str | FaultModel",
                         faults: Iterable,
                         *, pairs: Optional[List[Tuple[Node, Node]]] = None,
                         kernel: KernelLike = None) -> float:
    """Worst multiplicative stretch of ``spanner \\ F`` w.r.t. ``original \\ F``.

    The stretch of a pair that is disconnected in ``original \\ F`` is ignored
    (Definition 2 only constrains pairs with a finite distance in the faulted
    original); a pair connected in ``original \\ F`` but disconnected in
    ``spanner \\ F`` yields ``inf``.

    Parameters
    ----------
    pairs:
        Restrict attention to these pairs; default is all pairs.
    """
    model = get_fault_model(fault_model)
    fault_list = list(faults)
    if isinstance(original, Graph) and isinstance(spanner, Graph):
        return stretch_between_csr(csr_snapshot(original), csr_snapshot(spanner),
                                   model, fault_list, pairs, kernel=kernel)
    faulted_original = model.apply(original, fault_list)
    faulted_spanner = model.apply(spanner, fault_list)

    worst = 1.0
    sources = (
        sorted({pair[0] for pair in pairs}, key=repr) if pairs is not None
        else list(faulted_original.nodes())
    )
    restrict: Optional[Dict[Node, set]] = None
    if pairs is not None:
        restrict = {}
        for u, v in pairs:
            restrict.setdefault(u, set()).add(v)

    for source in sources:
        if not faulted_original.has_node(source):
            continue
        base = dijkstra_distances(faulted_original, source)
        in_spanner = dijkstra_distances(faulted_spanner, source) \
            if faulted_spanner.has_node(source) else {}
        for target, base_distance in base.items():
            if target == source or base_distance == 0:
                continue
            if restrict is not None and target not in restrict.get(source, ()):
                continue
            spanner_distance = in_spanner.get(target, math.inf)
            ratio = spanner_distance / base_distance
            if ratio > worst:
                worst = ratio
    return worst


def _h_index_map(csr_g: CSRGraph, csr_h: CSRGraph):
    """Vectorized ``csr_g`` node index -> ``csr_h`` node index translation.

    Returns ``(indices, known)`` ndarrays over ``csr_g``'s index space;
    ``known[i]`` is false when node ``i`` is absent from ``csr_h`` (the
    translated index is then a harmless 0).  Memoised on ``csr_g`` (with a
    strong reference to ``csr_h``, so object identity cannot be recycled)
    and rebuilt when either side gained nodes.
    """
    import numpy as np

    cached = csr_g._nd_views.get("hmap")
    if (cached is not None and cached[0] is csr_h
            and len(cached[2]) == csr_g.num_nodes
            and cached[1] == csr_h.num_nodes):
        return cached[2], cached[3]
    h_index = csr_h.index_of
    indices = np.zeros(csr_g.num_nodes, dtype=np.int64)
    known = np.zeros(csr_g.num_nodes, dtype=bool)
    for i, node in enumerate(csr_g.node_of):
        j = h_index.get(node)
        if j is not None:
            indices[i] = j
            known[i] = True
    csr_g._nd_views["hmap"] = (csr_h, csr_h.num_nodes, indices, known)
    return indices, known


def stretch_between_csr(csr_g: CSRGraph, csr_h: CSRGraph, model: FaultModel,
                        fault_list: List,
                        pairs: Optional[List[Tuple[Node, Node]]] = None,
                        *, sources: Optional[List[Node]] = None,
                        restrict: Optional[Dict[Node, frozenset]] = None,
                        kernel: KernelLike = None) -> float:
    """Mask-based stretch of ``csr_h \\ F`` w.r.t. ``csr_g \\ F``.

    Pure-CSR twin of :func:`stretch_under_faults`: applies the fault set as
    kernel masks over the two snapshots instead of building two
    :class:`ExclusionView` wrappers, and compares distance arrays directly —
    no per-source dict materialisation.  Operating on snapshots alone is what
    lets worker processes evaluate fault sets against a context shipped once
    (:mod:`repro.runtime.backend`) and still produce the exact serial floats:
    ``csr_g.node_of`` preserves the graph's node insertion order, so the
    source sweep is identical.

    ``sources`` / ``restrict`` override the default all-pairs sweep without
    going through ``pairs`` — this is how sharded source sweeps hand one
    chunk of sources (and a prebuilt source → allowed-targets map) to each
    worker.
    """
    vertex = model.uses_vertex_mask
    mask_g = model.new_mask(csr_g)
    for index in model.mask_indices(csr_g, fault_list):
        mask_g[index] = 1
    mask_h = model.new_mask(csr_h)
    for index in model.mask_indices(csr_h, fault_list):
        mask_h[index] = 1
    vm_g, em_g = model.kernel_masks(mask_g)
    vm_h, em_h = model.kernel_masks(mask_h)

    node_of_g = csr_g.node_of
    g_index = csr_g.index_of
    h_index = csr_h.index_of

    if pairs is not None:
        restrict = {}
        for u, v in pairs:
            restrict.setdefault(u, set()).add(v)
        sources = sorted({pair[0] for pair in pairs}, key=repr)
    elif sources is None:
        sources = node_of_g

    kernels = get_kernels(kernel)
    kernels_g = kernels.resolve(csr_g)
    kernels_h = kernels.resolve(csr_h)

    if (restrict is None and kernels_g.sssp_arrays is not None
            and kernels_h.sssp_arrays is not None):
        # No target restriction: the per-source target scan collapses into
        # one vectorised ratio computation.  The floats are the serial ones
        # (same per-pair division, and a maximum is order-independent), so
        # this path is bit-identical to the loop below.
        import numpy as np

        h_of_g, known = _h_index_map(csr_g, csr_h)
        worst = 1.0
        for source in sources:
            si = g_index.get(source)
            if si is None or (vertex and mask_g[si]):
                continue
            base = kernels_g.sssp_arrays(csr_g, si, vm_g, em_g)
            valid = np.isfinite(base) & (base > 0.0)
            if not valid.any():
                continue
            hs = h_index.get(source)
            if hs is None or (vertex and mask_h[hs]):
                return math.inf
            sub_h = kernels_h.sssp_arrays(csr_h, hs, vm_h, em_h)
            sub = np.where(known, sub_h[h_of_g], np.inf)
            ratio = float((sub[valid] / base[valid]).max())
            if ratio > worst:
                worst = ratio
            if worst == math.inf:
                return worst
        return worst

    sssp_g = kernels_g.sssp_dijkstra_csr
    sssp_h = kernels_h.sssp_dijkstra_csr
    worst = 1.0
    for source in sources:
        si = g_index.get(source)
        if si is None or (vertex and mask_g[si]):
            continue
        base_dist, base_order = sssp_g(csr_g, si, None, vm_g, em_g)
        hs = h_index.get(source)
        if hs is None or (vertex and mask_h[hs]):
            sub_dist = None
        else:
            sub_dist = sssp_h(csr_h, hs, None, vm_h, em_h)[0]
        allowed = restrict.get(source, ()) if restrict is not None else None
        for index in base_order:
            target = node_of_g[index]
            base_distance = base_dist[index]
            if target == source or base_distance == 0:
                continue
            if allowed is not None and target not in allowed:
                continue
            if sub_dist is None:
                ratio = math.inf
            else:
                j = h_index.get(target)
                ratio = (sub_dist[j] if j is not None else math.inf) / base_distance
            if ratio > worst:
                worst = ratio
    return worst


@dataclass(frozen=True)
class _SearchContext:
    """Picklable payload shipped once per worker for the adversarial search."""

    csr_g: CSRGraph
    csr_h: CSRGraph
    fault_model: str
    #: Stop scanning once a fault set's stretch strictly exceeds this (the
    #: "first refutation" early-cancel); ``inf`` always stops the scan.
    stop_stretch: Optional[float]
    kernel: Optional[str] = None


def _search_chunk(ctx: _SearchContext, chunk: List) -> ChunkArgmax:
    """Scan one chunk of candidate fault sets for the running maximum.

    Mirrors the serial loop exactly: strict-``>`` updates, stop at the first
    infinite stretch or at the first stretch beyond ``ctx.stop_stretch``.
    """
    model = get_fault_model(ctx.fault_model)
    stop = ctx.stop_stretch
    best: Optional[FaultSet] = None
    best_value = 0.0
    checked = 0
    for faults in chunk:
        checked += 1
        value = stretch_between_csr(ctx.csr_g, ctx.csr_h, model, list(faults),
                                    kernel=ctx.kernel)
        if value > best_value:
            best_value = value
            best = model.canonical(faults)
        if value == math.inf or (stop is not None and value > stop):
            return ChunkArgmax(checked=checked, best=best,
                               best_value=best_value, stopped=True)
    return ChunkArgmax(checked=checked, best=best, best_value=best_value)


def worst_case_fault_set(original: Graph, spanner: Graph,
                         fault_model: "str | FaultModel", max_faults: int,
                         *, method: str = "auto",
                         samples: int = 200, rng=None,
                         exhaustive_limit: int = 200_000,
                         stop_stretch: Optional[float] = None,
                         workers: int = 1,
                         backend: BackendLike = None,
                         kernel: KernelLike = None
                         ) -> Tuple[FaultSet, float]:
    """Find a fault set (approximately) maximising the stretch of the spanner.

    Parameters
    ----------
    method:
        ``"exhaustive"`` tries every fault set of size ``<= max_faults``;
        ``"sampled"`` evaluates ``samples`` random fault sets of exactly
        ``max_faults`` elements; ``"auto"`` picks exhaustive when the number of
        fault sets is below ``exhaustive_limit``.
    stop_stretch:
        Stop the search at the first fault set whose stretch strictly exceeds
        this value (a *refutation* — e.g. pass the required stretch ``k`` to
        stop as soon as the spanner property is disproven).  An infinite
        stretch always stops the search, as before.
    workers / backend:
        Shard the candidate scan through :func:`repro.runtime.get_backend`.
        Chunks past the first refutation are cancelled; the returned fault
        set and stretch are bit-identical to the serial scan.

    Returns
    -------
    (fault_set, stretch):
        The worst fault set found and the stretch it induces.
    """
    model = get_fault_model(fault_model)
    elements = model.all_elements(original)
    num_sets = sum(math.comb(len(elements), size)
                   for size in range(0, min(max_faults, len(elements)) + 1))

    if method == "auto":
        method = "exhaustive" if num_sets <= exhaustive_limit else "sampled"
    if method not in ("exhaustive", "sampled"):
        raise ValueError("method must be 'auto', 'exhaustive', or 'sampled'")

    if method == "exhaustive":
        candidates: Iterable = enumerate_fault_sets(elements, max_faults)
        total = num_sets
    else:
        candidates = sample_fault_sets(original, model, max_faults, samples, rng=rng)
        total = len(candidates)

    if not (isinstance(original, Graph) and isinstance(spanner, Graph)):
        # View inputs have no CSR snapshot; keep the plain serial scan.
        return _worst_case_serial(original, spanner, model, candidates,
                                  stop_stretch)

    resolved = get_backend(backend, workers)
    context = _SearchContext(csr_g=csr_snapshot(original),
                             csr_h=csr_snapshot(spanner),
                             fault_model=model.name,
                             stop_stretch=stop_stretch,
                             kernel=get_kernels(kernel).name)
    chunks = iter_chunks(candidates, chunk_size_for(total, resolved.workers))
    outcome = merge_argmax(resolved.imap(_search_chunk, chunks, context=context))
    if outcome.best is None:
        return model.canonical(()), 0.0
    return outcome.best, outcome.best_value


def _worst_case_serial(original, spanner, model: FaultModel, candidates: Iterable,
                       stop_stretch: Optional[float]) -> Tuple[FaultSet, float]:
    """Reference scan for graph views that cannot be snapshotted/shipped."""
    worst_set: FaultSet = model.canonical(())
    worst_stretch = 0.0
    for faults in candidates:
        stretch = stretch_under_faults(original, spanner, model, faults)
        if stretch > worst_stretch:
            worst_stretch = stretch
            worst_set = model.canonical(faults)
        if worst_stretch == math.inf or (stop_stretch is not None
                                         and stretch > stop_stretch):
            break
    return worst_set, worst_stretch


@dataclass(frozen=True)
class _TrialContext:
    """Picklable payload for sharded random-fault trials."""

    csr_g: CSRGraph
    csr_h: CSRGraph
    fault_model: str
    kernel: Optional[str] = None


def _trial_chunk(ctx: _TrialContext, chunk: List) -> List[float]:
    model = get_fault_model(ctx.fault_model)
    return [stretch_between_csr(ctx.csr_g, ctx.csr_h, model, list(faults),
                                kernel=ctx.kernel)
            for faults in chunk]


def random_fault_trial(original: Graph, spanner: Graph,
                       fault_model: "str | FaultModel", max_faults: int,
                       trials: int, *, rng=None, workers: int = 1,
                       backend: BackendLike = None,
                       kernel: KernelLike = None) -> List[float]:
    """Stretch of the spanner under ``trials`` random fault sets (one value per trial).

    Fault sets are sampled up front in the calling process (so the random
    stream is untouched by parallelism); the stretch evaluations shard
    across the backend and concatenate back in trial order.
    """
    rng = ensure_rng(rng)
    model = get_fault_model(fault_model)
    fault_sets = sample_fault_sets(original, model, max_faults, trials, rng=rng)
    if not (isinstance(original, Graph) and isinstance(spanner, Graph)):
        return [stretch_under_faults(original, spanner, model, faults)
                for faults in fault_sets]
    resolved = get_backend(backend, workers)
    context = _TrialContext(csr_g=csr_snapshot(original),
                            csr_h=csr_snapshot(spanner),
                            fault_model=model.name,
                            kernel=get_kernels(kernel).name)
    chunks = iter_chunks(fault_sets, chunk_size_for(len(fault_sets),
                                                    resolved.workers))
    values: List[float] = []
    for chunk_values in resolved.map(_trial_chunk, chunks, context=context):
        values.extend(chunk_values)
    return values
