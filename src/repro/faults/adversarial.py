"""Adversarial fault search: which fault set hurts a spanner the most?

Given an original graph ``G``, a candidate spanner ``H``, and a fault budget
``f``, these routines find (exhaustively for small instances, greedily for
large ones) the fault set maximising the worst pairwise stretch of
``H \\ F`` relative to ``G \\ F``.  Experiment E9 uses them to show that the
FT-greedy output really keeps its stretch under the worst faults while
non-fault-tolerant baselines do not.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.faults.enumeration import enumerate_fault_sets, sample_fault_sets
from repro.faults.models import FaultModel, FaultSet, get_fault_model
from repro.graph.core import Graph, Node
from repro.graph.csr import csr_snapshot
from repro.paths.dijkstra import dijkstra_distances
from repro.paths.kernels import sssp_dijkstra_csr
from repro.utils.rng import ensure_rng


def stretch_under_faults(original: Graph, spanner: Graph,
                         fault_model: "str | FaultModel",
                         faults: Iterable,
                         *, pairs: Optional[List[Tuple[Node, Node]]] = None) -> float:
    """Worst multiplicative stretch of ``spanner \\ F`` w.r.t. ``original \\ F``.

    The stretch of a pair that is disconnected in ``original \\ F`` is ignored
    (Definition 2 only constrains pairs with a finite distance in the faulted
    original); a pair connected in ``original \\ F`` but disconnected in
    ``spanner \\ F`` yields ``inf``.

    Parameters
    ----------
    pairs:
        Restrict attention to these pairs; default is all pairs.
    """
    model = get_fault_model(fault_model)
    fault_list = list(faults)
    if isinstance(original, Graph) and isinstance(spanner, Graph):
        return _stretch_under_faults_csr(original, spanner, model, fault_list, pairs)
    faulted_original = model.apply(original, fault_list)
    faulted_spanner = model.apply(spanner, fault_list)

    worst = 1.0
    sources = (
        sorted({pair[0] for pair in pairs}, key=repr) if pairs is not None
        else list(faulted_original.nodes())
    )
    restrict: Optional[Dict[Node, set]] = None
    if pairs is not None:
        restrict = {}
        for u, v in pairs:
            restrict.setdefault(u, set()).add(v)

    for source in sources:
        if not faulted_original.has_node(source):
            continue
        base = dijkstra_distances(faulted_original, source)
        in_spanner = dijkstra_distances(faulted_spanner, source) \
            if faulted_spanner.has_node(source) else {}
        for target, base_distance in base.items():
            if target == source or base_distance == 0:
                continue
            if restrict is not None and target not in restrict.get(source, ()):
                continue
            spanner_distance = in_spanner.get(target, math.inf)
            ratio = spanner_distance / base_distance
            if ratio > worst:
                worst = ratio
    return worst


def _stretch_under_faults_csr(original: Graph, spanner: Graph, model: FaultModel,
                              fault_list: List,
                              pairs: Optional[List[Tuple[Node, Node]]]) -> float:
    """Mask-based twin of :func:`stretch_under_faults` for plain graphs.

    Applies the fault set as kernel masks over the cached CSR snapshots of
    both graphs instead of building two :class:`ExclusionView` wrappers, and
    compares distance arrays directly — no per-source dict materialisation.
    """
    csr_g = csr_snapshot(original)
    csr_h = csr_snapshot(spanner)
    vertex = model.uses_vertex_mask
    mask_g = model.new_mask(csr_g)
    for index in model.mask_indices(csr_g, fault_list):
        mask_g[index] = 1
    mask_h = model.new_mask(csr_h)
    for index in model.mask_indices(csr_h, fault_list):
        mask_h[index] = 1
    vm_g, em_g = model.kernel_masks(mask_g)
    vm_h, em_h = model.kernel_masks(mask_h)

    node_of_g = csr_g.node_of
    g_index = csr_g.index_of
    h_index = csr_h.index_of

    restrict: Optional[Dict[Node, set]] = None
    if pairs is not None:
        restrict = {}
        for u, v in pairs:
            restrict.setdefault(u, set()).add(v)
        sources = sorted({pair[0] for pair in pairs}, key=repr)
    else:
        sources = list(original.nodes())

    worst = 1.0
    for source in sources:
        si = g_index.get(source)
        if si is None or (vertex and mask_g[si]):
            continue
        base_dist, base_order = sssp_dijkstra_csr(csr_g, si, None, vm_g, em_g)
        hs = h_index.get(source)
        if hs is None or (vertex and mask_h[hs]):
            sub_dist = None
        else:
            sub_dist = sssp_dijkstra_csr(csr_h, hs, None, vm_h, em_h)[0]
        allowed = restrict.get(source, ()) if restrict is not None else None
        for index in base_order:
            target = node_of_g[index]
            base_distance = base_dist[index]
            if target == source or base_distance == 0:
                continue
            if allowed is not None and target not in allowed:
                continue
            if sub_dist is None:
                ratio = math.inf
            else:
                j = h_index.get(target)
                ratio = (sub_dist[j] if j is not None else math.inf) / base_distance
            if ratio > worst:
                worst = ratio
    return worst


def worst_case_fault_set(original: Graph, spanner: Graph,
                         fault_model: "str | FaultModel", max_faults: int,
                         *, method: str = "auto",
                         samples: int = 200, rng=None,
                         exhaustive_limit: int = 200_000
                         ) -> Tuple[FaultSet, float]:
    """Find a fault set (approximately) maximising the stretch of the spanner.

    Parameters
    ----------
    method:
        ``"exhaustive"`` tries every fault set of size ``<= max_faults``;
        ``"sampled"`` evaluates ``samples`` random fault sets of exactly
        ``max_faults`` elements; ``"auto"`` picks exhaustive when the number of
        fault sets is below ``exhaustive_limit``.

    Returns
    -------
    (fault_set, stretch):
        The worst fault set found and the stretch it induces.
    """
    model = get_fault_model(fault_model)
    elements = model.all_elements(original)
    num_sets = sum(math.comb(len(elements), size)
                   for size in range(0, min(max_faults, len(elements)) + 1))

    if method == "auto":
        method = "exhaustive" if num_sets <= exhaustive_limit else "sampled"
    if method not in ("exhaustive", "sampled"):
        raise ValueError("method must be 'auto', 'exhaustive', or 'sampled'")

    if method == "exhaustive":
        candidates: Iterable = enumerate_fault_sets(elements, max_faults)
    else:
        candidates = sample_fault_sets(original, model, max_faults, samples, rng=rng)

    worst_set: FaultSet = model.canonical(())
    worst_stretch = 0.0
    for faults in candidates:
        stretch = stretch_under_faults(original, spanner, model, faults)
        if stretch > worst_stretch:
            worst_stretch = stretch
            worst_set = model.canonical(faults)
            if worst_stretch == math.inf:
                break
    return worst_set, worst_stretch


def random_fault_trial(original: Graph, spanner: Graph,
                       fault_model: "str | FaultModel", max_faults: int,
                       trials: int, *, rng=None) -> List[float]:
    """Stretch of the spanner under ``trials`` random fault sets (one value per trial)."""
    rng = ensure_rng(rng)
    model = get_fault_model(fault_model)
    fault_sets = sample_fault_sets(original, model, max_faults, trials, rng=rng)
    return [stretch_under_faults(original, spanner, model, faults)
            for faults in fault_sets]
