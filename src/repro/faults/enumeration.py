"""Enumerating and sampling fault sets.

Exhaustive enumeration of all fault sets of size at most ``f`` is what makes
both the naive greedy check and the exhaustive FT-spanner verifier exponential
in ``f`` (the open problem the paper mentions); it is still the ground truth
the rest of the library is validated against, so it lives here in one place.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.faults.models import FaultElement, FaultModel, FaultSet, get_fault_model
from repro.utils.rng import ensure_rng


def enumerate_fault_sets(elements: Sequence[FaultElement], max_faults: int,
                         *, include_empty: bool = True) -> Iterator[tuple]:
    """Yield every subset of ``elements`` of size ``<= max_faults``.

    Subsets are yielded in order of increasing size (the empty set first when
    ``include_empty``), and within a size in the lexicographic order induced
    by the input sequence, so iteration order is deterministic.
    """
    if max_faults < 0:
        raise ValueError("max_faults must be non-negative")
    start = 0 if include_empty else 1
    limit = min(max_faults, len(elements))
    for size in range(start, limit + 1):
        yield from combinations(elements, size)


def count_fault_sets(num_elements: int, max_faults: int,
                     *, include_empty: bool = True) -> int:
    """Number of subsets of size ``<= max_faults`` out of ``num_elements`` elements."""
    if max_faults < 0:
        raise ValueError("max_faults must be non-negative")
    total = sum(math.comb(num_elements, size)
                for size in range(0, min(max_faults, num_elements) + 1))
    return total if include_empty else total - 1


def sample_fault_sets(graph, fault_model: "str | FaultModel", max_faults: int,
                      samples: int, *, rng=None,
                      exact_size: bool = True, unique: bool = False,
                      max_attempts: Optional[int] = None) -> List[FaultSet]:
    """Sample random fault sets for stochastic verification (E9 on large instances).

    Parameters
    ----------
    exact_size:
        If ``True`` every sampled set has exactly ``min(max_faults, available)``
        elements — the hardest case; otherwise the size is uniform in
        ``[0, max_faults]``.
    unique:
        Deduplicate: every returned fault set is distinct.  Duplicates are
        rejected and redrawn with a bounded retry budget (``max_attempts``,
        default ``20 * samples``), and the request is capped at the number of
        distinct fault sets that exist, so the call always terminates; when
        the retry budget runs out first, fewer than ``samples`` sets come
        back.  The draw sequence is deterministic per seed either way, but
        note that ``unique=True`` consumes the random stream differently
        from ``unique=False``.
    """
    model = get_fault_model(fault_model)
    rng = ensure_rng(rng)
    elements = model.all_elements(graph)
    if unique:
        if exact_size:
            distinct = math.comb(len(elements), min(max_faults, len(elements)))
        else:
            distinct = count_fault_sets(len(elements), max_faults)
        target = min(samples, distinct)
        budget = max_attempts if max_attempts is not None else 20 * samples
        seen: set = set()
    else:
        target = samples
        budget = samples
        seen = None
    results: List[FaultSet] = []
    attempts = 0
    while len(results) < target and attempts < budget:
        attempts += 1
        if exact_size:
            size = min(max_faults, len(elements))
        else:
            size = rng.randint(0, min(max_faults, len(elements)))
        chosen = rng.sample(elements, size) if size > 0 else []
        canonical = model.canonical(chosen)
        if seen is not None:
            if canonical in seen:
                continue
            seen.add(canonical)
        results.append(canonical)
    return results


def fault_sets_for_pair(graph, fault_model: "str | FaultModel", source, target,
                        max_faults: int) -> Iterator[tuple]:
    """Enumerate candidate fault sets relevant to one source/target pair.

    This is exactly the set the naive greedy check ranges over: all subsets of
    ``candidate_elements(graph, source, target)`` of size at most ``f``.
    """
    model = get_fault_model(fault_model)
    elements = model.candidate_elements(graph, source, target)
    return enumerate_fault_sets(elements, max_faults)
