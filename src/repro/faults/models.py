"""The two fault models of Definition 2, behind one interface.

A :class:`FaultModel` knows how to

* list the elements of a graph that are allowed to fail for a given
  source/target pair (vertices other than the endpoints, or edges);
* build the surviving view ``G \\ F`` for a concrete fault set ``F``;
* translate fault sets into the dense *mask indices* consumed by the CSR
  kernels (:mod:`repro.paths.kernels`), which is how the hot path applies
  ``G \\ F`` without constructing a view;
* canonicalise fault sets (so they can be hashed, compared, and reported).

Everything downstream — the FT greedy algorithm, the verification code, the
blocking-set extraction, and the experiments — is written against this
interface, so VFT and EFT share one code path exactly as they do in the paper
("the proof in the EFT setting is essentially identical").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.graph.core import Graph, Node, edge_key
from repro.graph.views import ExclusionView, graph_minus

FaultElement = Hashable
FaultSet = FrozenSet[FaultElement]


class FaultModel(ABC):
    """Abstract fault model (vertex or edge faults)."""

    #: Short machine-readable name ("vertex" or "edge"), used in metadata and CLI.
    name: str = "abstract"

    #: Which kernel mask this model's :meth:`mask_indices` indices belong to:
    #: ``True`` → the ``vertex_mask`` (node indices), ``False`` → the
    #: ``edge_mask`` (undirected edge ids).  The CSR fast paths key on this,
    #: not on :attr:`name`, so subclasses with new names stay correct.
    uses_vertex_mask: bool = True

    @abstractmethod
    def candidate_elements(self, graph, source: Node, target: Node) -> List[FaultElement]:
        """Elements allowed to fail when protecting the pair ``(source, target)``.

        For vertex faults the endpoints themselves are excluded (faulting an
        endpoint vacuously removes the demand, cf. Definition 2 where distances
        are taken in ``G \\ F``); for edge faults every edge may fail.
        """

    @abstractmethod
    def all_elements(self, graph) -> List[FaultElement]:
        """Every element of ``graph`` that the model allows to fail."""

    @abstractmethod
    def apply(self, graph, faults: Iterable[FaultElement]) -> ExclusionView:
        """The surviving graph ``graph \\ faults`` as a cheap view."""

    @abstractmethod
    def mask_indices(self, csr, faults: Iterable[FaultElement]) -> List[int]:
        """Dense mask indices of ``faults`` in a CSR snapshot.

        Vertex faults map to node indices (for the kernel ``vertex_mask``),
        edge faults to undirected edge ids (for the ``edge_mask``).  Elements
        absent from the snapshot are silently dropped — masking a vertex or
        edge that is not there is a no-op, exactly like excluding it from an
        :class:`ExclusionView`.
        """

    def new_mask(self, csr) -> bytearray:
        """A cleared fault mask sized for this model over ``csr``."""
        if self.uses_vertex_mask:
            return bytearray(csr.num_nodes)
        return bytearray(csr.num_edges)

    def kernel_masks(self, mask: bytearray) -> "Tuple[Optional[bytearray], Optional[bytearray]]":
        """Split one model mask into the kernels' ``(vertex_mask, edge_mask)`` pair."""
        if self.uses_vertex_mask:
            return mask, None
        return None, mask

    @abstractmethod
    def canonical(self, faults: Iterable[FaultElement]) -> FaultSet:
        """Canonical (hashable, orientation-normalised) form of a fault set."""

    @abstractmethod
    def element_touches_cycle(self, element: FaultElement, cycle_nodes: List[Node]) -> bool:
        """Whether a failed element lies on the given cycle (used by blocking sets)."""

    def validate(self, graph, faults: Iterable[FaultElement]) -> None:
        """Raise ``ValueError`` if any fault element does not exist in ``graph``."""
        for element in faults:
            if not self._element_in_graph(graph, element):
                raise ValueError(f"fault element {element!r} not present in the graph")

    @abstractmethod
    def _element_in_graph(self, graph, element: FaultElement) -> bool:
        ...

    def __repr__(self) -> str:
        return f"<FaultModel {self.name}>"


class VertexFaultModel(FaultModel):
    """Up to ``f`` vertices fail (the VFT setting, where the result is optimal)."""

    name = "vertex"
    uses_vertex_mask = True

    def candidate_elements(self, graph, source: Node, target: Node) -> List[Node]:
        return [node for node in graph.nodes() if node != source and node != target]

    def all_elements(self, graph) -> List[Node]:
        return list(graph.nodes())

    def apply(self, graph, faults: Iterable[Node]) -> ExclusionView:
        return graph_minus(graph, nodes=faults)

    def mask_indices(self, csr, faults: Iterable[Node]) -> List[int]:
        index_of = csr.index_of
        return [index_of[node] for node in faults if node in index_of]

    def canonical(self, faults: Iterable[Node]) -> FaultSet:
        return frozenset(faults)

    def element_touches_cycle(self, element: Node, cycle_nodes: List[Node]) -> bool:
        return element in cycle_nodes

    def _element_in_graph(self, graph, element: Node) -> bool:
        return graph.has_node(element)


class EdgeFaultModel(FaultModel):
    """Up to ``f`` edges fail (the EFT setting)."""

    name = "edge"
    uses_vertex_mask = False

    def candidate_elements(self, graph, source: Node, target: Node) -> List[Tuple[Node, Node]]:
        # Every edge may fail.  The edge (source, target) itself is listed too:
        # inside the greedy algorithm it is not yet part of H when the check
        # runs, so including it is harmless, and for verification Definition 2
        # allows it to fail like any other edge.
        return [edge_key(u, v) for u, v, _ in graph.edges()]

    def all_elements(self, graph) -> List[Tuple[Node, Node]]:
        return [edge_key(u, v) for u, v, _ in graph.edges()]

    def apply(self, graph, faults: Iterable[Tuple[Node, Node]]) -> ExclusionView:
        return graph_minus(graph, edges=faults)

    def mask_indices(self, csr, faults: Iterable[Tuple[Node, Node]]) -> List[int]:
        out: List[int] = []
        for u, v in faults:
            eid = csr.edge_id(u, v)
            if eid is not None:
                out.append(eid)
        return out

    def canonical(self, faults: Iterable[Tuple[Node, Node]]) -> FaultSet:
        return frozenset(edge_key(u, v) for u, v in faults)

    def element_touches_cycle(self, element: Tuple[Node, Node], cycle_nodes: List[Node]) -> bool:
        u, v = element
        if u not in cycle_nodes or v not in cycle_nodes:
            return False
        length = len(cycle_nodes)
        for index in range(length):
            a, b = cycle_nodes[index], cycle_nodes[(index + 1) % length]
            if edge_key(a, b) == edge_key(u, v):
                return True
        return False

    def _element_in_graph(self, graph, element: Tuple[Node, Node]) -> bool:
        u, v = element
        return graph.has_edge(u, v)


#: Singletons — the models are stateless, so share them.
VERTEX_FAULTS = VertexFaultModel()
EDGE_FAULTS = EdgeFaultModel()

_MODELS = {
    "vertex": VERTEX_FAULTS,
    "vft": VERTEX_FAULTS,
    "edge": EDGE_FAULTS,
    "eft": EDGE_FAULTS,
}


def get_fault_model(name: "str | FaultModel") -> FaultModel:
    """Resolve ``"vertex"``/``"vft"``/``"edge"``/``"eft"`` (or pass a model through)."""
    if isinstance(name, FaultModel):
        return name
    try:
        return _MODELS[name.lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown fault model {name!r}; expected one of {sorted(set(_MODELS))}"
        ) from None
