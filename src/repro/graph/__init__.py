"""Graph substrate: weighted undirected graphs and everything built on them.

The library deliberately ships its own small graph type
(:class:`repro.graph.Graph`) rather than using :mod:`networkx` internally:

* the fault-tolerant greedy algorithm runs bounded Dijkstra searches inside a
  branch-and-bound loop, so adjacency access and "graph minus fault set"
  views must be as cheap as possible;
* deterministic iteration order (insertion order of nodes and edges) makes
  every experiment reproducible from a seed;
* the type is tiny enough to reason about in tests and property-based checks.

:mod:`networkx` interop is provided by :mod:`repro.graph.convert` for users
who already have networkx graphs.
"""

from repro.graph.core import Graph, GraphError
from repro.graph.csr import CSRGraph, csr_snapshot
from repro.graph.views import ExclusionView, induced_subgraph, graph_minus
from repro.graph.components import connected_components, is_connected, UnionFind
from repro.graph.girth import girth, has_cycle_at_most, shortest_cycle_through_edge
from repro.graph.products import cartesian_product, tensor_product, strong_product
from repro.graph.convert import to_networkx, from_networkx
from repro.graph.io import (
    write_edge_list,
    read_edge_list,
    graph_to_json,
    graph_from_json,
    write_json,
    read_json,
)
from repro.graph import generators

__all__ = [
    "Graph",
    "GraphError",
    "CSRGraph",
    "csr_snapshot",
    "ExclusionView",
    "induced_subgraph",
    "graph_minus",
    "connected_components",
    "is_connected",
    "UnionFind",
    "girth",
    "has_cycle_at_most",
    "shortest_cycle_through_edge",
    "cartesian_product",
    "tensor_product",
    "strong_product",
    "to_networkx",
    "from_networkx",
    "write_edge_list",
    "read_edge_list",
    "graph_to_json",
    "graph_from_json",
    "write_json",
    "read_json",
    "generators",
]
