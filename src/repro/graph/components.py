"""Connectivity utilities: connected components and a union–find structure.

Used by graph generators (to ensure connectivity when requested), by the
verification code (stretch is only defined between connected pairs), and by
tests as a simple independent oracle.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List

from repro.graph.core import Graph, Node
from repro.graph.views import ExclusionView

GraphLike = "Graph | ExclusionView"


def connected_components(graph) -> List[List[Node]]:
    """Return the connected components as lists of nodes.

    Components and the nodes inside them are reported in the graph's
    deterministic iteration order.
    """
    seen: set[Node] = set()
    components: List[List[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: List[Node] = []
        queue: deque[Node] = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            component.append(node)
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return components


def is_connected(graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    nodes = list(graph.nodes())
    if len(nodes) <= 1:
        return True
    seen: set[Node] = {nodes[0]}
    queue: deque[Node] = deque([nodes[0]])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return len(seen) == len(nodes)


def component_of(graph, node: Node) -> List[Node]:
    """Return the connected component containing ``node``."""
    seen: set[Node] = {node}
    order: List[Node] = []
    queue: deque[Node] = deque([node])
    while queue:
        current = queue.popleft()
        order.append(current)
        for neighbor in graph.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return order


def largest_component_subgraph(graph: Graph) -> Graph:
    """Return the induced subgraph on the largest connected component."""
    components = connected_components(graph)
    if not components:
        return graph.copy()
    largest = max(components, key=len)
    return graph.subgraph(largest)


class UnionFind:
    """Disjoint-set forest with union by size and path compression.

    Used by the random spanning-tree augmentation in the generators and as a
    fast connectivity oracle in tests.
    """

    def __init__(self, elements: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton set (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def find(self, element: Hashable) -> Hashable:
        """Return the representative of ``element``'s set."""
        if element not in self._parent:
            raise KeyError(f"{element!r} not registered in the union-find")
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; return ``True`` if they were distinct."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def component_count(self) -> int:
        """Number of disjoint sets."""
        return sum(1 for element in self._parent if self._parent[element] == element)

    def groups(self) -> Iterator[List[Hashable]]:
        """Iterate the sets as lists of elements."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), []).append(element)
        return iter(by_root.values())

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)
