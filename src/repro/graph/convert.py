"""Conversion between :class:`repro.graph.Graph` and :mod:`networkx` graphs.

The library's algorithms all run on the internal type, but users frequently
already have data in networkx; these two functions are the supported bridge.
They are also used by the test-suite as an independent oracle (networkx
shortest paths / girth vs. ours).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.graph.core import Graph


def to_networkx(graph: Graph) -> "nx.Graph":
    """Convert to an :class:`networkx.Graph` with ``weight`` edge attributes."""
    result = nx.Graph(name=graph.name)
    result.add_nodes_from(graph.nodes())
    for u, v, w in graph.edges():
        result.add_edge(u, v, weight=w)
    return result


def from_networkx(nx_graph: "nx.Graph", *, weight_attribute: str = "weight",
                  default_weight: float = 1.0, name: Optional[str] = None) -> Graph:
    """Convert from networkx.

    Directed graphs are accepted and symmetrised (an undirected edge per
    directed arc, keeping the smaller weight if both directions exist).
    Multigraphs keep the minimum-weight parallel edge.  Self loops are dropped,
    because :class:`Graph` is simple.
    """
    graph = Graph(name=name if name is not None else (nx_graph.name or ""))
    graph.add_nodes(nx_graph.nodes())
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue
        weight = float(data.get(weight_attribute, default_weight))
        if graph.has_edge(u, v):
            weight = min(weight, graph.weight(u, v))
        graph.add_edge(u, v, weight)
    return graph
