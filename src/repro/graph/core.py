"""The core weighted undirected graph type.

:class:`Graph` is a simple (no self-loops, no parallel edges) undirected graph
with positive edge weights.  It is the substrate every spanner algorithm in
the library runs on.  Design constraints, in order of importance:

1. **Determinism** — nodes and edges iterate in insertion order, so two runs
   with the same seed produce byte-identical spanners.
2. **Cheap adjacency** — ``graph.adjacency(u)`` returns the underlying dict
   (read-only by convention) so inner shortest-path loops avoid copies.
3. **Explicitness** — mutation raises on invalid input (missing endpoints,
   self loops, non-positive weights) rather than silently fixing it.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

Node = Hashable
EdgeTuple = Tuple[Node, Node]
WeightedEdge = Tuple[Node, Node, float]


class GraphError(Exception):
    """Raised on invalid graph operations (missing nodes, self loops, ...)."""


def edge_key(u: Node, v: Node) -> EdgeTuple:
    """Canonical unordered representation of the edge ``{u, v}``.

    Nodes of mixed or unorderable types fall back to ordering by ``repr`` so
    the key is still deterministic.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class Graph:
    """A weighted, undirected, simple graph.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of ``(u, v)`` or ``(u, v, weight)`` tuples; missing
        weights default to ``1.0``.  Endpoints are added automatically.
    name:
        Optional human readable name carried through copies and used in
        ``repr``/experiment reports.

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2, 2.5)])
    >>> g.number_of_nodes(), g.number_of_edges()
    (3, 2)
    >>> g.weight(1, 2)
    2.5
    """

    __slots__ = ("_adj", "name", "metadata", "_version", "_csr_cache")

    def __init__(
        self,
        nodes: Optional[Iterable[Node]] = None,
        edges: Optional[Iterable[Tuple]] = None,
        name: str = "",
    ):
        self._adj: dict[Node, dict[Node, float]] = {}
        self.name = name
        #: Free-form dictionary for generator parameters, experiment tags, etc.
        self.metadata: dict[str, Any] = {}
        #: Monotone mutation counter: bumped on every structural change so
        #: compiled snapshots (:mod:`repro.graph.csr`) can invalidate without
        #: hashing edge sets.
        self._version: int = 0
        #: Cached compiled CSR snapshot (managed by :func:`repro.graph.csr.csr_snapshot`).
        self._csr_cache: Optional[Any] = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for edge in edges:
                if len(edge) == 2:
                    self.add_edge(edge[0], edge[1])
                elif len(edge) == 3:
                    self.add_edge(edge[0], edge[1], edge[2])
                else:
                    raise GraphError(f"edge tuples must have 2 or 3 entries, got {edge!r}")

    # ---------------------------------------------------------------- version
    @property
    def version(self) -> int:
        """Monotone counter bumped on every structural mutation.

        Snapshot caches (e.g. the compiled CSR form used by the hot-path
        distance kernels) key on this value: ``version`` unchanged means the
        node and edge structure is byte-for-byte identical to when the
        snapshot was compiled.
        """
        return self._version

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present (idempotent)."""
        if node not in self._adj:
            self._adj[node] = {}
            self._version += 1
            cache = self._csr_cache
            if cache is not None:
                cache.intern(node)
                cache.graph_version = self._version

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises :class:`GraphError` if the node is absent.
        """
        if node not in self._adj:
            raise GraphError(f"node {node!r} not in graph")
        for neighbor in list(self._adj[node]):
            del self._adj[neighbor][node]
        del self._adj[node]
        self._version += 1
        self._csr_cache = None

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._adj

    def nodes(self) -> Iterator[Node]:
        """Iterate nodes in insertion order."""
        return iter(self._adj)

    def number_of_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    # ------------------------------------------------------------------ edges
    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add the edge ``{u, v}`` with the given positive weight.

        Endpoints are created if missing.  Re-adding an existing edge
        overwrites its weight.  Self loops and non-positive / non-finite
        weights raise :class:`GraphError`.
        """
        if u == v:
            raise GraphError(f"self loops are not allowed (node {u!r})")
        weight = float(weight)
        if not weight > 0.0 or weight != weight or weight == float("inf"):
            raise GraphError(f"edge weight must be positive and finite, got {weight!r}")
        self.add_node(u)
        self.add_node(v)
        overwrite = v in self._adj[u]
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._version += 1
        cache = self._csr_cache
        if cache is not None:
            if overwrite:
                # Weight overwrites would require an in-place CSR patch; they
                # are rare (never on the greedy hot path), so just recompile.
                self._csr_cache = None
            else:
                cache.append_edge(u, v, weight)
                cache.graph_version = self._version

    def add_edges(self, edges: Iterable[Tuple]) -> None:
        """Add every edge in ``edges`` (2- or 3-tuples)."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            else:
                self.add_edge(edge[0], edge[1], edge[2])

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raises if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        del self._adj[u][v]
        del self._adj[v][u]
        self._version += 1
        self._csr_cache = None

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """Weight of the edge ``{u, v}``; raises :class:`GraphError` if absent."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate edges once each as ``(u, v, weight)`` in insertion order.

        Each undirected edge is reported exactly once, oriented from the
        endpoint that was inserted first.
        """
        seen: set[EdgeTuple] = set()
        for u, neighbors in self._adj.items():
            for v, w in neighbors.items():
                key = edge_key(u, v)
                if key in seen:
                    continue
                seen.add(key)
                yield (u, v, w)

    def edge_keys(self) -> Iterator[EdgeTuple]:
        """Iterate canonical ``(min, max)`` edge keys (unweighted)."""
        for u, v, _ in self.edges():
            yield edge_key(u, v)

    def number_of_edges(self) -> int:
        """Number of edges."""
        return sum(len(neighbors) for neighbors in self._adj.values()) // 2

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------ adjacency
    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate the neighbours of ``node``; raises if the node is absent."""
        if node not in self._adj:
            raise GraphError(f"node {node!r} not in graph")
        return iter(self._adj[node])

    def adjacency(self, node: Node) -> Mapping[Node, float]:
        """Neighbour→weight mapping of ``node`` (do not mutate)."""
        if node not in self._adj:
            raise GraphError(f"node {node!r} not in graph")
        return self._adj[node]

    def degree(self, node: Node) -> int:
        """Degree of ``node``."""
        if node not in self._adj:
            raise GraphError(f"node {node!r} not in graph")
        return len(self._adj[node])

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj.values())

    def min_degree(self) -> int:
        """Minimum degree over all nodes (0 for the empty graph)."""
        if not self._adj:
            return 0
        return min(len(neighbors) for neighbors in self._adj.values())

    def average_degree(self) -> float:
        """Average degree, i.e. ``2m / n`` (0 for the empty graph)."""
        n = self.number_of_nodes()
        if n == 0:
            return 0.0
        return 2.0 * self.number_of_edges() / n

    # ------------------------------------------------------------ derivation
    def copy(self, name: Optional[str] = None) -> "Graph":
        """Deep copy of structure and weights (metadata is shallow-copied)."""
        clone = Graph(name=self.name if name is None else name)
        clone.metadata = dict(self.metadata)
        for node in self._adj:
            clone.add_node(node)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``nodes`` (nodes absent from ``self`` are ignored)."""
        keep = [node for node in nodes if node in self._adj]
        keep_set = set(keep)
        sub = Graph(name=self.name)
        sub.metadata = dict(self.metadata)
        for node in keep:
            sub.add_node(node)
        for u, v, w in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v, w)
        return sub

    def edge_subgraph(self, edges: Iterable[EdgeTuple]) -> "Graph":
        """Subgraph containing all nodes of ``self`` but only the given edges."""
        sub = Graph(nodes=self.nodes(), name=self.name)
        sub.metadata = dict(self.metadata)
        for u, v in edges:
            sub.add_edge(u, v, self.weight(u, v))
        return sub

    def spanning_subgraph(self) -> "Graph":
        """Edge-less graph on the same node set (the greedy algorithms start here)."""
        empty = Graph(nodes=self.nodes(), name=self.name)
        empty.metadata = dict(self.metadata)
        return empty

    def relabeled(self, mapping: Mapping[Node, Node]) -> "Graph":
        """Return a copy with nodes renamed through ``mapping``.

        Nodes missing from ``mapping`` keep their name.  The mapping must be
        injective on the node set.
        """
        new_names = [mapping.get(node, node) for node in self.nodes()]
        if len(set(new_names)) != len(new_names):
            raise GraphError("relabeling mapping is not injective on the node set")
        clone = Graph(name=self.name)
        clone.metadata = dict(self.metadata)
        for node in self.nodes():
            clone.add_node(mapping.get(node, node))
        for u, v, w in self.edges():
            clone.add_edge(mapping.get(u, u), mapping.get(v, v), w)
        return clone

    def with_integer_labels(self) -> tuple["Graph", dict[Node, int]]:
        """Relabel nodes to ``0..n-1`` in insertion order; also return the mapping."""
        mapping = {node: index for index, node in enumerate(self.nodes())}
        return self.relabeled(mapping), mapping

    # -------------------------------------------------------------- equality
    def same_structure(self, other: "Graph", tol: float = 1e-12) -> bool:
        """Whether both graphs have identical node sets, edge sets, and weights."""
        if set(self.nodes()) != set(other.nodes()):
            return False
        if self.number_of_edges() != other.number_of_edges():
            return False
        for u, v, w in self.edges():
            if not other.has_edge(u, v):
                return False
            if abs(other.weight(u, v) - w) > tol:
                return False
        return True

    def is_subgraph_of(self, other: "Graph", tol: float = 1e-12) -> bool:
        """Whether every node and (weight-matching) edge of ``self`` is in ``other``."""
        for node in self.nodes():
            if not other.has_node(node):
                return False
        for u, v, w in self.edges():
            if not other.has_edge(u, v):
                return False
            if abs(other.weight(u, v) - w) > tol:
                return False
        return True

    # ------------------------------------------------------------- protocol
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Graph{label} n={self.number_of_nodes()} m={self.number_of_edges()}>"
        )


def density(graph: Graph) -> float:
    """Edge density ``m / (n choose 2)`` (0 for graphs with fewer than 2 nodes)."""
    n = graph.number_of_nodes()
    if n < 2:
        return 0.0
    return graph.number_of_edges() / (n * (n - 1) / 2)


def is_unit_weighted(graph: Graph, tol: float = 1e-12) -> bool:
    """Whether every edge has weight (approximately) 1."""
    return all(abs(w - 1.0) <= tol for _, _, w in graph.edges())
