"""Compiled CSR snapshots of :class:`~repro.graph.core.Graph`.

The dict-of-dict :class:`Graph` is the mutable, user-facing representation;
every *hot-path* distance query instead runs on a :class:`CSRGraph` — an
immutable-ish compiled form with

* a node ↔ index interner (``index_of`` / ``node_of``), so kernels work on
  dense ints instead of hashable node objects;
* ``indptr`` / ``indices`` / ``weights`` arrays (``array`` module) holding the
  adjacency in CSR layout, in the exact per-node insertion order of the source
  graph (this is what keeps kernel-produced spanners byte-identical to the
  reference dict implementation);
* per-arc ``edge_ids`` mapping each directed arc to its undirected edge id,
  so *edge fault masks* can hide an edge in O(1) without building a view;
* cheap incremental edge append: the growing greedy spanner ``H`` gains one
  edge at a time between thousands of queries, so appends land in a small
  per-node overflow (``_extra``) that kernels traverse after the compact
  slice, and the arrays are re-compacted geometrically.

Snapshots are cached on the graph itself (``Graph._csr_cache``) keyed on
:attr:`Graph.version`; :func:`csr_snapshot` is the only entry point.  The
mutators of :class:`Graph` keep a live snapshot in sync on ``add_node`` /
``add_edge`` and drop it on removals or weight overwrites.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.core import Graph, Node

#: Recompact when the overflow holds more than 1/8 of the compact arcs.
_COMPACT_RATIO = 8
#: ... but never bother below this many overflow arcs.
_COMPACT_MIN = 64


class CSRGraph:
    """A compiled, int-indexed snapshot of a weighted undirected graph.

    Not constructed directly in normal use — call :func:`csr_snapshot` (or
    :meth:`from_graph`).  All attributes are public because the kernels in
    :mod:`repro.paths.kernels` read them in tight loops.
    """

    __slots__ = (
        "index_of",      # node -> dense index
        "node_of",       # dense index -> node
        "indptr",        # array('q'), len n + 1
        "indices",       # array('q'), neighbor index per arc
        "weights",       # array('d'), weight per arc
        "edge_ids",      # array('q'), undirected edge id per arc
        "edge_index",    # (min_idx, max_idx) -> edge id
        "_indptr_l",     # list mirrors of the arrays for the kernels:
        "_indices_l",    # indexing a list returns the stored object, while
        "_weights_l",    # indexing an array boxes a fresh int/float on every
        "_edge_ids_l",   # access — measurably slower in the inner loops.
        "_extra",        # overflow: node index -> list of (v, w, eid) arcs
        "_extra_count",  # number of overflow arcs
        "_mirrors_stale",  # list mirrors need a rebuild before loop kernels run
        "_nd_views",     # zero-copy ndarray views keyed per source array
        "graph_version", # Graph.version this snapshot corresponds to
    )

    def __init__(self) -> None:
        self.index_of: Dict[Node, int] = {}
        self.node_of: List[Node] = []
        self.indptr = array("q", [0])
        self.indices = array("q")
        self.weights = array("d")
        self.edge_ids = array("q")
        self.edge_index: Dict[Tuple[int, int], int] = {}
        self._indptr_l: List[int] = [0]
        self._indices_l: List[int] = []
        self._weights_l: List[float] = []
        self._edge_ids_l: List[int] = []
        self._extra: Dict[int, List[Tuple[int, float, int]]] = {}
        self._extra_count = 0
        self._mirrors_stale = False
        self._nd_views: Dict[str, object] = {}
        self.graph_version = -1

    def __getstate__(self):
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        # The ndarray views borrow the arrays' buffers; they are rebuilt on
        # demand on the other side instead of travelling through pickle.
        state["_nd_views"] = {}
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    # ------------------------------------------------------------- building
    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Compile ``graph`` into CSR form (nodes/arcs in insertion order)."""
        snap = cls()
        index_of = snap.index_of
        node_of = snap.node_of
        for node in graph.nodes():
            index_of[node] = len(node_of)
            node_of.append(node)
        edge_index = snap.edge_index
        for u, v, _ in graph.edges():
            a, b = index_of[u], index_of[v]
            if a > b:
                a, b = b, a
            edge_index[(a, b)] = len(edge_index)
        indptr = snap.indptr
        indices = snap.indices
        weights = snap.weights
        edge_ids = snap.edge_ids
        position = 0
        for u in node_of:
            ui = index_of[u]
            for v, w in graph.adjacency(u).items():
                vi = index_of[v]
                indices.append(vi)
                weights.append(w)
                edge_ids.append(edge_index[(ui, vi) if ui < vi else (vi, ui)])
                position += 1
            indptr.append(position)
        snap._refresh_mirrors()
        return snap

    def _refresh_mirrors(self) -> None:
        """Rebuild the kernel-facing list mirrors of the CSR arrays."""
        self._indptr_l = self.indptr.tolist()
        self._indices_l = self.indices.tolist()
        self._weights_l = self.weights.tolist()
        self._edge_ids_l = self.edge_ids.tolist()
        self._mirrors_stale = False

    def arc_lists(self) -> Tuple[List[int], List[int], List[float], List[int]]:
        """The list mirrors ``(indptr, indices, weights, edge_ids)``.

        The loop kernels read these instead of the ``array`` objects
        (list indexing returns the stored object; array indexing boxes a
        fresh int/float per access).  A compaction only marks the mirrors
        stale — they are rebuilt here, on the first loop-kernel query after
        it, so a numpy-backend build never pays ``tolist`` at all.
        """
        if self._mirrors_stale:
            self._refresh_mirrors()
        return self._indptr_l, self._indices_l, self._weights_l, self._edge_ids_l

    def intern(self, node: Node) -> int:
        """Index of ``node``, adding it (with an empty adjacency) if new."""
        index = self.index_of.get(node)
        if index is None:
            index = len(self.node_of)
            self.index_of[node] = index
            self.node_of.append(node)
            # Only the indptr view must go: appending resizes the array, which
            # is illegal while an ndarray borrows its buffer.  The data-array
            # views (and the derived reverse-arc table) stay valid.
            self._nd_views.pop("indptr", None)
            # Duplicate the running prefix sum: the new node owns an empty
            # compact slice, so kernels can index indptr[u+1] safely.
            self.indptr.append(self.indptr[-1])
            self._indptr_l.append(self._indptr_l[-1])
        return index

    def append_edge(self, u: Node, v: Node, weight: float) -> int:
        """Append the (new) undirected edge ``{u, v}``; returns its edge id.

        The arcs land in the per-node overflow and are folded into the
        compact arrays once the overflow exceeds ``1/8`` of the compact part
        (geometric, so total recompaction work is O(m log m)).
        """
        ui = self.intern(u)
        vi = self.intern(v)
        key = (ui, vi) if ui < vi else (vi, ui)
        eid = len(self.edge_index)
        self.edge_index[key] = eid
        extra = self._extra
        bucket = extra.get(ui)
        if bucket is None:
            extra[ui] = [(vi, weight, eid)]
        else:
            bucket.append((vi, weight, eid))
        bucket = extra.get(vi)
        if bucket is None:
            extra[vi] = [(ui, weight, eid)]
        else:
            bucket.append((ui, weight, eid))
        self._extra_count += 2
        if (self._extra_count >= _COMPACT_MIN
                and self._extra_count * _COMPACT_RATIO >= len(self.indices)):
            self.compact()
        return eid

    def compact(self) -> None:
        """Fold the overflow arcs into the compact ``indptr``/``indices``/... form.

        ``indptr`` keeps its length (one slot per node plus one) across a
        compaction, so it is rewritten *in place* — the array object survives,
        and any cached zero-copy ndarray view of it stays valid and simply
        sees the new prefix sums.  The data arrays change length and are
        replaced, dropping only their views (and the derived reverse-arc
        table).
        """
        if not self._extra_count:
            return
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is present in CI
            np = None
        if np is not None:
            self._compact_vectorized(np)
        else:
            self._compact_loop()
        self._nd_views.pop("data", None)
        self._nd_views.pop("rev", None)
        self._mirrors_stale = True
        self._extra = {}
        self._extra_count = 0

    def _compact_vectorized(self, np) -> None:
        """Numpy body of :meth:`compact`: scatter-move instead of Python loops.

        The numpy kernel backend folds the overflow before *every* sweep, so
        a growing greedy spanner compacts once per accepted edge; the Python
        rebuild made that O(n·m) of interpreter work and dominated large
        builds.  Same output layout as :meth:`_compact_loop` — each node's
        compact slice shifts by the number of overflow arcs owned by earlier
        nodes, and its own overflow lands after the slice in append order.
        """
        extra = self._extra
        n = len(self.node_of)
        old_indptr = np.frombuffer(self.indptr, dtype=np.int64)
        old_indices = np.frombuffer(self.indices, dtype=np.int64)
        old_weights = np.frombuffer(self.weights, dtype=np.float64)
        old_edge_ids = np.frombuffer(self.edge_ids, dtype=np.int64)
        counts = np.zeros(n + 1, dtype=np.int64)
        for u, bucket in extra.items():
            counts[u + 1] = len(bucket)
        offsets = np.cumsum(counts)  # overflow arcs owned by nodes before u
        total = len(old_indices) + self._extra_count
        new_indices = np.empty(total, dtype=np.int64)
        new_weights = np.empty(total, dtype=np.float64)
        new_edge_ids = np.empty(total, dtype=np.int64)
        dest = np.arange(len(old_indices), dtype=np.int64)
        dest += np.repeat(offsets[:-1], np.diff(old_indptr))
        new_indices[dest] = old_indices
        new_weights[dest] = old_weights
        new_edge_ids[dest] = old_edge_ids
        for u, bucket in extra.items():
            pos = int(old_indptr[u + 1] + offsets[u])
            for j, (v, w, eid) in enumerate(bucket):
                new_indices[pos + j] = v
                new_weights[pos + j] = w
                new_edge_ids[pos + j] = eid
        # In-place element writes through the view never resize the indptr
        # array, so they are legal even while an exported ndarray view pins
        # the buffer — identity preserved, the cached view sees the update.
        old_indptr += offsets
        indices = array("q")
        indices.frombytes(new_indices.tobytes())
        weights = array("d")
        weights.frombytes(new_weights.tobytes())
        edge_ids = array("q")
        edge_ids.frombytes(new_edge_ids.tobytes())
        self.indices = indices
        self.weights = weights
        self.edge_ids = edge_ids

    def _compact_loop(self) -> None:
        """Pure-Python body of :meth:`compact` (no-numpy fallback)."""
        old_indptr = self.indptr
        old_indices = self.indices
        old_weights = self.weights
        old_edge_ids = self.edge_ids
        extra = self._extra
        new_indptr: List[int] = [0]
        indices = array("q")
        weights = array("d")
        edge_ids = array("q")
        position = 0
        for u in range(len(self.node_of)):
            start, end = old_indptr[u], old_indptr[u + 1]
            if end > start:
                indices.extend(old_indices[start:end])
                weights.extend(old_weights[start:end])
                edge_ids.extend(old_edge_ids[start:end])
                position += end - start
            bucket = extra.get(u)
            if bucket:
                for v, w, eid in bucket:
                    indices.append(v)
                    weights.append(w)
                    edge_ids.append(eid)
                position += len(bucket)
            new_indptr.append(position)
        # Item-wise writes never resize, so they are legal even while an
        # exported ndarray view pins the buffer — identity preserved.
        for i, p in enumerate(new_indptr):
            old_indptr[i] = p
        self.indices = indices
        self.weights = weights
        self.edge_ids = edge_ids

    # -------------------------------------------------------------- queries
    @property
    def num_nodes(self) -> int:
        """Number of interned nodes."""
        return len(self.node_of)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (== the edge-id space for masks)."""
        return len(self.edge_index)

    def edge_id(self, u: Node, v: Node) -> Optional[int]:
        """Undirected edge id of ``{u, v}``, or ``None`` if absent."""
        ui = self.index_of.get(u)
        vi = self.index_of.get(v)
        if ui is None or vi is None:
            return None
        return self.edge_index.get((ui, vi) if ui < vi else (vi, ui))

    def degree(self, index: int) -> int:
        """Degree of the node with dense ``index``."""
        count = self.indptr[index + 1] - self.indptr[index]
        bucket = self._extra.get(index)
        return count + (len(bucket) if bucket else 0)

    def arcs(self, index: int):
        """Iterate ``(neighbor_index, weight, edge_id)`` arcs of one node.

        Convenience/debugging accessor; the kernels inline this loop.
        """
        indptr = self.indptr
        indices = self.indices
        weights = self.weights
        edge_ids = self.edge_ids
        for t in range(indptr[index], indptr[index + 1]):
            yield indices[t], weights[t], edge_ids[t]
        bucket = self._extra.get(index)
        if bucket:
            for arc in bucket:
                yield arc

    # ------------------------------------------------------------- ndarrays
    def as_ndarrays(self):
        """Zero-copy ndarray views ``(indptr, indices, weights, edge_ids)``.

        Requires numpy (the vectorized kernel backend gates on it).  Views
        borrow the underlying ``array`` buffers — no copy per call — and are
        cached per source array:

        * :meth:`intern` drops only the ``indptr`` view (appending a node
          resizes that array); the data views and the derived reverse-arc
          table survive node growth untouched;
        * :meth:`compact` rewrites ``indptr`` in place (same object, view
          stays live) and replaces only the data arrays, whose views are
          rebuilt on the next call.

        A pending overflow is folded in first: the vectorized kernels sweep
        the compact slices only, and compaction preserves the per-node
        insertion order the loop kernels see, so results are unaffected.

        The views are *borrowed*: holding one across a mutation of the
        snapshot raises ``BufferError`` on the resize instead of corrupting
        memory — callers (the kernels) take them per call and let go.
        """
        import numpy as np

        if self._extra_count:
            self.compact()
        views = self._nd_views
        entry = views.get("indptr")
        if (entry is None or entry[0] is not self.indptr
                or len(entry[1]) != len(self.indptr)):
            entry = (self.indptr, np.frombuffer(self.indptr, dtype=np.int64))
            views["indptr"] = entry
        indptr_nd = entry[1]
        entry = views.get("data")
        if entry is None or entry[0] is not self.indices:
            entry = (self.indices,
                     np.frombuffer(self.indices, dtype=np.int64),
                     np.frombuffer(self.weights, dtype=np.float64),
                     np.frombuffer(self.edge_ids, dtype=np.int64))
            views["data"] = entry
        return indptr_nd, entry[1], entry[2], entry[3]

    def reverse_arcs(self):
        """Per-arc index of the opposite arc of the same undirected edge.

        ``rev[t]`` is the position of the arc ``(v, u)`` when arc ``t`` is
        ``(u, v)`` — the vectorized kernels use it to recover, for a settled
        node, where the achieving arc sits in the *parent's* scan order.
        Computed with one stable argsort over ``edge_ids`` (each undirected
        edge id appears on exactly two arcs) and cached until the data
        arrays are replaced by a compaction.
        """
        import numpy as np

        _, _, _, edge_ids_nd = self.as_ndarrays()
        cached = self._nd_views.get("rev")
        if cached is not None:
            return cached
        order = np.argsort(edge_ids_nd, kind="stable")
        rev = np.empty(len(order), dtype=np.int64)
        rev[order[0::2]] = order[1::2]
        rev[order[1::2]] = order[0::2]
        self._nd_views["rev"] = rev
        return rev

    # ---------------------------------------------------------------- masks
    def vertex_fault_mask(self, nodes: Iterable[Node]) -> bytearray:
        """Bytearray mask over node indices; unknown nodes are ignored."""
        mask = bytearray(len(self.node_of))
        index_of = self.index_of
        for node in nodes:
            index = index_of.get(node)
            if index is not None:
                mask[index] = 1
        return mask

    def edge_fault_mask(self, edges: Iterable[Tuple[Node, Node]]) -> bytearray:
        """Bytearray mask over edge ids; edges absent from the snapshot are ignored."""
        mask = bytearray(len(self.edge_index))
        for u, v in edges:
            eid = self.edge_id(u, v)
            if eid is not None:
                mask[eid] = 1
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CSRGraph n={len(self.node_of)} m={len(self.edge_index)} "
            f"overflow={self._extra_count} v={self.graph_version}>"
        )


def csr_snapshot(graph: Graph) -> CSRGraph:
    """The compiled CSR snapshot of ``graph``, cached on :attr:`Graph.version`.

    Compiling is O(n + m); a cache hit is two attribute reads.  The snapshot
    stays valid across ``add_node``/``add_edge`` (the graph appends into it
    incrementally) and is recompiled after removals or weight overwrites.
    """
    cache = graph._csr_cache
    if cache is not None and cache.graph_version == graph.version:
        return cache
    snap = CSRGraph.from_graph(graph)
    snap.graph_version = graph.version
    graph._csr_cache = snap
    return snap
