"""Graph generators used by the experiments, examples, and tests.

All generators return :class:`repro.graph.Graph` instances with nodes labelled
``0..n-1`` (unless stated otherwise), record their parameters in
``graph.metadata``, and accept ``rng=`` (seed, :class:`random.Random`, or
:class:`~repro.utils.rng.RandomSource`) for reproducibility.

The families cover what the evaluation needs:

* random models — :func:`gnp`, :func:`gnm`, :func:`random_geometric`,
  :func:`random_regular_like`, :func:`random_weighted_gnm`;
* structured graphs — :func:`path_graph`, :func:`cycle_graph`,
  :func:`complete_graph`, :func:`complete_bipartite`, :func:`grid_2d`,
  :func:`hypercube`, :func:`star_graph`, :func:`barbell_graph`,
  :func:`connected_caveman`;
* high-girth graphs for the lower-bound construction —
  :func:`petersen_graph`, :func:`heawood_graph`, :func:`mcgee_graph`,
  :func:`tutte_coxeter_graph`, :func:`incidence_projective_plane`,
  :func:`high_girth_greedy`.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Sequence

from repro.graph.components import UnionFind, is_connected
from repro.graph.core import Graph
from repro.utils.rng import RandomSource, ensure_rng


# --------------------------------------------------------------------------
# Random families
# --------------------------------------------------------------------------

def gnp(n: int, p: float, *, rng=None, weighted: bool = False,
        weight_range: tuple[float, float] = (1.0, 10.0)) -> Graph:
    """Erdős–Rényi ``G(n, p)``: each of the ``n choose 2`` edges appears w.p. ``p``.

    With ``weighted=True`` edge weights are uniform in ``weight_range``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rng = ensure_rng(rng)
    graph = Graph(nodes=range(n), name=f"gnp(n={n},p={p})")
    graph.metadata.update({"family": "gnp", "n": n, "p": p})
    for u in range(n):
        for v in range(u + 1, n):
            if rng.bernoulli(p):
                weight = rng.uniform(*weight_range) if weighted else 1.0
                graph.add_edge(u, v, weight)
    return graph


def gnm(n: int, m: int, *, rng=None, weighted: bool = False,
        weight_range: tuple[float, float] = (1.0, 10.0),
        connected: bool = False) -> Graph:
    """Erdős–Rényi ``G(n, m)``: exactly ``m`` edges chosen uniformly at random.

    With ``connected=True`` the graph is first seeded with a uniform random
    spanning tree (so ``m >= n - 1`` is required) and the remaining edges are
    sampled among the non-tree pairs.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the maximum {max_edges} for n={n}")
    rng = ensure_rng(rng)
    graph = Graph(nodes=range(n), name=f"gnm(n={n},m={m})")
    graph.metadata.update({"family": "gnm", "n": n, "m": m, "connected": connected})

    chosen: set[tuple[int, int]] = set()
    if connected:
        if n > 0 and m < n - 1:
            raise ValueError(f"a connected graph on {n} nodes needs at least {n - 1} edges")
        chosen.update(_random_spanning_tree_edges(n, rng))
    remaining = m - len(chosen)
    if remaining > 0:
        if remaining >= (max_edges - len(chosen)) // 2:
            pool = [pair for pair in itertools.combinations(range(n), 2)
                    if pair not in chosen]
            chosen.update(rng.sample(pool, remaining))
        else:
            while remaining > 0:
                u, v = rng.randint(0, n - 1), rng.randint(0, n - 1)
                if u == v:
                    continue
                pair = (u, v) if u < v else (v, u)
                if pair in chosen:
                    continue
                chosen.add(pair)
                remaining -= 1
    for u, v in sorted(chosen):
        weight = rng.uniform(*weight_range) if weighted else 1.0
        graph.add_edge(u, v, weight)
    return graph


def random_weighted_gnm(n: int, m: int, *, rng=None,
                        weight_range: tuple[float, float] = (1.0, 100.0),
                        connected: bool = True) -> Graph:
    """Convenience wrapper: connected ``G(n, m)`` with uniform random weights."""
    return gnm(n, m, rng=rng, weighted=True, weight_range=weight_range,
               connected=connected)


def _random_spanning_tree_edges(n: int, rng: RandomSource) -> set[tuple[int, int]]:
    """Edges of a random spanning tree on ``0..n-1`` (random-permutation attachment)."""
    edges: set[tuple[int, int]] = set()
    if n <= 1:
        return edges
    order = list(range(n))
    rng.shuffle(order)
    for position in range(1, n):
        node = order[position]
        anchor = order[rng.randint(0, position - 1)]
        edges.add((node, anchor) if node < anchor else (anchor, node))
    return edges


def random_geometric(n: int, radius: float, *, rng=None,
                     weighted: bool = True) -> Graph:
    """Random geometric graph: ``n`` points in the unit square, edges within ``radius``.

    With ``weighted=True`` (the default, unlike the other generators) the edge
    weight is the Euclidean distance, which makes these the natural "road
    network"-style weighted instances.  Point coordinates are stored in
    ``graph.metadata["positions"]``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    rng = ensure_rng(rng)
    positions = {i: (rng.random(), rng.random()) for i in range(n)}
    graph = Graph(nodes=range(n), name=f"geometric(n={n},r={radius})")
    graph.metadata.update({"family": "geometric", "n": n, "radius": radius,
                           "positions": positions})
    for u in range(n):
        xu, yu = positions[u]
        for v in range(u + 1, n):
            xv, yv = positions[v]
            distance = math.hypot(xu - xv, yu - yv)
            if distance <= radius:
                graph.add_edge(u, v, distance if weighted else 1.0)
    return graph


def random_regular_like(n: int, degree: int, *, rng=None) -> Graph:
    """Approximately ``degree``-regular random graph via the configuration model.

    Half-edges are paired uniformly at random; self loops and parallel edges
    are discarded, so the realised degrees can be slightly below ``degree``.
    Good enough as a bounded-degree workload; exact regularity is not needed
    by any experiment.
    """
    if degree >= n:
        raise ValueError("degree must be smaller than n")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even")
    rng = ensure_rng(rng)
    stubs = [node for node in range(n) for _ in range(degree)]
    rng.shuffle(stubs)
    graph = Graph(nodes=range(n), name=f"regular_like(n={n},d={degree})")
    graph.metadata.update({"family": "regular_like", "n": n, "degree": degree})
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


# --------------------------------------------------------------------------
# Structured families
# --------------------------------------------------------------------------

def path_graph(n: int) -> Graph:
    """Path on ``n`` nodes ``0 - 1 - ... - (n-1)``."""
    graph = Graph(nodes=range(n), name=f"path({n})")
    graph.metadata.update({"family": "path", "n": n})
    graph.add_edges((i, i + 1) for i in range(n - 1))
    return graph


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    graph = path_graph(n)
    graph.name = f"cycle({n})"
    graph.metadata["family"] = "cycle"
    graph.add_edge(n - 1, 0)
    return graph


def complete_graph(n: int, *, weighted: bool = False, rng=None,
                   weight_range: tuple[float, float] = (1.0, 10.0)) -> Graph:
    """Complete graph ``K_n``, optionally with uniform random weights."""
    rng = ensure_rng(rng)
    graph = Graph(nodes=range(n), name=f"K{n}")
    graph.metadata.update({"family": "complete", "n": n})
    for u in range(n):
        for v in range(u + 1, n):
            weight = rng.uniform(*weight_range) if weighted else 1.0
            graph.add_edge(u, v, weight)
    return graph


def complete_bipartite(a: int, b: int) -> Graph:
    """Complete bipartite graph ``K_{a,b}``; the biclique of the lower bound.

    Left part is ``0..a-1`` and right part is ``a..a+b-1``.
    """
    graph = Graph(nodes=range(a + b), name=f"K{a},{b}")
    graph.metadata.update({"family": "complete_bipartite", "a": a, "b": b})
    for u in range(a):
        for v in range(a, a + b):
            graph.add_edge(u, v)
    return graph


def star_graph(n: int) -> Graph:
    """Star with centre ``0`` and ``n`` leaves ``1..n``."""
    graph = Graph(nodes=range(n + 1), name=f"star({n})")
    graph.metadata.update({"family": "star", "leaves": n})
    graph.add_edges((0, leaf) for leaf in range(1, n + 1))
    return graph


def grid_2d(rows: int, cols: int, *, diagonal: bool = False) -> Graph:
    """``rows x cols`` grid; with ``diagonal=True`` also the down-right diagonals.

    Nodes are labelled ``r * cols + c``.
    """
    graph = Graph(nodes=range(rows * cols), name=f"grid({rows}x{cols})")
    graph.metadata.update({"family": "grid", "rows": rows, "cols": cols,
                           "diagonal": diagonal})

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(node_id(r, c), node_id(r, c + 1))
            if r + 1 < rows:
                graph.add_edge(node_id(r, c), node_id(r + 1, c))
            if diagonal and r + 1 < rows and c + 1 < cols:
                graph.add_edge(node_id(r, c), node_id(r + 1, c + 1), math.sqrt(2.0))
    return graph


def hypercube(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube ``Q_d`` on ``2^d`` nodes."""
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    n = 1 << dimension
    graph = Graph(nodes=range(n), name=f"Q{dimension}")
    graph.metadata.update({"family": "hypercube", "dimension": dimension})
    for node in range(n):
        for bit in range(dimension):
            neighbor = node ^ (1 << bit)
            if node < neighbor:
                graph.add_edge(node, neighbor)
    return graph


def barbell_graph(clique_size: int, path_length: int) -> Graph:
    """Two ``K_{clique_size}`` cliques joined by a path of ``path_length`` edges."""
    if clique_size < 1:
        raise ValueError("clique_size must be positive")
    total = 2 * clique_size + max(path_length - 1, 0)
    graph = Graph(nodes=range(total), name=f"barbell({clique_size},{path_length})")
    graph.metadata.update({"family": "barbell", "clique_size": clique_size,
                           "path_length": path_length})
    left = list(range(clique_size))
    right = list(range(clique_size + max(path_length - 1, 0), total))
    for part in (left, right):
        for u, v in itertools.combinations(part, 2):
            graph.add_edge(u, v)
    # Path bridging the two cliques.
    bridge = [left[-1]] + list(range(clique_size, clique_size + max(path_length - 1, 0))) + [right[0]]
    for u, v in zip(bridge, bridge[1:]):
        if u != v:
            graph.add_edge(u, v)
    return graph


def connected_caveman(num_cliques: int, clique_size: int) -> Graph:
    """Connected caveman graph: a ring of ``num_cliques`` cliques of ``clique_size``.

    One edge of each clique is rewired to the next clique, following the usual
    construction; a highly clustered workload with small vertex cuts, which is
    the worst case for fault tolerance.
    """
    if num_cliques < 2 or clique_size < 2:
        raise ValueError("need at least 2 cliques of size at least 2")
    n = num_cliques * clique_size
    graph = Graph(nodes=range(n), name=f"caveman({num_cliques},{clique_size})")
    graph.metadata.update({"family": "caveman", "num_cliques": num_cliques,
                           "clique_size": clique_size})
    for c in range(num_cliques):
        members = list(range(c * clique_size, (c + 1) * clique_size))
        for u, v in itertools.combinations(members, 2):
            graph.add_edge(u, v)
    for c in range(num_cliques):
        u = c * clique_size            # first member of clique c
        v = ((c + 1) % num_cliques) * clique_size + 1  # second member of next clique
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


# --------------------------------------------------------------------------
# High-girth graphs (cages and incidence graphs) for the lower bound
# --------------------------------------------------------------------------

def petersen_graph() -> Graph:
    """The Petersen graph: 10 nodes, 15 edges, girth 5 — the (3,5)-cage."""
    graph = Graph(nodes=range(10), name="petersen")
    graph.metadata.update({"family": "cage", "girth": 5, "degree": 3})
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    graph.add_edges(outer + spokes + inner)
    return graph


def heawood_graph() -> Graph:
    """The Heawood graph: 14 nodes, 21 edges, girth 6 — the (3,6)-cage."""
    graph = Graph(nodes=range(14), name="heawood")
    graph.metadata.update({"family": "cage", "girth": 6, "degree": 3})
    for i in range(14):
        graph.add_edge(i, (i + 1) % 14)
    # Chords of the standard LCF notation [5, -5]^7.
    for i in range(0, 14, 2):
        graph.add_edge(i, (i + 5) % 14)
    return graph


def mcgee_graph() -> Graph:
    """The McGee graph: 24 nodes, 36 edges, girth 7 — the (3,7)-cage."""
    graph = Graph(nodes=range(24), name="mcgee")
    graph.metadata.update({"family": "cage", "girth": 7, "degree": 3})
    # LCF notation [12, 7, -7]^8.
    lcf = [12, 7, -7]
    for i in range(24):
        graph.add_edge(i, (i + 1) % 24)
    for i in range(24):
        offset = lcf[i % 3]
        j = (i + offset) % 24
        if not graph.has_edge(i, j):
            graph.add_edge(i, j)
    return graph


def tutte_coxeter_graph() -> Graph:
    """The Tutte–Coxeter (Levi) graph: 30 nodes, 45 edges, girth 8 — the (3,8)-cage."""
    graph = Graph(nodes=range(30), name="tutte_coxeter")
    graph.metadata.update({"family": "cage", "girth": 8, "degree": 3})
    # LCF notation [-13, -9, 7, -7, 9, 13]^5.
    lcf = [-13, -9, 7, -7, 9, 13]
    for i in range(30):
        graph.add_edge(i, (i + 1) % 30)
    for i in range(30):
        offset = lcf[i % 6]
        j = (i + offset) % 30
        if not graph.has_edge(i, j):
            graph.add_edge(i, j)
    return graph


def _is_prime(q: int) -> bool:
    if q < 2:
        return False
    if q % 2 == 0:
        return q == 2
    divisor = 3
    while divisor * divisor <= q:
        if q % divisor == 0:
            return False
        divisor += 2
    return True


def incidence_projective_plane(q: int) -> Graph:
    """Point–line incidence graph of the projective plane ``PG(2, q)``, prime ``q``.

    This bipartite graph has ``2(q^2 + q + 1)`` nodes, ``(q + 1)(q^2 + q + 1)``
    edges, and girth 6; asymptotically it achieves the Moore bound
    ``b(n, 5) = Θ(n^{3/2})``, which makes it the densest available
    girth-``> 5`` ingredient for the lower-bound product construction.

    Only prime ``q`` is supported (arithmetic is over ``GF(q)`` directly);
    prime powers would require field-extension arithmetic the experiments do
    not need.

    Points are labelled ``("p", i)`` and lines ``("l", j)``.
    """
    if not _is_prime(q):
        raise ValueError(f"q must be prime, got {q}")

    def normalize(vector: tuple[int, int, int]) -> tuple[int, int, int]:
        # Scale so the first nonzero coordinate is 1 (canonical projective point).
        for coordinate in vector:
            if coordinate % q != 0:
                inverse = pow(coordinate, q - 2, q)
                return tuple((value * inverse) % q for value in vector)  # type: ignore[return-value]
        raise ValueError("zero vector has no projective normalisation")

    points: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int, int]] = set()
    for x in range(q):
        for y in range(q):
            for z in range(q):
                if x == y == z == 0:
                    continue
                canonical = normalize((x, y, z))
                if canonical not in seen:
                    seen.add(canonical)
                    points.append(canonical)
    # In PG(2, q) lines are also indexed by projective triples; a point lies on
    # a line iff their dot product vanishes mod q.
    lines = list(points)
    graph = Graph(name=f"PG(2,{q})-incidence")
    graph.metadata.update({"family": "projective_plane_incidence", "q": q, "girth": 6})
    for index, point in enumerate(points):
        graph.add_node(("p", index))
    for index, line in enumerate(lines):
        graph.add_node(("l", index))
    for pi, point in enumerate(points):
        for li, line in enumerate(lines):
            if sum(a * b for a, b in zip(point, line)) % q == 0:
                graph.add_edge(("p", pi), ("l", li))
    return graph


def high_girth_greedy(n: int, girth_target: int, *, rng=None,
                      attempts_per_edge: int = 1) -> Graph:
    """Random greedy graph on ``n`` nodes with girth ``> girth_target``.

    Candidate edges are examined in random order and added whenever they do
    not close a cycle of length ``<= girth_target``.  The result is maximal
    with respect to the examined order, giving a dense-ish high-girth graph of
    any requested size — the flexible counterpart to the fixed-size cages,
    used to scale the lower-bound construction (E4).
    """
    from repro.graph.girth import _bounded_hop_distance  # local import to avoid cycle

    if girth_target < 3:
        raise ValueError("girth_target must be at least 3")
    rng = ensure_rng(rng)
    graph = Graph(nodes=range(n), name=f"high_girth(n={n},g>{girth_target})")
    graph.metadata.update({"family": "high_girth_greedy", "n": n,
                           "girth_target": girth_target})
    candidates = list(itertools.combinations(range(n), 2))
    rng.shuffle(candidates)
    for u, v in candidates:
        # Adding (u, v) creates a cycle of length <= girth_target iff u and v
        # are already within girth_target - 1 hops of each other.
        distance = _bounded_hop_distance(graph, u, v, girth_target - 1)
        if distance > girth_target - 1:
            graph.add_edge(u, v)
    return graph


CAGES = {
    5: petersen_graph,
    6: heawood_graph,
    7: mcgee_graph,
    8: tutte_coxeter_graph,
}


def cage(girth_value: int) -> Graph:
    """Return the degree-3 cage of the requested girth (5, 6, 7, or 8)."""
    try:
        return CAGES[girth_value]()
    except KeyError:
        raise ValueError(
            f"no built-in cage of girth {girth_value}; available: {sorted(CAGES)}"
        ) from None


def ensure_connected_gnm(n: int, m: int, *, rng=None, weighted: bool = False,
                         max_attempts: int = 20) -> Graph:
    """Sample connected ``G(n, m)`` graphs, retrying the RNG stream if needed.

    ``gnm(..., connected=True)`` is already connected by construction; this
    helper exists for callers who want plain uniform ``G(n, m)`` conditioned
    on connectivity (used by a few tests to cross-check the two samplers).
    """
    rng = ensure_rng(rng)
    for attempt in range(max_attempts):
        graph = gnm(n, m, rng=rng.spawn("attempt", attempt), weighted=weighted)
        if is_connected(graph):
            return graph
    return gnm(n, m, rng=rng.spawn("fallback"), weighted=weighted, connected=True)
