"""Girth computation (in number of edges, ignoring weights).

The paper's central quantity ``b(n, k)`` counts edges in graphs of girth
``> k``, and blocking sets (Definition 3) talk about cycles on at most ``k``
edges; both are *hop-count* notions, so all routines here treat the graph as
unweighted.

The exact algorithm used is the per-edge formulation: the shortest cycle
through an edge ``{u, v}`` is that edge plus the shortest ``u``–``v`` path in
the graph with the edge removed, and the girth is the minimum over all edges.
This is ``O(m (n + m))`` in the worst case but every search is depth-bounded
by the best cycle found so far (and by the caller's ``cutoff``), which makes
the common "girth > k + 1?" checks fast.  Unlike the BFS-per-vertex bound it
has no parity/tree-edge corner cases, so it doubles as the independent oracle
the tests use.
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional, Tuple

from repro.graph.core import Node, edge_key
from repro.graph.views import ExclusionView


def _bounded_hop_distance(graph, source: Node, target: Node,
                          max_hops: Optional[int],
                          skip_edge: Optional[Tuple[Node, Node]] = None) -> float:
    """Unweighted distance from ``source`` to ``target``.

    The search is abandoned (returning ``inf``) once all nodes within
    ``max_hops`` hops have been expanded, and the edge ``skip_edge`` (in either
    orientation) is ignored if given.
    """
    if source == target:
        return 0.0
    skip = edge_key(*skip_edge) if skip_edge is not None else None
    dist: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        next_dist = dist[node] + 1
        if max_hops is not None and next_dist > max_hops:
            continue
        for neighbor in graph.neighbors(node):
            if skip is not None and edge_key(node, neighbor) == skip:
                continue
            if neighbor in dist:
                continue
            if neighbor == target:
                return float(next_dist)
            dist[neighbor] = next_dist
            queue.append(neighbor)
    return math.inf


def shortest_cycle_through_edge(graph, u: Node, v: Node,
                                cutoff: Optional[int] = None) -> Tuple[float, List[Node]]:
    """Shortest (hop-count) cycle containing the edge ``{u, v}``.

    Returns ``(length, cycle_nodes)`` where ``cycle_nodes`` lists the cycle
    starting at ``u`` and ending at ``v`` (the closing edge ``v``–``u`` is
    implicit).  If no cycle of length ``<= cutoff`` (or none at all) contains
    the edge, returns ``(inf, [])``.
    """
    if not graph.has_edge(u, v):
        raise ValueError(f"edge ({u!r}, {v!r}) not in graph")
    max_hops = None if cutoff is None else cutoff - 1
    view = ExclusionView(graph, excluded_edges=[(u, v)])
    # BFS with parents so the witness path can be reconstructed.
    dist: dict[Node, int] = {u: 0}
    parent: dict[Node, Optional[Node]] = {u: None}
    queue: deque[Node] = deque([u])
    found = False
    while queue and not found:
        node = queue.popleft()
        next_dist = dist[node] + 1
        if max_hops is not None and next_dist > max_hops:
            continue
        for neighbor in view.neighbors(node):
            if neighbor in dist:
                continue
            dist[neighbor] = next_dist
            parent[neighbor] = node
            if neighbor == v:
                found = True
                break
            queue.append(neighbor)
    if v not in dist:
        return math.inf, []
    path: List[Node] = []
    node: Optional[Node] = v
    while node is not None:
        path.append(node)
        node = parent[node]
    path.reverse()  # u ... v
    return float(dist[v] + 1), path


def girth(graph, cutoff: Optional[int] = None) -> float:
    """Exact girth of ``graph`` in edges; ``inf`` for forests.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.Graph` or :class:`~repro.graph.ExclusionView`.
    cutoff:
        If given, only cycles of length at most ``cutoff`` matter to the
        caller; the return value is exact whenever it is ``<= cutoff`` and is
        ``inf`` otherwise.  Passing ``k + 1`` makes the frequent
        "does the pruned graph have girth > k + 1?" checks much cheaper.
    """
    best = math.inf
    for u, v, _ in graph.edges():
        limit = best if cutoff is None else min(best, cutoff + 1)
        max_hops = None if limit == math.inf else int(limit) - 2
        if max_hops is not None and max_hops < 1:
            # Even a cycle of length ``limit - 1`` is impossible to beat.
            continue
        through = 1.0 + _bounded_hop_distance(graph, u, v, max_hops, skip_edge=(u, v))
        if through < best:
            best = through
            if best == 3:
                return 3.0
    if cutoff is not None and best > cutoff:
        return math.inf
    return best


def has_cycle_at_most(graph, k: int) -> bool:
    """Whether the graph contains a cycle on at most ``k`` edges."""
    if k < 3:
        return False
    return girth(graph, cutoff=k) <= k


def girth_exceeds(graph, k: int) -> bool:
    """Whether ``girth(graph) > k`` — the property Lemma 4's output must have."""
    return not has_cycle_at_most(graph, k)


def enumerate_short_cycles(graph, max_length: int) -> List[List[Node]]:
    """Enumerate all simple cycles with at most ``max_length`` edges.

    Cycles are returned as node lists (without repeating the starting node)
    and each cycle appears exactly once, deduplicated by its edge set.

    The running time is exponential in ``max_length``, but ``max_length`` is
    ``k + 1`` (a small constant) wherever the library uses this.  It is the
    independent oracle used to *verify* blocking sets (Definition 3), not to
    construct them.
    """
    if max_length < 3:
        return []
    nodes = list(graph.nodes())
    index = {node: position for position, node in enumerate(nodes)}
    found: dict[frozenset, List[Node]] = {}

    def extend(path: List[Node], on_path: set) -> None:
        start, last = path[0], path[-1]
        for neighbor in graph.neighbors(last):
            if neighbor == start and len(path) >= 3:
                edges = frozenset(
                    edge_key(path[i], path[(i + 1) % len(path)])
                    for i in range(len(path))
                )
                found.setdefault(edges, list(path))
                continue
            if neighbor in on_path:
                continue
            # Only extend through nodes with a larger index than the start so
            # each cycle is discovered from its minimum-index vertex only.
            if index[neighbor] <= index[start]:
                continue
            if len(path) + 1 > max_length:
                continue
            path.append(neighbor)
            on_path.add(neighbor)
            extend(path, on_path)
            on_path.discard(neighbor)
            path.pop()

    for start in nodes:
        extend([start], {start})
    return list(found.values())


def cycle_edges(cycle: List[Node]) -> List[Tuple[Node, Node]]:
    """Return the canonicalised edge list of a cycle given as a node list."""
    return [
        edge_key(cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
    ]
