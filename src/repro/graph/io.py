"""Graph serialisation: weighted edge lists and JSON documents.

Two formats are supported:

* **edge list** — one ``u v weight`` line per edge, ``#``-prefixed comments,
  the format most graph datasets ship in;
* **JSON** — a self-describing document carrying the node list (so isolated
  vertices survive a round trip), the edge list, the graph name, and the
  JSON-serialisable part of ``metadata``.

Node labels in edge lists are parsed as integers when possible and kept as
strings otherwise; JSON restores integer labels exactly and stringifies
everything else.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Union

from repro.graph.core import Graph, GraphError

PathLike = Union[str, Path]


def parse_node(token: str):
    """Parse a node label token: an integer when possible, a string otherwise.

    The convention of the edge-list reader, shared by every place user text
    names a node (CLI fault specs, query endpoints).
    """
    try:
        return int(token)
    except ValueError:
        return token


_parse_node = parse_node


# --------------------------------------------------------------------------
# Edge lists
# --------------------------------------------------------------------------

def write_edge_list(graph: Graph, path: PathLike, *, header: bool = True) -> None:
    """Write ``graph`` as a whitespace-separated edge list."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# {graph.name or 'graph'}\n")
            handle.write(f"# nodes={graph.number_of_nodes()} edges={graph.number_of_edges()}\n")
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w}\n")


def read_edge_list(path: PathLike, *, name: str = "") -> Graph:
    """Read an edge list written by :func:`write_edge_list` (or compatible files).

    Lines may have two tokens (``u v``, weight 1) or three (``u v weight``).
    Blank lines and ``#`` comments are skipped.
    """
    path = Path(path)
    graph = Graph(name=name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            tokens = stripped.split()
            if len(tokens) == 2:
                u, v = map(_parse_node, tokens)
                graph.add_edge(u, v)
            elif len(tokens) == 3:
                u, v = map(_parse_node, tokens[:2])
                graph.add_edge(u, v, float(tokens[2]))
            else:
                raise GraphError(
                    f"{path}:{line_number}: expected 2 or 3 tokens, got {len(tokens)}"
                )
    return graph


# --------------------------------------------------------------------------
# JSON
# --------------------------------------------------------------------------

def _json_safe_metadata(metadata: dict) -> dict:
    safe = {}
    for key, value in metadata.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            continue
        safe[key] = value
    return safe


def graph_to_json(graph: Graph) -> dict:
    """Return a JSON-serialisable dict describing ``graph``."""
    return {
        "format": "repro-graph",
        "version": 1,
        "name": graph.name,
        "nodes": list(graph.nodes()),
        "edges": [[u, v, w] for u, v, w in graph.edges()],
        "metadata": _json_safe_metadata(graph.metadata),
    }


def graph_from_json(document: dict) -> Graph:
    """Rebuild a :class:`Graph` from :func:`graph_to_json` output."""
    if document.get("format") != "repro-graph":
        raise GraphError("not a repro-graph JSON document")
    graph = Graph(name=document.get("name", ""))
    for node in document.get("nodes", []):
        graph.add_node(_restore_node(node))
    for u, v, w in document.get("edges", []):
        graph.add_edge(_restore_node(u), _restore_node(v), float(w))
    graph.metadata.update(document.get("metadata", {}))
    return graph


def _restore_node(node):
    # JSON turns tuples into lists; restore them so product-graph labels like
    # ("p", 3) round trip.  Nested lists are restored recursively.
    if isinstance(node, list):
        return tuple(_restore_node(item) for item in node)
    return node


def write_json(graph: Graph, path: PathLike, *, indent: int = 2) -> None:
    """Serialise ``graph`` to a JSON file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(graph_to_json(graph), handle, indent=indent)
        handle.write("\n")


def read_json(path: PathLike) -> Graph:
    """Load a graph from a JSON file written by :func:`write_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return graph_from_json(json.load(handle))


# --------------------------------------------------------------------------
# Extension dispatch
# --------------------------------------------------------------------------

def load_graph_auto(path: PathLike) -> Graph:
    """Load a graph file, dispatching on extension (``.json`` vs edge list).

    This is the one place the "``.json`` means JSON, anything else means edge
    list" convention lives; the CLI and the engine's snapshot I/O both route
    through it.
    """
    path = Path(path)
    if path.suffix == ".json":
        return read_json(path)
    return read_edge_list(path)


def save_graph_auto(graph: Graph, path: PathLike) -> None:
    """Write a graph file, dispatching on extension (``.json`` vs edge list)."""
    path = Path(path)
    if path.suffix == ".json":
        write_json(graph, path)
    else:
        write_edge_list(graph, path)
