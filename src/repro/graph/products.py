"""Graph products.

The Cartesian product is the one the paper needs: the VFT lower-bound
construction of Bodwin–Dinitz–Parter–Williams (referenced in Section 1 and the
closing remark of Section 2) is the Cartesian product of an arbitrary graph of
girth ``> k + 1`` with a biclique on ``⌊f/2⌋`` nodes.  Tensor and strong
products are included because they share all the machinery and are useful for
generating additional structured workloads.

Product node labels are ``(a, b)`` pairs with ``a`` from the first factor and
``b`` from the second.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.graph.core import Graph, Node


def _product_skeleton(g: Graph, h: Graph, name: str) -> Graph:
    product = Graph(name=name)
    product.metadata.update({
        "family": "product",
        "left": g.name or "G",
        "right": h.name or "H",
    })
    for a in g.nodes():
        for b in h.nodes():
            product.add_node((a, b))
    return product


def cartesian_product(g: Graph, h: Graph,
                      weight_rule: str = "copy") -> Graph:
    """Cartesian product ``G □ H``.

    ``(a, b)`` is adjacent to ``(a', b')`` iff either ``a = a'`` and
    ``{b, b'} ∈ E(H)``, or ``b = b'`` and ``{a, a'} ∈ E(G)``.

    Parameters
    ----------
    weight_rule:
        ``"copy"`` (default) gives each product edge the weight of the factor
        edge it comes from; ``"unit"`` makes every product edge weight 1 (the
        lower-bound instances are unweighted, so they use ``"unit"``).
    """
    if weight_rule not in ("copy", "unit"):
        raise ValueError("weight_rule must be 'copy' or 'unit'")
    product = _product_skeleton(g, h, name=f"({g.name or 'G'})□({h.name or 'H'})")

    def weight_of(w: float) -> float:
        return w if weight_rule == "copy" else 1.0

    # Edges inherited from H (same first coordinate).
    for a in g.nodes():
        for b1, b2, w in h.edges():
            product.add_edge((a, b1), (a, b2), weight_of(w))
    # Edges inherited from G (same second coordinate).
    for b in h.nodes():
        for a1, a2, w in g.edges():
            product.add_edge((a1, b), (a2, b), weight_of(w))
    return product


def tensor_product(g: Graph, h: Graph) -> Graph:
    """Tensor (categorical) product ``G × H``.

    ``(a, b)`` is adjacent to ``(a', b')`` iff ``{a, a'} ∈ E(G)`` *and*
    ``{b, b'} ∈ E(H)``.  Edge weights are the sums of the factor weights.
    """
    product = _product_skeleton(g, h, name=f"({g.name or 'G'})x({h.name or 'H'})")
    for a1, a2, wg in g.edges():
        for b1, b2, wh in h.edges():
            product.add_edge((a1, b1), (a2, b2), wg + wh)
            product.add_edge((a1, b2), (a2, b1), wg + wh)
    return product


def strong_product(g: Graph, h: Graph) -> Graph:
    """Strong product ``G ⊠ H``: union of the Cartesian and tensor products."""
    product = cartesian_product(g, h)
    product.name = f"({g.name or 'G'})⊠({h.name or 'H'})"
    for a1, a2, wg in g.edges():
        for b1, b2, wh in h.edges():
            if not product.has_edge((a1, b1), (a2, b2)):
                product.add_edge((a1, b1), (a2, b2), wg + wh)
            if not product.has_edge((a1, b2), (a2, b1)):
                product.add_edge((a1, b2), (a2, b1), wg + wh)
    return product


def relabel_product_nodes(product: Graph) -> Tuple[Graph, dict]:
    """Relabel a product graph's ``(a, b)`` nodes to integers ``0..n-1``.

    Returns the relabelled graph and the ``(a, b) -> int`` mapping; useful when
    feeding product instances to code that expects integer nodes (e.g. the
    CLI's edge-list output).
    """
    return product.with_integer_labels()
