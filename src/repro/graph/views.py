"""Read-only graph views, most importantly "graph minus a fault set".

The FT greedy algorithm repeatedly asks for distances in ``H \\ F`` for many
candidate fault sets ``F``.  Copying ``H`` for every candidate would dominate
the runtime, so :class:`ExclusionView` exposes the same adjacency interface as
:class:`repro.graph.Graph` while filtering out excluded vertices and edges on
the fly.  The shortest-path routines in :mod:`repro.paths` accept either type.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, Mapping, Optional, Tuple

from repro.graph.core import Graph, GraphError, Node, edge_key


class ExclusionView:
    """A live view of ``graph`` with some vertices and/or edges hidden.

    The view never copies adjacency data; it holds the excluded vertex set and
    the excluded (canonicalised) edge set and filters during iteration.  It is
    therefore O(1) to construct, which matters inside branch-and-bound fault
    search where thousands of views are created per spanner edge.

    Parameters
    ----------
    graph:
        The underlying graph (or another view; nesting is allowed).
    excluded_nodes:
        Vertices to hide; incident edges are hidden implicitly.
    excluded_edges:
        Edges to hide, given as ``(u, v)`` pairs in either orientation.
    """

    __slots__ = ("_graph", "_excluded_nodes", "_excluded_edges")

    def __init__(
        self,
        graph: "Graph | ExclusionView",
        excluded_nodes: Optional[Iterable[Node]] = None,
        excluded_edges: Optional[Iterable[Tuple[Node, Node]]] = None,
    ):
        self._graph = graph
        self._excluded_nodes: frozenset = frozenset(excluded_nodes or ())
        self._excluded_edges: frozenset = frozenset(
            edge_key(u, v) for u, v in (excluded_edges or ())
        )

    # ---------------------------------------------------------------- nodes
    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is visible in the view."""
        return node not in self._excluded_nodes and self._graph.has_node(node)

    def nodes(self) -> Iterator[Node]:
        """Iterate visible nodes in the underlying insertion order."""
        for node in self._graph.nodes():
            if node not in self._excluded_nodes:
                yield node

    def number_of_nodes(self) -> int:
        """Number of visible nodes."""
        return sum(1 for _ in self.nodes())

    # ---------------------------------------------------------------- edges
    def _edge_visible(self, u: Node, v: Node) -> bool:
        if u in self._excluded_nodes or v in self._excluded_nodes:
            return False
        return edge_key(u, v) not in self._excluded_edges

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the edge ``{u, v}`` is visible."""
        return self._graph.has_edge(u, v) and self._edge_visible(u, v)

    def weight(self, u: Node, v: Node) -> float:
        """Weight of a visible edge; raises :class:`GraphError` otherwise."""
        if not self._edge_visible(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is excluded from the view")
        return self._graph.weight(u, v)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate visible edges as ``(u, v, weight)``."""
        for u, v, w in self._graph.edges():
            if self._edge_visible(u, v):
                yield (u, v, w)

    def number_of_edges(self) -> int:
        """Number of visible edges."""
        return sum(1 for _ in self.edges())

    # ------------------------------------------------------------ adjacency
    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate visible neighbours of a visible node."""
        if node in self._excluded_nodes:
            raise GraphError(f"node {node!r} is excluded from the view")
        for neighbor in self._graph.neighbors(node):
            if self._edge_visible(node, neighbor):
                yield neighbor

    def adjacency(self, node: Node) -> Mapping[Node, float]:
        """Visible neighbour→weight mapping of ``node``.

        Unlike :meth:`Graph.adjacency` this may build a filtered dict when
        exclusions touch the node's neighbourhood; when nothing nearby is
        excluded it returns the underlying dict directly (no copy).
        """
        if node in self._excluded_nodes:
            raise GraphError(f"node {node!r} is excluded from the view")
        base = self._graph.adjacency(node)
        if not self._excluded_nodes and not self._excluded_edges:
            return base
        return {
            neighbor: weight
            for neighbor, weight in base.items()
            if self._edge_visible(node, neighbor)
        }

    def degree(self, node: Node) -> int:
        """Degree of ``node`` counting only visible edges."""
        return sum(1 for _ in self.neighbors(node))

    # -------------------------------------------------------------- exports
    def materialize(self, name: str = "") -> Graph:
        """Copy the visible part of the view into a standalone :class:`Graph`."""
        result = Graph(name=name)
        for node in self.nodes():
            result.add_node(node)
        for u, v, w in self.edges():
            result.add_edge(u, v, w)
        return result

    @property
    def excluded_nodes(self) -> AbstractSet[Node]:
        """The hidden vertex set."""
        return self._excluded_nodes

    @property
    def excluded_edges(self) -> AbstractSet[Tuple[Node, Node]]:
        """The hidden (canonicalised) edge set."""
        return self._excluded_edges

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __iter__(self) -> Iterator[Node]:
        return self.nodes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ExclusionView -{len(self._excluded_nodes)} nodes "
            f"-{len(self._excluded_edges)} edges over {self._graph!r}>"
        )


def graph_minus(
    graph: "Graph | ExclusionView",
    nodes: Optional[Iterable[Node]] = None,
    edges: Optional[Iterable[Tuple[Node, Node]]] = None,
) -> ExclusionView:
    """Return a view of ``graph`` with the given vertices and edges removed.

    This is the ``H \\ F`` operation from the paper.  For a vertex fault set
    pass ``nodes=F``; for an edge fault set pass ``edges=F``.
    """
    return ExclusionView(graph, excluded_nodes=nodes, excluded_edges=edges)


def induced_subgraph(graph: Graph, nodes: Iterable[Node]) -> Graph:
    """Materialised induced subgraph on ``nodes`` (alias of :meth:`Graph.subgraph`)."""
    return graph.subgraph(nodes)
