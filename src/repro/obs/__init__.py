"""Observability: the metrics registry, span tracer, and exporters.

The telemetry layer every subsystem reports through (see the README's
"Telemetry and tracing" section):

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram`` with
  labeled children on a thread-safe :class:`MetricsRegistry`; components own
  per-instance registries attached weakly to the process-wide default
  (:func:`get_registry`), and :func:`merge_counters` is the one deterministic
  fold for counters shipped back from worker processes and chunked sweeps.
* :mod:`repro.obs.trace` — :class:`SpanTracer`: nested wall-time spans with
  counter-delta attribution, written as JSONL (``--trace`` /
  ``REPRO_TRACE``).
* :mod:`repro.obs.export` — Prometheus text rendering (the future serving
  daemon's ``/metrics`` body) and the ``--metrics-json`` / ``REPRO_METRICS``
  document read by ``repro-spanner stats``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    component_registry,
    get_registry,
    merge_counters,
    merge_snapshots,
)
from repro.obs.trace import TRACE_ENV_VAR, SpanTracer, get_tracer, load_spans, span_tree
from repro.obs.export import (
    METRICS_ENV_VAR,
    METRICS_SCHEMA,
    load_metrics_json,
    metrics_document,
    render_metrics_table,
    render_prometheus,
    write_metrics_json,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanTracer",
    "TRACE_ENV_VAR",
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA",
    "component_registry",
    "get_registry",
    "get_tracer",
    "load_metrics_json",
    "load_spans",
    "merge_counters",
    "merge_snapshots",
    "metrics_document",
    "render_metrics_table",
    "render_prometheus",
    "span_tree",
    "write_metrics_json",
]
