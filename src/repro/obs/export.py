"""Render metric snapshots: Prometheus text format, tables, and JSON files.

The input everywhere is the plain-dict snapshot of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`.  Three renderings:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` + samples).  Dotted metric names become
  underscore families under the ``repro_`` prefix
  (``engine.kernel_calls`` → ``repro_engine_kernel_calls``).  This is the
  body the future serving daemon will return from ``/metrics``.
* :func:`render_metrics_table` — a human table for ``repro-spanner stats``.
* :func:`write_metrics_json` / :func:`load_metrics_json` — the schema-stable
  JSON document written by ``--metrics-json`` / ``REPRO_METRICS`` and read
  back by ``repro-spanner stats``.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.metrics import MetricsRegistry, _parse_flat_name
from repro.utils.tables import Table

__all__ = [
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA",
    "load_metrics_json",
    "metrics_document",
    "prometheus_name",
    "render_metrics_table",
    "render_prometheus",
    "write_metrics_json",
]

#: Environment variable the CLI consults for a metrics-JSON output path.
METRICS_ENV_VAR = "REPRO_METRICS"

#: Schema tag stamped into (and required from) metrics JSON documents.
METRICS_SCHEMA = "repro.metrics/v1"

#: Prefix of every exported Prometheus family.
_PREFIX = "repro_"


def prometheus_name(name: str) -> str:
    """Map a dotted metric name onto a Prometheus family name."""
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    return _PREFIX + cleaned


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _labels_suffix(labels: Optional[Mapping[str, str]],
                   extra: Optional[Mapping[str, str]] = None) -> str:
    merged: Dict[str, str] = dict(labels or {})
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{key}="{merged[key]}"' for key in sorted(merged))
    return "{" + body + "}"


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """The Prometheus text exposition of one snapshot document."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        family = prometheus_name(name)
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {entry['kind']}")
        if entry["kind"] == "histogram":
            _render_histogram(lines, family, None, entry)
            for key, child in sorted(entry.get("children", {}).items()):
                _, labels = _parse_flat_name("_{" + key + "}")
                _render_histogram(lines, family, labels, child)
        else:
            lines.append(f"{family} {_format_value(entry['value'])}")
            for key, value in sorted(entry.get("children", {}).items()):
                _, labels = _parse_flat_name("_{" + key + "}")
                lines.append(f"{family}{_labels_suffix(labels)} "
                             f"{_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _render_histogram(lines: List[str], family: str,
                      labels: Optional[Mapping[str, str]],
                      entry: Mapping[str, Any]) -> None:
    for le, cumulative in entry["buckets"]:
        shown = le if le == "+Inf" else _format_value(float(le))
        suffix = _labels_suffix(labels, {"le": shown})
        lines.append(f"{family}_bucket{suffix} {cumulative}")
    lines.append(f"{family}_sum{_labels_suffix(labels)} "
                 f"{_format_value(entry['sum'])}")
    lines.append(f"{family}_count{_labels_suffix(labels)} {entry['count']}")


def render_metrics_table(snapshot: Mapping[str, Any]) -> Table:
    """Flat name/kind/value table of a snapshot (histograms as count/mean)."""
    table = Table(columns=["metric", "kind", "value"], title="metrics")
    for name in sorted(snapshot):
        entry = snapshot[name]
        if entry["kind"] == "histogram":
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            value = f"count={entry['count']} mean={mean:.6g}"
        else:
            value = entry["value"]
        table.add_row(metric=name, kind=entry["kind"], value=value)
        for key, child in sorted(entry.get("children", {}).items()):
            if entry["kind"] == "histogram":
                mean = child["sum"] / child["count"] if child["count"] else 0.0
                value = f"count={child['count']} mean={mean:.6g}"
            else:
                value = child
            table.add_row(metric=f"{name}{{{key}}}", kind=entry["kind"],
                          value=value)
    return table


# ---------------------------------------------------------------------------
# The metrics JSON document (``--metrics-json`` / ``REPRO_METRICS``)
# ---------------------------------------------------------------------------

def metrics_document(source: Union[MetricsRegistry, Mapping[str, Any]],
                     *, meta: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Wrap a snapshot (or a registry, snapshotted now) with the schema tag."""
    snapshot = (source.snapshot() if isinstance(source, MetricsRegistry)
                else dict(source))
    document: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "generated_unix": time.time(),
        "metrics": snapshot,
    }
    if meta:
        document["meta"] = dict(meta)
    return document


def write_metrics_json(path: str,
                       source: Union[MetricsRegistry, Mapping[str, Any]],
                       *, meta: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Write the metrics JSON document for ``source`` to ``path``."""
    document = metrics_document(source, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def load_metrics_json(path: str) -> Dict[str, Any]:
    """Read a metrics JSON document back, validating the schema tag."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"{path} is not a {METRICS_SCHEMA} document (write one with "
            f"--metrics-json or the {METRICS_ENV_VAR} environment variable)")
    return document
