"""Process-wide metrics: counters, gauges, and histograms with labeled children.

One :class:`MetricsRegistry` owns a namespace of metrics.  Components that
want their own counters (a :class:`~repro.engine.engine.QueryEngine`, an
oracle, a :class:`~repro.dynamic.maintain.DynamicSpanner`) create a
*component registry* via :func:`component_registry`, which attaches it to the
process-wide default registry through a weak reference: the component reads
and bumps its own counters with zero indirection, while
``get_registry().snapshot()`` folds every live component into one
process-level view for export (``--metrics-json``, the Prometheus rendering
in :mod:`repro.obs.export`, and the future serving daemon's ``/metrics``).

Conventions
-----------
* Metric names are dotted lowercase (``engine.kernel_calls``); the exporter
  turns them into Prometheus families (``repro_engine_kernel_calls``).
* Labeled children are flat-keyed as ``name{key="value"}`` with sorted label
  keys; label values must not contain ``"`` or ``,`` (kernel/backend names
  never do).
* All mutations take the registry lock, so concurrent threads never lose an
  increment; the cost is ~100ns per bump — negligible next to the kernel
  runs the counters count, and benchmarked ≤ 2% end-to-end by
  ``benchmarks/bench_engine.py``.
* Counters accept float amounts (``busy_seconds`` style accumulators share
  the counter machinery) but must never decrease; use a :class:`Gauge` for
  values that go down.

Merging
-------
:func:`merge_counters` is the single fold used everywhere chunked work ships
counters back to a parent: worker-process metric deltas
(:mod:`repro.runtime.backend`), the speculative-batch fold in the parallel
FT-greedy builder and the dynamic repair sweep, and the engine's pooled
audit fold.  It sums a flat ``{name: amount}`` mapping into either a plain
dict or a registry, so parallel runs report the same counters as serial ones
(property-tested in ``tests/test_obs.py``).
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, MutableMapping, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "component_registry",
    "get_registry",
    "merge_counters",
    "merge_snapshots",
    "DEFAULT_BUCKETS",
    "SIZE_BUCKETS",
]

#: Default histogram buckets (seconds): microseconds through a minute.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Power-of-two buckets for count-valued histograms (batch occupancy,
#: dirty-region sizes).
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)


def _label_key(labels: Mapping[str, Any]) -> str:
    """Canonical flat label suffix: ``key="value"`` pairs, sorted by key."""
    return ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))


def _parse_flat_name(flat: str) -> Tuple[str, Optional[Dict[str, str]]]:
    """Invert the flat-key format: ``name{k="v"}`` → ``(name, {k: v})``."""
    if not flat.endswith("}") or "{" not in flat:
        return flat, None
    name, _, body = flat[:-1].partition("{")
    labels: Dict[str, str] = {}
    for pair in body.split(","):
        key, _, value = pair.partition("=")
        labels[key] = value.strip('"')
    return name, labels


class _Metric:
    """Shared labeled-children machinery of the three metric kinds."""

    kind = "untyped"
    __slots__ = ("name", "help", "_lock", "_children", "__weakref__")

    def __init__(self, name: str, help: str = "", *,
                 _lock: Optional[threading.RLock] = None):
        self.name = name
        self.help = help
        # Children share the parent's lock: one registry, one lock.
        self._lock = _lock if _lock is not None else threading.RLock()
        self._children: Optional[Dict[str, "_Metric"]] = None

    def _new_child(self, flat_name: str) -> "_Metric":
        raise NotImplementedError

    def labels(self, **labels: Any) -> "_Metric":
        """The child metric for this label combination (get-or-create)."""
        if not labels:
            return self
        key = _label_key(labels)
        with self._lock:
            if self._children is None:
                self._children = {}
            child = self._children.get(key)
            if child is None:
                child = self._new_child(f"{self.name}{{{key}}}")
                self._children[key] = child
        return child

    def children(self) -> Dict[str, "_Metric"]:
        """Label-key → child mapping (empty when unlabeled)."""
        with self._lock:
            return dict(self._children) if self._children else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Counter(_Metric):
    """A monotonically increasing value (events, work units, busy seconds)."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name: str, help: str = "", *, _lock=None):
        super().__init__(name, help, _lock=_lock)
        self._value = 0

    def _new_child(self, flat_name: str) -> "Counter":
        return Counter(flat_name, self.help, _lock=self._lock)

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount!r})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0
            for child in self.children().values():
                child._reset()


class Gauge(_Metric):
    """A value that can go up and down (pool sizes, in-flight work)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, name: str, help: str = "", *, _lock=None):
        super().__init__(name, help, _lock=_lock)
        self._value = 0

    def _new_child(self, flat_name: str) -> "Gauge":
        return Gauge(flat_name, self.help, _lock=self._lock)

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0
            for child in self.children().values():
                child._reset()


class Histogram(_Metric):
    """Observation distribution with fixed buckets (latencies, sizes)."""

    kind = "histogram"
    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS, *, _lock=None):
        super().__init__(name, help, _lock=_lock)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._counts = [0] * (len(self.buckets) + 1)  # last slot: +Inf
        self._sum = 0.0
        self._count = 0

    def _new_child(self, flat_name: str) -> "Histogram":
        return Histogram(flat_name, self.help, self.buckets, _lock=self._lock)

    def observe(self, value: Union[int, float]) -> None:
        with self._lock:
            self._counts[bisect_left(self.buckets, value)] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` rows, +Inf last."""
        with self._lock:
            rows: List[Tuple[float, int]] = []
            running = 0
            for le, count in zip(self.buckets, self._counts):
                running += count
                rows.append((le, running))
            rows.append((float("inf"), running + self._counts[-1]))
            return rows

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0
            for child in self.children().values():
                child._reset()


class MetricsRegistry:
    """A namespace of metrics plus weakly-referenced component registries.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking twice
    for the same name returns the same object, asking with a conflicting
    kind raises ``ValueError``.  :meth:`snapshot` folds the registry's own
    metrics with every still-alive attached source into one plain-dict
    document (the schema consumed by :mod:`repro.obs.export`).
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}
        self._sources: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()

    # -------------------------------------------------------------- creation
    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, _lock=self._lock, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def metrics(self) -> Dict[str, _Metric]:
        """Name → metric mapping of this registry's own metrics."""
        with self._lock:
            return dict(self._metrics)

    # --------------------------------------------------------------- sources
    def attach(self, source: "MetricsRegistry") -> None:
        """Fold ``source`` into this registry's snapshots while it lives."""
        if source is self:
            raise ValueError("a registry cannot attach itself")
        with self._lock:
            self._sources.add(source)

    def sources(self) -> List["MetricsRegistry"]:
        """Currently-alive attached component registries."""
        with self._lock:
            return list(self._sources)

    # ------------------------------------------------------------- snapshots
    def snapshot(self, *, include_sources: bool = True) -> Dict[str, Any]:
        """Plain-dict view of every metric (merged across live sources).

        Schema (stable; consumed by :mod:`repro.obs.export` and the
        ``repro-spanner stats`` CLI)::

            {name: {"kind": "counter"|"gauge", "help": str, "value": number,
                    "children": {label_key: number}},
             name: {"kind": "histogram", "help": str, "count": int,
                    "sum": float, "buckets": [[le, cumulative], ...]}}

        ``children`` / empty entries are omitted when absent.
        """
        document: Dict[str, Any] = {}
        for name, metric in sorted(self.metrics().items()):
            document[name] = _metric_entry(metric)
        if include_sources:
            for source in self.sources():
                merge_snapshots(document, source.snapshot())
        return document

    def counters(self, *, include_sources: bool = False) -> Dict[str, float]:
        """Flat ``{name: value}`` of counters only (children flat-keyed).

        The cheap view used for span counter-delta attribution and worker
        metric capture; ``include_sources`` folds live component registries
        in (summing colliding names).
        """
        flat: Dict[str, float] = {}
        for name, metric in self.metrics().items():
            if metric.kind != "counter":
                continue
            if metric.value:
                flat[name] = flat.get(name, 0) + metric.value
            for child in metric.children().values():
                if child.value:
                    flat[child.name] = flat.get(child.name, 0) + child.value
        if include_sources:
            for source in self.sources():
                merge_counters(flat, source.counters())
        return flat

    def counters_delta(self, before: Mapping[str, float], *,
                       include_sources: bool = False) -> Dict[str, float]:
        """Nonzero counter movement since a prior :meth:`counters` snapshot."""
        delta: Dict[str, float] = {}
        for name, value in self.counters(include_sources=include_sources).items():
            moved = value - before.get(name, 0)
            if moved:
                delta[name] = moved
        return delta

    # -------------------------------------------------------------- mutation
    def merge_counters(self, flat: Mapping[str, float]) -> None:
        """Fold a flat counters mapping into this registry's own counters.

        Flat keys round-trip the labeled-child format, so deltas captured
        from one registry land on the equivalent (possibly labeled) counters
        of another.  This is the registry half of :func:`merge_counters`.
        """
        for flat_name, amount in flat.items():
            name, labels = _parse_flat_name(flat_name)
            counter = self.counter(name)
            if labels:
                counter = counter.labels(**labels)
            counter.inc(amount)

    def reset(self) -> None:
        """Zero every metric of this registry and its live sources."""
        for metric in self.metrics().values():
            metric._reset()
        for source in self.sources():
            source.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MetricsRegistry {self.name!r} metrics={len(self._metrics)} "
                f"sources={len(self.sources())}>")


def _metric_entry(metric: _Metric) -> Dict[str, Any]:
    """One snapshot entry for a metric (plus flattened children values)."""
    if metric.kind == "histogram":
        # The +Inf bound is encoded as the string "+Inf": float infinity is
        # not valid strict JSON, and the snapshot must round-trip json.dump.
        entry: Dict[str, Any] = {
            "kind": "histogram",
            "count": metric.count,
            "sum": metric.sum,
            "buckets": [["+Inf" if le == float("inf") else le, count]
                        for le, count in metric.cumulative_buckets()],
        }
    else:
        entry = {"kind": metric.kind, "value": metric.value}
    if metric.help:
        entry["help"] = metric.help
    children = metric.children()
    if children:
        entry["children"] = {
            key: (_metric_entry(child) if metric.kind == "histogram"
                  else child.value)
            for key, child in sorted(children.items())
        }
    return entry


def merge_snapshots(target: MutableMapping[str, Any],
                    source: Mapping[str, Any]) -> MutableMapping[str, Any]:
    """Fold one snapshot document into another (summing same-name metrics).

    Counters and gauges sum; histograms sum count/sum and per-``le`` bucket
    rows.  Used to aggregate component registries into the process view —
    the merge is commutative and associative, so source iteration order
    never changes the result.
    """
    for name, entry in source.items():
        held = target.get(name)
        if held is None:
            target[name] = _copy_entry(entry)
            continue
        if held["kind"] != entry["kind"]:
            raise ValueError(f"metric {name!r} merged as {held['kind']} "
                             f"and {entry['kind']}")
        if held["kind"] == "histogram":
            held["count"] += entry["count"]
            held["sum"] += entry["sum"]
            rows = {le: count for le, count in held["buckets"]}
            for le, count in entry["buckets"]:
                rows[le] = rows.get(le, 0) + count
            order = sorted(rows, key=lambda le: (float("inf") if le == "+Inf"
                                                 else float(le)))
            held["buckets"] = [[le, rows[le]] for le in order]
        else:
            held["value"] += entry["value"]
        for key, child in entry.get("children", {}).items():
            children = held.setdefault("children", {})
            if key not in children:
                children[key] = _copy_entry(child)
            elif held["kind"] == "histogram":
                merge_snapshots({"_": children[key]}, {"_": child})
            else:
                children[key] += child
    return target


def _copy_entry(entry: Any) -> Any:
    if not isinstance(entry, dict):
        return entry
    copy = dict(entry)
    if "buckets" in copy:
        copy["buckets"] = [list(row) for row in copy["buckets"]]
    if "children" in copy:
        copy["children"] = {key: _copy_entry(child)
                            for key, child in copy["children"].items()}
    return copy


def merge_counters(target: Union[MutableMapping[str, float], MetricsRegistry],
                   source: Mapping[str, float]) -> None:
    """Sum a flat ``{name: amount}`` counters mapping into ``target``.

    ``target`` may be a plain dict (local fold before a single registry
    write) or a :class:`MetricsRegistry` (direct fold).  This is *the*
    deterministic counter merge: every parallel consumer folds worker
    counters through it in chunk-submission order, which is what makes
    parallel runs report the same counters as serial ones.
    """
    if isinstance(target, MetricsRegistry):
        target.merge_counters(source)
        return
    for name, amount in source.items():
        target[name] = target.get(name, 0) + amount


# ---------------------------------------------------------------------------
# The process-wide default registry
# ---------------------------------------------------------------------------

_DEFAULT_REGISTRY = MetricsRegistry(name="process")


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (export surface of this process)."""
    return _DEFAULT_REGISTRY


def component_registry(name: str) -> MetricsRegistry:
    """A fresh registry attached (weakly) to the process default.

    Components own their registry — their counters read with zero
    indirection and die with the component — while the process snapshot
    keeps seeing them for as long as they live.
    """
    registry = MetricsRegistry(name=name)
    _DEFAULT_REGISTRY.attach(registry)
    return registry
