"""Span tracing: nested wall-time spans with counter-delta attribution.

A :class:`SpanTracer` writes one JSON line per *finished* span to a JSONL
sink.  Spans nest through a stack — a span opened while another is active
records that span as its parent — so a trace of ``repro-spanner build``
shows the ``verify`` phase inside the session, and the kernel work counters
that moved while each phase ran.

Schema (stable; one object per line, children appear before their parents
because lines are written at span *exit*)::

    {"name": str, "span_id": int, "parent_id": int | null,
     "start_unix": float, "seconds": float,
     "attrs": {...}, "counters": {flat_counter_name: moved_amount}}

``counters`` is the movement of the process registry's flat counter view
(:meth:`~repro.obs.metrics.MetricsRegistry.counters` including component
sources) between span start and end — attribution, not exclusivity: a parent
span's delta includes its children's.

Cost model: a disabled tracer hands out one shared no-op context manager, so
instrumented-but-idle code pays a single method call per span site.  An
enabled tracer pays two flat counter snapshots per span; spans therefore
wrap *phases and batches*, never per-query work.

Enable with ``repro-spanner ... --trace out.jsonl`` or ``REPRO_TRACE=out.jsonl``
(the CLI honours the environment variable; library users call
``get_tracer().configure(path)`` themselves).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "SpanTracer",
    "TRACE_ENV_VAR",
    "get_tracer",
    "load_spans",
    "span_tree",
]

#: Environment variable the CLI consults for a trace sink path.
TRACE_ENV_VAR = "REPRO_TRACE"


class _NullSpan:
    """Shared no-op span: the entire cost of tracing while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        """Attribute updates are dropped (no span is being recorded)."""


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span: entered → pushed on the stack, exited → one JSONL line."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "_start_unix", "_start_perf", "_counters_before")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start_unix = 0.0
        self._start_perf = 0.0
        self._counters_before: Dict[str, float] = {}

    def set(self, **attrs: Any) -> None:
        """Attach or update span attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self.tracer._enter(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self.tracer._exit(self)
        return None


class SpanTracer:
    """Nested span recorder writing JSONL; disabled until configured.

    Parameters
    ----------
    registry:
        The registry whose flat counter view spans attribute their work
        against; defaults to the process registry at configure time.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self._registry = registry
        self._sink: Optional[TextIO] = None
        self._owns_sink = False
        self._lock = threading.Lock()
        self._stack: List[int] = []
        self._next_id = 1

    # ------------------------------------------------------------- lifecycle
    @property
    def enabled(self) -> bool:
        return self._sink is not None

    def configure(self, sink: Union[str, TextIO], *,
                  registry: Optional[MetricsRegistry] = None) -> "SpanTracer":
        """Start writing spans to ``sink`` (a path, opened append, or a file)."""
        self.close()
        if registry is not None:
            self._registry = registry
        if isinstance(sink, str):
            self._sink = open(sink, "a", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
            self._owns_sink = False
        return self

    def close(self) -> None:
        """Stop tracing and close an owned sink (idempotent)."""
        sink, owned = self._sink, self._owns_sink
        self._sink = None
        self._owns_sink = False
        self._stack.clear()
        if sink is not None and owned:
            sink.close()

    # ----------------------------------------------------------------- spans
    def span(self, name: str, **attrs: Any):
        """A context manager recording one span (no-op while disabled)."""
        if self._sink is None:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def _enter(self, span: _Span) -> None:
        registry = self._registry if self._registry is not None else get_registry()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
            span.parent_id = self._stack[-1] if self._stack else None
            self._stack.append(span.span_id)
        span._counters_before = registry.counters(include_sources=True)
        span._start_unix = time.time()
        span._start_perf = time.perf_counter()

    def _exit(self, span: _Span) -> None:
        seconds = time.perf_counter() - span._start_perf
        registry = self._registry if self._registry is not None else get_registry()
        counters = registry.counters_delta(span._counters_before,
                                           include_sources=True)
        record = {
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start_unix": span._start_unix,
            "seconds": seconds,
            "attrs": span.attrs,
            "counters": counters,
        }
        with self._lock:
            # Exits may interleave oddly under exceptions; remove rather
            # than pop so a missed exit cannot corrupt later parentage.
            if span.span_id in self._stack:
                self._stack.remove(span.span_id)
            sink = self._sink
            if sink is not None:
                sink.write(json.dumps(record) + "\n")
                sink.flush()


# ---------------------------------------------------------------------------
# Reading traces back (tests, smoke checks, tooling)
# ---------------------------------------------------------------------------

def load_spans(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file into span records (file order = exit order)."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def span_tree(spans: List[Dict[str, Any]]) -> Dict[Optional[int], List[Dict[str, Any]]]:
    """Group spans by ``parent_id`` (``None`` keys the roots)."""
    tree: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in spans:
        tree.setdefault(span["parent_id"], []).append(span)
    return tree


_DEFAULT_TRACER = SpanTracer()


def get_tracer() -> SpanTracer:
    """The process-wide default tracer (disabled until configured)."""
    return _DEFAULT_TRACER
