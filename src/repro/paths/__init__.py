"""Shortest-path primitives.

Everything the spanner algorithms need: single-source Dijkstra, distance
queries that stop early once a budget is exceeded (the hot path of the greedy
algorithms), bidirectional search, unweighted BFS, and all-pairs helpers.
All functions accept either a :class:`repro.graph.Graph` or an
:class:`repro.graph.ExclusionView` (``H \\ F``).

Plain :class:`Graph` inputs are executed by the array-native CSR kernels in
:mod:`repro.paths.kernels` (compiled snapshots cached per graph version); the
``*_csr`` functions re-exported here are the raw kernels for callers that
manage their own snapshots and fault masks.

Kernels come in swappable backends (pure-Python ``loop``, vectorized
``numpy``) registered in :mod:`repro.paths.registry`; see
:func:`get_kernels`.  The re-exported ``*_csr`` names are the ``loop``
reference implementations.
"""

from repro.paths.dijkstra import (
    dijkstra_distances,
    dijkstra_tree,
    shortest_path,
    shortest_path_distance,
    bounded_distance,
    bidirectional_distance,
)
from repro.paths.bfs import bfs_distances, bfs_path, hop_distance, eccentricity
from repro.paths.apsp import all_pairs_distances, all_pairs_hop_distances, diameter
from repro.paths.kernels import (
    bounded_dijkstra_csr,
    bounded_dijkstra_path_csr,
    sssp_dijkstra_csr,
    multi_target_dijkstra_csr,
    bfs_distances_csr,
    bounded_bfs_csr,
)
from repro.paths.registry import (
    AUTO_NODE_THRESHOLD,
    KernelBackend,
    KernelLike,
    describe_kernel_backends,
    get_kernels,
    kernel_backend_names,
    register_kernel_backend,
)

__all__ = [
    "dijkstra_distances",
    "dijkstra_tree",
    "shortest_path",
    "shortest_path_distance",
    "bounded_distance",
    "bidirectional_distance",
    "bfs_distances",
    "bfs_path",
    "hop_distance",
    "eccentricity",
    "all_pairs_distances",
    "all_pairs_hop_distances",
    "diameter",
    "bounded_dijkstra_csr",
    "bounded_dijkstra_path_csr",
    "sssp_dijkstra_csr",
    "multi_target_dijkstra_csr",
    "bfs_distances_csr",
    "bounded_bfs_csr",
    "AUTO_NODE_THRESHOLD",
    "KernelBackend",
    "KernelLike",
    "describe_kernel_backends",
    "get_kernels",
    "kernel_backend_names",
    "register_kernel_backend",
]
