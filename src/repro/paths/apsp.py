"""All-pairs shortest paths and derived global statistics.

Used by the stretch-verification code (which must compare the spanner's
distances against the original graph's for every pair) and by the examples
when they report diameters and average stretch.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.graph.core import Graph
from repro.graph.csr import csr_snapshot
from repro.paths.bfs import bfs_distances
from repro.paths.dijkstra import dijkstra_distances
from repro.paths.kernels import bfs_distances_csr, sssp_dijkstra_csr

Node = Hashable


def all_pairs_distances(graph, *, unweighted: bool = False,
                        cutoff: Optional[float] = None) -> Dict[Node, Dict[Node, float]]:
    """Weighted (or hop) distances between all pairs, as a nested dict.

    Pairs separated by more than ``cutoff`` (or disconnected) are simply
    absent from the inner dictionaries, matching the single-source functions.
    Plain :class:`Graph` inputs compile one CSR snapshot and sweep the
    array-native kernels over every source.
    """
    result: Dict[Node, Dict[Node, float]] = {}
    if isinstance(graph, Graph):
        csr = csr_snapshot(graph)
        node_of = csr.node_of
        max_hops = None if cutoff is None else int(cutoff)
        for source_index, source in enumerate(node_of):
            if unweighted:
                dist, order = bfs_distances_csr(csr, source_index, max_hops)
                result[source] = {node_of[i]: float(dist[i]) for i in order}
            else:
                dist, order = sssp_dijkstra_csr(csr, source_index, cutoff)
                result[source] = {node_of[i]: dist[i] for i in order}
        return result
    for source in graph.nodes():
        if unweighted:
            max_hops = None if cutoff is None else int(cutoff)
            result[source] = {
                node: float(dist)
                for node, dist in bfs_distances(graph, source, max_hops=max_hops).items()
            }
        else:
            result[source] = dijkstra_distances(graph, source, cutoff=cutoff)
    return result


def all_pairs_hop_distances(graph) -> Dict[Node, Dict[Node, float]]:
    """Hop distances between all pairs (convenience wrapper)."""
    return all_pairs_distances(graph, unweighted=True)


def diameter(graph, *, unweighted: bool = False) -> float:
    """Largest finite pairwise distance (``0`` for graphs with < 2 nodes).

    Disconnected graphs return the largest distance *within* a component; use
    :func:`repro.graph.is_connected` first if that distinction matters.
    """
    best = 0.0
    for source, distances in all_pairs_distances(graph, unweighted=unweighted).items():
        for target, value in distances.items():
            if target != source and value > best and value != math.inf:
                best = value
    return best


def average_distance(graph, *, unweighted: bool = False) -> float:
    """Mean finite distance over all ordered pairs of distinct nodes."""
    total, pairs = 0.0, 0
    for source, distances in all_pairs_distances(graph, unweighted=unweighted).items():
        for target, value in distances.items():
            if target == source or value == math.inf:
                continue
            total += value
            pairs += 1
    return total / pairs if pairs else 0.0
