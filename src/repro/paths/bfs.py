"""Unweighted (hop-count) shortest paths.

Hop distances show up wherever the paper talks about cycles "on at most k
edges" (blocking sets, girth) and wherever a workload is unweighted — in the
unit-weight case BFS is both the faster and the exact choice, and the spanner
code automatically routes distance queries here when the graph is unweighted.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

Node = Hashable


def bfs_distances(graph, source: Node,
                  max_hops: Optional[int] = None) -> Dict[Node, int]:
    """Hop distances from ``source`` to every node within ``max_hops``."""
    if not graph.has_node(source):
        raise ValueError(f"source {source!r} not in graph")
    distances: Dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        next_dist = distances[node] + 1
        if max_hops is not None and next_dist > max_hops:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = next_dist
                queue.append(neighbor)
    return distances


def hop_distance(graph, source: Node, target: Node,
                 max_hops: Optional[int] = None) -> float:
    """Hop distance between two nodes; ``inf`` if unreachable within ``max_hops``."""
    if not graph.has_node(source) or not graph.has_node(target):
        return math.inf
    if source == target:
        return 0.0
    distances: Dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        next_dist = distances[node] + 1
        if max_hops is not None and next_dist > max_hops:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor in distances:
                continue
            if neighbor == target:
                return float(next_dist)
            distances[neighbor] = next_dist
            queue.append(neighbor)
    return math.inf


def bfs_path(graph, source: Node, target: Node,
             max_hops: Optional[int] = None) -> Tuple[float, List[Node]]:
    """Hop distance and one shortest (fewest-hop) path; ``(inf, [])`` if none."""
    if not graph.has_node(source) or not graph.has_node(target):
        return math.inf, []
    if source == target:
        return 0.0, [source]
    parents: Dict[Node, Node] = {}
    distances: Dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        next_dist = distances[node] + 1
        if max_hops is not None and next_dist > max_hops:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor in distances:
                continue
            distances[neighbor] = next_dist
            parents[neighbor] = node
            if neighbor == target:
                path: List[Node] = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return float(next_dist), path
            queue.append(neighbor)
    return math.inf, []


def eccentricity(graph, node: Node) -> float:
    """Maximum hop distance from ``node`` to any node reachable from it."""
    distances = bfs_distances(graph, node)
    if len(distances) <= 1:
        return 0.0
    return float(max(distances.values()))
