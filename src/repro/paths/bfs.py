"""Unweighted (hop-count) shortest paths.

Hop distances show up wherever the paper talks about cycles "on at most k
edges" (blocking sets, girth) and wherever a workload is unweighted — in the
unit-weight case BFS is both the faster and the exact choice, and the spanner
code automatically routes distance queries here when the graph is unweighted.

All three public queries share one frontier loop (:func:`_bfs_core`) with an
optional early-exit target and optional parent recording; plain
:class:`~repro.graph.core.Graph` inputs are dispatched to the array-native
kernels in :mod:`repro.paths.kernels` over a cached CSR snapshot.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph.core import Graph
from repro.graph.csr import csr_snapshot
from repro.paths.registry import KernelLike, get_kernels

Node = Hashable


def _bfs_core(graph, source: Node, max_hops: Optional[int] = None,
              target: Optional[Node] = None,
              parents: Optional[Dict[Node, Node]] = None
              ) -> Tuple[Dict[Node, int], Optional[int]]:
    """The shared BFS frontier loop.

    Expands hop layers from ``source`` up to ``max_hops``, optionally
    recording ``parents`` and early-exiting the moment ``target`` is
    discovered.  Returns ``(distances, target_distance)`` where
    ``target_distance`` is ``None`` unless the early exit fired.
    """
    distances: Dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        next_dist = distances[node] + 1
        if max_hops is not None and next_dist > max_hops:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor in distances:
                continue
            distances[neighbor] = next_dist
            if parents is not None:
                parents[neighbor] = node
            if neighbor == target:
                return distances, next_dist
            queue.append(neighbor)
    return distances, None


def bfs_distances(graph, source: Node,
                  max_hops: Optional[int] = None, *,
                  kernel: KernelLike = None) -> Dict[Node, int]:
    """Hop distances from ``source`` to every node within ``max_hops``."""
    if not graph.has_node(source):
        raise ValueError(f"source {source!r} not in graph")
    if isinstance(graph, Graph):
        csr = csr_snapshot(graph)
        kernels = get_kernels(kernel).resolve(csr)
        dist, order = kernels.bfs_distances_csr(csr, csr.index_of[source],
                                                max_hops)
        node_of = csr.node_of
        return {node_of[index]: dist[index] for index in order}
    distances, _ = _bfs_core(graph, source, max_hops)
    return distances


def hop_distance(graph, source: Node, target: Node,
                 max_hops: Optional[int] = None, *,
                 kernel: KernelLike = None) -> float:
    """Hop distance between two nodes; ``inf`` if unreachable within ``max_hops``."""
    if not graph.has_node(source) or not graph.has_node(target):
        return math.inf
    if source == target:
        return 0.0
    if isinstance(graph, Graph):
        csr = csr_snapshot(graph)
        kernels = get_kernels(kernel).resolve(csr)
        return kernels.bounded_bfs_csr(csr, csr.index_of[source],
                                       csr.index_of[target], max_hops)
    _, found = _bfs_core(graph, source, max_hops, target=target)
    return float(found) if found is not None else math.inf


def bfs_path(graph, source: Node, target: Node,
             max_hops: Optional[int] = None) -> Tuple[float, List[Node]]:
    """Hop distance and one shortest (fewest-hop) path; ``(inf, [])`` if none."""
    if not graph.has_node(source) or not graph.has_node(target):
        return math.inf, []
    if source == target:
        return 0.0, [source]
    parents: Dict[Node, Node] = {}
    _, found = _bfs_core(graph, source, max_hops, target=target, parents=parents)
    if found is None:
        return math.inf, []
    path: List[Node] = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return float(found), path


def eccentricity(graph, node: Node) -> float:
    """Maximum hop distance from ``node`` to any node reachable from it."""
    distances = bfs_distances(graph, node)
    if len(distances) <= 1:
        return 0.0
    return float(max(distances.values()))
