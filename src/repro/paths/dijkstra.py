"""Dijkstra variants.

The FT greedy algorithm asks one question over and over: *is the distance from
``u`` to ``v`` in ``H \\ F`` larger than ``k · w(u, v)``?*  Answering it does
not require the full shortest-path tree — :func:`bounded_distance` stops as
soon as the target is settled or the budget is exceeded, and is the routine
every oracle in :mod:`repro.spanners.fault_check` calls.

All functions take a graph-like object exposing ``nodes()``, ``neighbors()``,
``adjacency()`` and ``has_node()`` — i.e. either :class:`repro.graph.Graph`
or :class:`repro.graph.ExclusionView`.  Plain :class:`Graph` inputs are
dispatched to the array-native kernels in :mod:`repro.paths.kernels` over a
compiled CSR snapshot (cached per graph, keyed on :attr:`Graph.version`);
views and other duck-typed graphs fall back to the dict-based reference
implementations below, which the kernels mirror result-for-result.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from itertools import count
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph.core import Graph
from repro.graph.csr import csr_snapshot
from repro.paths.registry import KernelLike, get_kernels

Node = Hashable


def dijkstra_distances(graph, source: Node,
                       cutoff: Optional[float] = None, *,
                       kernel: KernelLike = None) -> Dict[Node, float]:
    """Single-source shortest-path distances from ``source``.

    Parameters
    ----------
    cutoff:
        If given, nodes farther than ``cutoff`` are omitted from the result
        and never expanded; unreachable nodes are always omitted.
    kernel:
        Kernel backend (name or :class:`~repro.paths.registry.KernelBackend`)
        for the CSR fast path; ``None`` auto-selects.
    """
    if not graph.has_node(source):
        raise ValueError(f"source {source!r} not in graph")
    if isinstance(graph, Graph):
        csr = csr_snapshot(graph)
        kernels = get_kernels(kernel).resolve(csr)
        dist, order = kernels.sssp_dijkstra_csr(csr, csr.index_of[source],
                                                cutoff)
        node_of = csr.node_of
        return {node_of[index]: dist[index] for index in order}
    distances: Dict[Node, float] = {}
    tiebreak = count()
    heap: List[Tuple[float, int, Node]] = [(0.0, next(tiebreak), source)]
    while heap:
        dist, _, node = heappop(heap)
        if node in distances:
            continue
        if cutoff is not None and dist > cutoff:
            continue
        distances[node] = dist
        for neighbor, weight in graph.adjacency(node).items():
            if neighbor in distances:
                continue
            candidate = dist + weight
            if cutoff is not None and candidate > cutoff:
                continue
            heappush(heap, (candidate, next(tiebreak), neighbor))
    return distances


def dijkstra_tree(graph, source: Node,
                  cutoff: Optional[float] = None
                  ) -> Tuple[Dict[Node, float], Dict[Node, Optional[Node]]]:
    """Distances and shortest-path-tree parents from ``source``."""
    if not graph.has_node(source):
        raise ValueError(f"source {source!r} not in graph")
    distances: Dict[Node, float] = {}
    parents: Dict[Node, Optional[Node]] = {}
    tiebreak = count()
    heap: List[Tuple[float, int, Node, Optional[Node]]] = [(0.0, next(tiebreak), source, None)]
    while heap:
        dist, _, node, parent = heappop(heap)
        if node in distances:
            continue
        if cutoff is not None and dist > cutoff:
            continue
        distances[node] = dist
        parents[node] = parent
        for neighbor, weight in graph.adjacency(node).items():
            if neighbor in distances:
                continue
            candidate = dist + weight
            if cutoff is not None and candidate > cutoff:
                continue
            heappush(heap, (candidate, next(tiebreak), neighbor, node))
    return distances, parents


def shortest_path_distance(graph, source: Node, target: Node, *,
                           kernel: KernelLike = None) -> float:
    """Distance from ``source`` to ``target`` (``inf`` if disconnected)."""
    return bounded_distance(graph, source, target, budget=math.inf,
                            kernel=kernel)


def shortest_path(graph, source: Node, target: Node) -> Tuple[float, List[Node]]:
    """Distance and one shortest path from ``source`` to ``target``.

    Returns ``(inf, [])`` when the target is unreachable.
    """
    if not graph.has_node(source):
        raise ValueError(f"source {source!r} not in graph")
    if not graph.has_node(target):
        raise ValueError(f"target {target!r} not in graph")
    if source == target:
        return 0.0, [source]
    distances, parents = dijkstra_tree(graph, source)
    if target not in distances:
        return math.inf, []
    path: List[Node] = []
    node: Optional[Node] = target
    while node is not None:
        path.append(node)
        node = parents[node]
    path.reverse()
    return distances[target], path


def bounded_distance(graph, source: Node, target: Node, budget: float, *,
                     kernel: KernelLike = None) -> float:
    """Distance from ``source`` to ``target``, or ``inf`` if it exceeds ``budget``.

    This is the innermost primitive of the whole library.  The search settles
    nodes in increasing distance order and terminates as soon as either the
    target is settled (exact distance returned, even if above the budget when
    it happens to be settled within it — callers only compare against the
    budget) or the smallest tentative distance exceeds ``budget`` (``inf``
    returned, meaning "farther than the budget").
    """
    if isinstance(graph, Graph):
        csr = csr_snapshot(graph)
        s = csr.index_of.get(source)
        t = csr.index_of.get(target)
        if s is None or t is None:
            return math.inf
        kernels = get_kernels(kernel).resolve(csr)
        return kernels.bounded_dijkstra_csr(csr, s, t, budget)
    if not graph.has_node(source) or not graph.has_node(target):
        return math.inf
    if source == target:
        return 0.0
    visited: set[Node] = set()
    tiebreak = count()
    heap: List[Tuple[float, int, Node]] = [(0.0, next(tiebreak), source)]
    while heap:
        dist, _, node = heappop(heap)
        if node in visited:
            continue
        if dist > budget:
            return math.inf
        if node == target:
            return dist
        visited.add(node)
        for neighbor, weight in graph.adjacency(node).items():
            if neighbor in visited:
                continue
            candidate = dist + weight
            if candidate <= budget:
                heappush(heap, (candidate, next(tiebreak), neighbor))
    return math.inf


def bounded_path(graph, source: Node, target: Node, budget: float, *,
                 kernel: KernelLike = None) -> Tuple[float, List[Node]]:
    """Like :func:`bounded_distance` but also returns a witness path.

    Used by the greedy path-packing fault oracle, which needs the internal
    vertices of a short path in order to block it.
    """
    if isinstance(graph, Graph):
        csr = csr_snapshot(graph)
        s = csr.index_of.get(source)
        t = csr.index_of.get(target)
        if s is None or t is None:
            return math.inf, []
        kernels = get_kernels(kernel).resolve(csr)
        distance, index_path = kernels.bounded_dijkstra_path_csr(
            csr, s, t, budget)
        node_of = csr.node_of
        return distance, [node_of[index] for index in index_path]
    if not graph.has_node(source) or not graph.has_node(target):
        return math.inf, []
    if source == target:
        return 0.0, [source]
    visited: set[Node] = set()
    parents: Dict[Node, Node] = {}
    tiebreak = count()
    heap: List[Tuple[float, int, Node, Optional[Node]]] = [(0.0, next(tiebreak), source, None)]
    while heap:
        dist, _, node, parent = heappop(heap)
        if node in visited:
            continue
        if dist > budget:
            return math.inf, []
        if parent is not None:
            parents[node] = parent
        if node == target:
            path: List[Node] = [target]
            while path[-1] != source:
                path.append(parents[path[-1]])
            path.reverse()
            return dist, path
        visited.add(node)
        for neighbor, weight in graph.adjacency(node).items():
            if neighbor in visited:
                continue
            candidate = dist + weight
            if candidate <= budget:
                heappush(heap, (candidate, next(tiebreak), neighbor, node))
    return math.inf, []


def bidirectional_distance(graph, source: Node, target: Node,
                           budget: float = math.inf) -> float:
    """Bidirectional Dijkstra distance query with an optional budget.

    Expands the smaller frontier of two simultaneous searches; terminates when
    the sum of the two frontier minima exceeds the best meeting distance (or
    the budget).  Exact, and typically ~2x faster than the unidirectional
    query on the random instances used in the benchmarks; exposed so the
    ablation benchmark (E8) can compare the two.
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return math.inf
    if source == target:
        return 0.0

    dist_forward: Dict[Node, float] = {}
    dist_backward: Dict[Node, float] = {}
    tiebreak = count()
    heap_forward: List[Tuple[float, int, Node]] = [(0.0, next(tiebreak), source)]
    heap_backward: List[Tuple[float, int, Node]] = [(0.0, next(tiebreak), target)]
    seen_forward: Dict[Node, float] = {source: 0.0}
    seen_backward: Dict[Node, float] = {target: 0.0}
    best = math.inf

    def expand(heap, dist_this, seen_this, seen_other) -> float:
        nonlocal best
        dist, _, node = heappop(heap)
        if node in dist_this:
            return dist
        dist_this[node] = dist
        for neighbor, weight in graph.adjacency(node).items():
            candidate = dist + weight
            if candidate > budget:
                continue
            if neighbor not in seen_this or candidate < seen_this[neighbor]:
                seen_this[neighbor] = candidate
                heappush(heap, (candidate, next(tiebreak), neighbor))
            if neighbor in seen_other:
                total = candidate + seen_other[neighbor]
                if total < best:
                    best = total
        return dist

    while heap_forward and heap_backward:
        top_forward = heap_forward[0][0]
        top_backward = heap_backward[0][0]
        if top_forward + top_backward >= min(best, budget + 1e-12):
            break
        if top_forward <= top_backward:
            expand(heap_forward, dist_forward, seen_forward, seen_backward)
        else:
            expand(heap_backward, dist_backward, seen_backward, seen_forward)

    return best if best <= budget else math.inf
