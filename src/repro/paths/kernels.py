"""Array-native shortest-path kernels over :class:`~repro.graph.csr.CSRGraph`.

These are the innermost loops of the whole library: every fault-check oracle
query and every verification sweep ends up here.  Kernels take dense node
indices and optional *fault masks* —

* ``vertex_mask``: ``bytearray`` over node indices, ``1`` = faulted;
* ``edge_mask``: ``bytearray`` over undirected edge ids, ``1`` = faulted —

which replace the ``ExclusionView`` wrapper of the dict-based path: masking a
fault is one byte write instead of building a view, and the inner expansion
pays nothing for vertex faults at all, because the vertex mask is *folded
into the visited/seen bytearray* at query start (a faulted vertex is simply
born "already settled", which is exactly "never expanded, never pushed").

Every kernel mirrors its dict-based reference in :mod:`repro.paths.dijkstra`
/ :mod:`repro.paths.bfs` *exactly* — same heap tie-breaking (push-order
counter), same neighbor order (CSR arcs preserve the graph's per-node
insertion order), same budget semantics — so kernel-built spanners are
byte-identical to reference-built ones.  The equivalence is enforced by
``tests/test_csr_kernels.py``.

All kernels tolerate a snapshot with a pending overflow (edges appended since
the last compaction); the overflow arcs are walked after the compact slice,
which together matches the source graph's per-node insertion order.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappop, heappush
from typing import List, Optional, Tuple

from repro.graph.csr import CSRGraph

_INF = math.inf


def bounded_dijkstra_csr(csr: CSRGraph, source: int, target: int, budget: float,
                         vertex_mask: Optional[bytearray] = None,
                         edge_mask: Optional[bytearray] = None) -> float:
    """Distance from ``source`` to ``target`` or ``inf`` beyond ``budget``.

    Kernel twin of :func:`repro.paths.dijkstra.bounded_distance` with fault
    masks applied on the fly.  A masked source or target is unreachable.
    """
    if vertex_mask is None:
        visited = bytearray(len(csr.node_of))
    else:
        if vertex_mask[source] or vertex_mask[target]:
            return _INF
        visited = bytearray(vertex_mask)
    if source == target:
        return 0.0
    indptr, indices, weights, edge_ids = csr.arc_lists()
    get_extra = csr._extra.get
    best = [_INF] * len(visited)
    best[source] = 0.0
    tiebreak = 0
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    while heap:
        dist, _, node = heappop(heap)
        if visited[node]:
            continue
        if dist > budget:
            return _INF
        if node == target:
            return dist
        visited[node] = 1
        for t in range(indptr[node], indptr[node + 1]):
            neighbor = indices[t]
            if visited[neighbor]:
                continue
            if edge_mask is not None and edge_mask[edge_ids[t]]:
                continue
            candidate = dist + weights[t]
            if candidate <= budget and candidate < best[neighbor]:
                best[neighbor] = candidate
                tiebreak += 1
                heappush(heap, (candidate, tiebreak, neighbor))
        bucket = get_extra(node)
        if bucket is not None:
            for neighbor, weight, eid in bucket:
                if visited[neighbor]:
                    continue
                if edge_mask is not None and edge_mask[eid]:
                    continue
                candidate = dist + weight
                if candidate <= budget and candidate < best[neighbor]:
                    best[neighbor] = candidate
                    tiebreak += 1
                    heappush(heap, (candidate, tiebreak, neighbor))
    return _INF


def bounded_dijkstra_path_csr(csr: CSRGraph, source: int, target: int, budget: float,
                              vertex_mask: Optional[bytearray] = None,
                              edge_mask: Optional[bytearray] = None
                              ) -> Tuple[float, List[int]]:
    """Like :func:`bounded_dijkstra_csr` but also returns a witness path.

    Kernel twin of :func:`repro.paths.dijkstra.bounded_path`; the returned
    path is a list of node *indices* (``source`` first), ``[]`` on failure.
    """
    n = len(csr.node_of)
    if vertex_mask is None:
        visited = bytearray(n)
    else:
        if vertex_mask[source] or vertex_mask[target]:
            return _INF, []
        visited = bytearray(vertex_mask)
    if source == target:
        return 0.0, [source]
    indptr, indices, weights, edge_ids = csr.arc_lists()
    get_extra = csr._extra.get
    parents = [-1] * n
    best = [_INF] * n
    best[source] = 0.0
    tiebreak = 0
    heap: List[Tuple[float, int, int, int]] = [(0.0, 0, source, -1)]
    while heap:
        dist, _, node, parent = heappop(heap)
        if visited[node]:
            continue
        if dist > budget:
            return _INF, []
        if parent >= 0:
            parents[node] = parent
        if node == target:
            path = [target]
            while path[-1] != source:
                path.append(parents[path[-1]])
            path.reverse()
            return dist, path
        visited[node] = 1
        for t in range(indptr[node], indptr[node + 1]):
            neighbor = indices[t]
            if visited[neighbor]:
                continue
            if edge_mask is not None and edge_mask[edge_ids[t]]:
                continue
            candidate = dist + weights[t]
            if candidate <= budget and candidate < best[neighbor]:
                best[neighbor] = candidate
                tiebreak += 1
                heappush(heap, (candidate, tiebreak, neighbor, node))
        bucket = get_extra(node)
        if bucket is not None:
            for neighbor, weight, eid in bucket:
                if visited[neighbor]:
                    continue
                if edge_mask is not None and edge_mask[eid]:
                    continue
                candidate = dist + weight
                if candidate <= budget and candidate < best[neighbor]:
                    best[neighbor] = candidate
                    tiebreak += 1
                    heappush(heap, (candidate, tiebreak, neighbor, node))
    return _INF, []


def sssp_dijkstra_csr(csr: CSRGraph, source: int,
                      cutoff: Optional[float] = None,
                      vertex_mask: Optional[bytearray] = None,
                      edge_mask: Optional[bytearray] = None
                      ) -> Tuple[List[float], List[int]]:
    """Single-source distances; kernel twin of ``dijkstra_distances``.

    Returns ``(dist, order)``: ``dist[i]`` is the distance to node index
    ``i`` (``inf`` if unreached / beyond ``cutoff`` / masked) and ``order``
    lists the settled indices in settling order — callers that build dicts
    iterate ``order`` so dict insertion order matches the reference.
    """
    n = len(csr.node_of)
    dist: List[float] = [_INF] * n
    order: List[int] = []
    if vertex_mask is None:
        visited = bytearray(n)
    else:
        if vertex_mask[source]:
            return dist, order
        visited = bytearray(vertex_mask)
    indptr, indices, weights, edge_ids = csr.arc_lists()
    get_extra = csr._extra.get
    best = [_INF] * n
    best[source] = 0.0
    tiebreak = 0
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    while heap:
        d, _, node = heappop(heap)
        if visited[node]:
            continue
        if cutoff is not None and d > cutoff:
            break
        visited[node] = 1
        dist[node] = d
        order.append(node)
        for t in range(indptr[node], indptr[node + 1]):
            neighbor = indices[t]
            if visited[neighbor]:
                continue
            if edge_mask is not None and edge_mask[edge_ids[t]]:
                continue
            candidate = d + weights[t]
            if cutoff is not None and candidate > cutoff:
                continue
            if candidate >= best[neighbor]:
                continue
            best[neighbor] = candidate
            tiebreak += 1
            heappush(heap, (candidate, tiebreak, neighbor))
        bucket = get_extra(node)
        if bucket is not None:
            for neighbor, weight, eid in bucket:
                if visited[neighbor]:
                    continue
                if edge_mask is not None and edge_mask[eid]:
                    continue
                candidate = d + weight
                if cutoff is not None and candidate > cutoff:
                    continue
                if candidate >= best[neighbor]:
                    continue
                best[neighbor] = candidate
                tiebreak += 1
                heappush(heap, (candidate, tiebreak, neighbor))
    return dist, order


def multi_target_dijkstra_csr(csr: CSRGraph, source: int, targets: List[int],
                              vertex_mask: Optional[bytearray] = None,
                              edge_mask: Optional[bytearray] = None
                              ) -> List[float]:
    """Distances from ``source`` to each of ``targets`` in one Dijkstra run.

    The batched entry point of the query engine (:mod:`repro.engine.batch`):
    a group of queries sharing ``(source, fault mask)`` is answered by one
    search that stops as soon as the last live target settles, instead of one
    :func:`bounded_dijkstra_csr` per query.  Expansion order, tie-breaking,
    and pruning are identical to the single-target kernel with an infinite
    budget, so each returned distance equals the per-query answer exactly
    (``inf`` for unreachable or masked endpoints); duplicate targets are
    allowed and each position is filled independently.
    """
    result = [_INF] * len(targets)
    if vertex_mask is None:
        visited = bytearray(len(csr.node_of))
    else:
        if vertex_mask[source]:
            return result
        visited = bytearray(vertex_mask)
    # Positions still waiting on each target index; masked targets are left
    # out (they can never settle — folded into visited — and stay inf).
    pending: dict = {}
    for position, target in enumerate(targets):
        if visited[target]:
            continue
        if target == source:
            result[position] = 0.0
            continue
        bucket = pending.get(target)
        if bucket is None:
            pending[target] = [position]
        else:
            bucket.append(position)
    if not pending:
        return result
    remaining = len(pending)
    indptr, indices, weights, edge_ids = csr.arc_lists()
    get_extra = csr._extra.get
    best = [_INF] * len(visited)
    best[source] = 0.0
    tiebreak = 0
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    while heap:
        dist, _, node = heappop(heap)
        if visited[node]:
            continue
        positions = pending.get(node)
        if positions is not None:
            for position in positions:
                result[position] = dist
            del pending[node]
            remaining -= 1
            if not remaining:
                return result
        visited[node] = 1
        for t in range(indptr[node], indptr[node + 1]):
            neighbor = indices[t]
            if visited[neighbor]:
                continue
            if edge_mask is not None and edge_mask[edge_ids[t]]:
                continue
            candidate = dist + weights[t]
            if candidate < best[neighbor]:
                best[neighbor] = candidate
                tiebreak += 1
                heappush(heap, (candidate, tiebreak, neighbor))
        bucket = get_extra(node)
        if bucket is not None:
            for neighbor, weight, eid in bucket:
                if visited[neighbor]:
                    continue
                if edge_mask is not None and edge_mask[eid]:
                    continue
                candidate = dist + weight
                if candidate < best[neighbor]:
                    best[neighbor] = candidate
                    tiebreak += 1
                    heappush(heap, (candidate, tiebreak, neighbor))
    return result


def bfs_distances_csr(csr: CSRGraph, source: int,
                      max_hops: Optional[int] = None,
                      vertex_mask: Optional[bytearray] = None,
                      edge_mask: Optional[bytearray] = None
                      ) -> Tuple[List[int], List[int]]:
    """Hop distances; kernel twin of ``bfs_distances``.

    Returns ``(dist, order)`` with ``dist[i] = -1`` for unreached nodes and
    ``order`` the discovery order (matching the reference dict's insertion
    order, source first).
    """
    n = len(csr.node_of)
    dist = [-1] * n
    order: List[int] = []
    if vertex_mask is None:
        seen = bytearray(n)
    else:
        if vertex_mask[source]:
            return dist, order
        seen = bytearray(vertex_mask)
    seen[source] = 1
    dist[source] = 0
    order.append(source)
    indptr, indices, _, edge_ids = csr.arc_lists()
    get_extra = csr._extra.get
    queue = deque([source])
    while queue:
        node = queue.popleft()
        next_dist = dist[node] + 1
        if max_hops is not None and next_dist > max_hops:
            continue
        for t in range(indptr[node], indptr[node + 1]):
            neighbor = indices[t]
            if seen[neighbor]:
                continue
            if edge_mask is not None and edge_mask[edge_ids[t]]:
                continue
            seen[neighbor] = 1
            dist[neighbor] = next_dist
            order.append(neighbor)
            queue.append(neighbor)
        bucket = get_extra(node)
        if bucket is not None:
            for neighbor, _, eid in bucket:
                if seen[neighbor]:
                    continue
                if edge_mask is not None and edge_mask[eid]:
                    continue
                seen[neighbor] = 1
                dist[neighbor] = next_dist
                order.append(neighbor)
                queue.append(neighbor)
    return dist, order


def bounded_bfs_csr(csr: CSRGraph, source: int, target: int,
                    max_hops: Optional[int] = None,
                    vertex_mask: Optional[bytearray] = None,
                    edge_mask: Optional[bytearray] = None) -> float:
    """Hop distance between two indices; kernel twin of ``hop_distance``.

    Early-exits the moment ``target`` enters the frontier; ``inf`` when it is
    unreachable within ``max_hops`` (or masked).
    """
    n = len(csr.node_of)
    if vertex_mask is None:
        seen = bytearray(n)
    else:
        if vertex_mask[source] or vertex_mask[target]:
            return _INF
        seen = bytearray(vertex_mask)
    if source == target:
        return 0.0
    seen[source] = 1
    dist = [-1] * n
    dist[source] = 0
    indptr, indices, _, edge_ids = csr.arc_lists()
    get_extra = csr._extra.get
    queue = deque([source])
    while queue:
        node = queue.popleft()
        next_dist = dist[node] + 1
        if max_hops is not None and next_dist > max_hops:
            continue
        for t in range(indptr[node], indptr[node + 1]):
            neighbor = indices[t]
            if seen[neighbor]:
                continue
            if edge_mask is not None and edge_mask[edge_ids[t]]:
                continue
            if neighbor == target:
                return float(next_dist)
            seen[neighbor] = 1
            dist[neighbor] = next_dist
            queue.append(neighbor)
        bucket = get_extra(node)
        if bucket is not None:
            for neighbor, _, eid in bucket:
                if seen[neighbor]:
                    continue
                if edge_mask is not None and edge_mask[eid]:
                    continue
                if neighbor == target:
                    return float(next_dist)
                seen[neighbor] = 1
                dist[neighbor] = next_dist
                queue.append(neighbor)
    return _INF
