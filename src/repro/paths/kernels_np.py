"""Vectorized (numpy) twins of the loop kernels in :mod:`repro.paths.kernels`.

Same six signatures, same masks, same return types — but the per-frontier
work is numpy gathers/scatters over the zero-copy CSR ndarray views
(:meth:`~repro.graph.csr.CSRGraph.as_ndarrays`) instead of per-edge Python
bytecode.  The module is only importable when numpy is; the kernel registry
(:mod:`repro.paths.registry`) gates on that.

**Byte-identity.**  The hard invariant — enforced by
``tests/test_kernel_backends.py`` — is that every kernel here returns values
*bit-identical* to its loop twin: distances, witness paths, settle/discovery
order, early-exit answers.  Two observations make that possible without
replaying the heap:

1.  *Distances are relaxation-order independent.*  Edge weights are strictly
    positive and finite, so float addition of a weight is monotone
    (``a <= b  =>  a + w <= b + w``) and extending a walk never lowers its
    rounded prefix sum.  Both heap Dijkstra and frontier Bellman–Ford
    therefore converge to the same per-node value: the minimum over walks of
    the left-to-right float sum.  Budget/cutoff pruning drops exactly the
    walks whose (monotone) prefix exceeds the bound in both.

2.  *The settle order is reconstructible after the fact.*  The loop kernel
    settles nodes by ``(distance, push counter)``.  All pushes that achieve a
    node's final distance ``d`` are issued by parents settled strictly
    earlier (``dist[u] + w == d`` with ``w > 0`` forces ``dist[u] < d``), so
    within an equal-distance group the settle order is the ascending order of
    each node's *first achieving push* — the lexicographically smallest
    ``(parent settle position, arc position in the parent's scan)`` over
    unmasked arcs with ``dist[u] + w == d`` exactly.  Sorting distance groups
    by that key reproduces the counter order without ever materialising it.

The same two facts drive the multi-source kernels: one flat ``(group, node)``
address space answers an entire ``(source, fault set)`` group plan from
:mod:`repro.engine.batch` in a single sweep, with per-group boolean mask rows
instead of per-query mask churn.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

_INF = math.inf
#: Sentinel "no achieving push" key; real keys are < n * (2m + 1) << 2**63.
_NO_KEY = np.iinfo(np.int64).max


def _mask_nd(mask) -> Optional[np.ndarray]:
    """Zero-copy uint8 view of a kernel ``bytearray`` mask (or ``None``)."""
    if mask is None:
        return None
    return np.frombuffer(mask, dtype=np.uint8)


def _expand(indptr: np.ndarray, frontier: np.ndarray
            ) -> Tuple[np.ndarray, np.ndarray]:
    """Flat arc indices of every arc leaving ``frontier``, plus the per-arc
    position of its tail in ``frontier`` (``reps``)."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offsets = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    reps = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    arcs = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
    return arcs, reps


def _relax(nd, n: int, source: int, cutoff: Optional[float],
           vmask: Optional[np.ndarray], emask: Optional[np.ndarray],
           targets: Optional[np.ndarray] = None) -> np.ndarray:
    """Final Dijkstra distance array via frontier relaxation (see module doc).

    ``targets`` enables the early exit: the sweep stops once every target's
    tentative distance is at most the frontier minimum — no future candidate
    can beat it (positive weights keep candidates >= the frontier minimum).
    Only the target entries are guaranteed final in that mode.
    """
    indptr, indices, weights, edge_ids = nd
    dist = np.full(n, np.inf)
    if cutoff is not None and cutoff < 0.0:
        # The reference pops (0.0, source) and bails before settling anything.
        return dist
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    touched = np.zeros(n, dtype=bool)  # scatter-dedup scratch (beats sorting)
    while frontier.size:
        if targets is not None:
            frontier_min = dist[frontier].min()
            if (dist[targets] <= frontier_min).all():
                break
        arcs, reps = _expand(indptr, frontier)
        if arcs.size == 0:
            break
        nbr = indices[arcs]
        cand = dist[frontier][reps] + weights[arcs]
        keep = cand < dist[nbr]
        if emask is not None:
            keep &= emask[edge_ids[arcs]] == 0
        if vmask is not None:
            keep &= vmask[nbr] == 0
        if cutoff is not None:
            keep &= cand <= cutoff
        nbr = nbr[keep]
        if nbr.size == 0:
            break
        np.minimum.at(dist, nbr, cand[keep])
        touched[nbr] = True
        frontier = np.nonzero(touched)[0]
        touched[frontier] = False
    return dist


def _settle_order(csr: CSRGraph, nd, dist: np.ndarray,
                  emask: Optional[np.ndarray]
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Reconstruct the loop kernel's settle order from final distances.

    Returns ``(order, settle_pos)`` where ``order`` lists the settled node
    indices in settle order and ``settle_pos`` is its inverse (meaningful for
    settled nodes only).  Singleton distance values — the common case on
    real-weighted graphs — cost nothing beyond one argsort; only groups of
    equal distances run the achieving-push key computation.
    """
    indptr, indices, weights, edge_ids = nd
    settled = np.flatnonzero(np.isfinite(dist))
    settle_pos = np.zeros(len(dist), dtype=np.int64)
    if settled.size == 0:
        return settled, settle_pos
    order = settled[np.argsort(dist[settled], kind="stable")]
    dvals = dist[order]
    settle_pos[order] = np.arange(order.size)
    group_starts = np.flatnonzero(
        np.concatenate(([True], dvals[1:] != dvals[:-1])))
    group_ends = np.concatenate((group_starts[1:], [order.size]))
    multi = np.flatnonzero(group_ends - group_starts > 1)
    if multi.size == 0:
        return order, settle_pos
    rev = csr.reverse_arcs()
    key_base = np.int64(len(indices) + 1)
    # Ascending distance: parents of a group live in strictly earlier groups,
    # whose positions are final by the time the group is reordered.
    for gi in multi:
        a, b = int(group_starts[gi]), int(group_ends[gi])
        members = order[a:b]
        d = dvals[a]
        arcs, reps = _expand(indptr, members)
        parent = indices[arcs]
        achieving = dist[parent] + weights[arcs] == d
        if emask is not None:
            achieving &= emask[edge_ids[arcs]] == 0
        key = np.where(achieving, settle_pos[parent] * key_base + rev[arcs],
                       _NO_KEY)
        # Per-member minimum over its (contiguous) arc segment.
        seg_starts = indptr[members]
        counts = indptr[members + 1] - seg_starts
        offsets = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        first_keys = np.minimum.reduceat(key, offsets)
        members = members[np.argsort(first_keys, kind="stable")]
        order[a:b] = members
        settle_pos[members] = np.arange(a, b)
    return order, settle_pos


def _winning_parent(csr: CSRGraph, nd, dist: np.ndarray,
                    settle_pos: np.ndarray, emask: Optional[np.ndarray],
                    node: int) -> int:
    """The parent the loop kernel recorded for ``node``: its first achiever."""
    indptr, indices, weights, edge_ids = nd
    start, end = int(indptr[node]), int(indptr[node + 1])
    nbrs = indices[start:end]
    achieving = dist[nbrs] + weights[start:end] == dist[node]
    if emask is not None:
        achieving &= emask[edge_ids[start:end]] == 0
    candidates = np.flatnonzero(achieving)
    if candidates.size == 1:
        return int(nbrs[candidates[0]])
    rev = csr.reverse_arcs()[start:end]
    best = min(candidates, key=lambda i: (settle_pos[nbrs[i]], rev[i]))
    return int(nbrs[best])


# --------------------------------------------------------------------------
# The six kernel twins
# --------------------------------------------------------------------------

def bounded_dijkstra_csr(csr: CSRGraph, source: int, target: int, budget: float,
                         vertex_mask: Optional[bytearray] = None,
                         edge_mask: Optional[bytearray] = None) -> float:
    """Vectorized twin of :func:`repro.paths.kernels.bounded_dijkstra_csr`."""
    if vertex_mask is not None and (vertex_mask[source] or vertex_mask[target]):
        return _INF
    if source == target:
        return 0.0
    nd = csr.as_ndarrays()
    dist = _relax(nd, csr.num_nodes, source, budget, _mask_nd(vertex_mask),
                  _mask_nd(edge_mask),
                  targets=np.array([target], dtype=np.int64))
    return float(dist[target])


def bounded_dijkstra_path_csr(csr: CSRGraph, source: int, target: int, budget: float,
                              vertex_mask: Optional[bytearray] = None,
                              edge_mask: Optional[bytearray] = None
                              ) -> Tuple[float, List[int]]:
    """Vectorized twin of :func:`repro.paths.kernels.bounded_dijkstra_path_csr`.

    The witness path is rebuilt by walking first-achiever parents back from
    the target, which is exactly the parent chain the loop kernel's winning
    heap entries record.
    """
    if vertex_mask is not None and (vertex_mask[source] or vertex_mask[target]):
        return _INF, []
    if source == target:
        return 0.0, [source]
    nd = csr.as_ndarrays()
    emask = _mask_nd(edge_mask)
    dist = _relax(nd, csr.num_nodes, source, budget, _mask_nd(vertex_mask),
                  emask)
    if not np.isfinite(dist[target]):
        return _INF, []
    _, settle_pos = _settle_order(csr, nd, dist, emask)
    path = [target]
    node = target
    while node != source:
        node = _winning_parent(csr, nd, dist, settle_pos, emask, node)
        path.append(node)
    path.reverse()
    return float(dist[target]), path


def sssp_dijkstra_csr(csr: CSRGraph, source: int,
                      cutoff: Optional[float] = None,
                      vertex_mask: Optional[bytearray] = None,
                      edge_mask: Optional[bytearray] = None
                      ) -> Tuple[List[float], List[int]]:
    """Vectorized twin of :func:`repro.paths.kernels.sssp_dijkstra_csr`."""
    n = csr.num_nodes
    if vertex_mask is not None and vertex_mask[source]:
        return [_INF] * n, []
    nd = csr.as_ndarrays()
    emask = _mask_nd(edge_mask)
    dist = _relax(nd, n, source, cutoff, _mask_nd(vertex_mask), emask)
    order, _ = _settle_order(csr, nd, dist, emask)
    return dist.tolist(), order.tolist()


def sssp_arrays_csr(csr: CSRGraph, source: int,
                    vertex_mask: Optional[bytearray] = None,
                    edge_mask: Optional[bytearray] = None) -> np.ndarray:
    """Raw ndarray SSSP (no settle order) for vectorized consumers.

    Same distance bits as :func:`sssp_dijkstra_csr`; skips the order
    reconstruction that order-insensitive sweeps (e.g. the stretch ratio
    scan in :mod:`repro.faults.adversarial`) never read.
    """
    n = csr.num_nodes
    if vertex_mask is not None and vertex_mask[source]:
        return np.full(n, np.inf)
    return _relax(csr.as_ndarrays(), n, source, None, _mask_nd(vertex_mask),
                  _mask_nd(edge_mask))


def multi_target_dijkstra_csr(csr: CSRGraph, source: int, targets: List[int],
                              vertex_mask: Optional[bytearray] = None,
                              edge_mask: Optional[bytearray] = None
                              ) -> List[float]:
    """Vectorized twin of :func:`repro.paths.kernels.multi_target_dijkstra_csr`."""
    result = [_INF] * len(targets)
    if vertex_mask is not None and vertex_mask[source]:
        return result
    pending: List[int] = []
    for position, target in enumerate(targets):
        if vertex_mask is not None and vertex_mask[target]:
            continue
        if target == source:
            result[position] = 0.0
            continue
        pending.append(position)
    if not pending:
        return result
    live = np.unique(np.array([targets[p] for p in pending], dtype=np.int64))
    nd = csr.as_ndarrays()
    dist = _relax(nd, csr.num_nodes, source, None, _mask_nd(vertex_mask),
                  _mask_nd(edge_mask), targets=live)
    for position in pending:
        result[position] = float(dist[targets[position]])
    return result


def bfs_distances_csr(csr: CSRGraph, source: int,
                      max_hops: Optional[int] = None,
                      vertex_mask: Optional[bytearray] = None,
                      edge_mask: Optional[bytearray] = None
                      ) -> Tuple[List[int], List[int]]:
    """Vectorized twin of :func:`repro.paths.kernels.bfs_distances_csr`.

    The reference discovery order within a level is "parents in dequeue
    order, arcs in scan order" — reproduced by tagging each discovery with
    ``(parent position, arc index)`` and keeping the minimum per node.
    """
    n = csr.num_nodes
    dist = np.full(n, -1, dtype=np.int64)
    if vertex_mask is not None and vertex_mask[source]:
        return dist.tolist(), []
    nd = csr.as_ndarrays()
    indptr, indices, _, edge_ids = nd
    vmask = _mask_nd(vertex_mask)
    emask = _mask_nd(edge_mask)
    key_base = np.int64(len(indices) + 1)
    pos = np.zeros(n, dtype=np.int64)
    dist[source] = 0
    order_parts = [np.array([source], dtype=np.int64)]
    frontier = order_parts[0]
    discovered = 1
    level = 0
    while frontier.size:
        level += 1
        if max_hops is not None and level > max_hops:
            break
        arcs, reps = _expand(indptr, frontier)
        if arcs.size == 0:
            break
        nbr = indices[arcs]
        keep = dist[nbr] < 0
        if emask is not None:
            keep &= emask[edge_ids[arcs]] == 0
        if vmask is not None:
            keep &= vmask[nbr] == 0
        nbr = nbr[keep]
        if nbr.size == 0:
            break
        key = pos[frontier][reps[keep]] * key_base + arcs[keep]
        by_node = np.lexsort((key, nbr))
        nbr_sorted = nbr[by_node]
        key_sorted = key[by_node]
        first = np.concatenate(([True], nbr_sorted[1:] != nbr_sorted[:-1]))
        new_nodes = nbr_sorted[first]
        new_nodes = new_nodes[np.argsort(key_sorted[first], kind="stable")]
        dist[new_nodes] = level
        pos[new_nodes] = np.arange(discovered, discovered + new_nodes.size)
        discovered += new_nodes.size
        order_parts.append(new_nodes)
        frontier = new_nodes
    return dist.tolist(), np.concatenate(order_parts).tolist()


def bounded_bfs_csr(csr: CSRGraph, source: int, target: int,
                    max_hops: Optional[int] = None,
                    vertex_mask: Optional[bytearray] = None,
                    edge_mask: Optional[bytearray] = None) -> float:
    """Vectorized twin of :func:`repro.paths.kernels.bounded_bfs_csr`."""
    if vertex_mask is not None and (vertex_mask[source] or vertex_mask[target]):
        return _INF
    if source == target:
        return 0.0
    nd = csr.as_ndarrays()
    indptr, indices, _, edge_ids = nd
    vmask = _mask_nd(vertex_mask)
    emask = _mask_nd(edge_mask)
    seen = np.zeros(csr.num_nodes, dtype=bool)
    if vmask is not None:
        seen |= vmask != 0
    seen[source] = True
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        if max_hops is not None and level > max_hops:
            return _INF
        arcs, _ = _expand(indptr, frontier)
        if arcs.size == 0:
            return _INF
        nbr = indices[arcs]
        keep = ~seen[nbr]
        if emask is not None:
            keep &= emask[edge_ids[arcs]] == 0
        nbr = nbr[keep]
        if nbr.size == 0:
            return _INF
        if (nbr == target).any():
            return float(level)
        frontier = np.unique(nbr)
        seen[frontier] = True
    return _INF


# --------------------------------------------------------------------------
# Multi-source batched kernels (one sweep per group plan)
# --------------------------------------------------------------------------

def _multi_source_sweep(csr: CSRGraph, sources: Sequence[int],
                        vertex_masks: Optional[np.ndarray],
                        edge_masks: Optional[np.ndarray],
                        target_lists: Optional[Sequence[np.ndarray]] = None
                        ) -> np.ndarray:
    """Run ``len(sources)`` independent masked SSSPs in one flat sweep.

    The state is one ``(groups, n)`` distance matrix relaxed over a flat
    ``group * n + node`` address space; each row converges to exactly the
    bits :func:`_relax` produces for that row's source and mask row (rows
    never interact).  With ``target_lists`` the per-group early exit drops a
    group's frontier entries once all of its targets are final — only the
    target entries of such rows are guaranteed final.
    """
    nd = csr.as_ndarrays()
    indptr, indices, weights, edge_ids = nd
    n = csr.num_nodes
    m = csr.num_edges
    groups = len(sources)
    dist = np.full((groups, n), np.inf)
    flat = dist.ravel()
    vm_flat = None if vertex_masks is None else np.ascontiguousarray(vertex_masks).ravel()
    em_flat = None if edge_masks is None else np.ascontiguousarray(edge_masks).ravel()

    live_groups: List[int] = []
    for g, src in enumerate(sources):
        if vm_flat is not None and vm_flat[g * n + src]:
            continue  # masked source: the row stays all-inf, like the twin
        flat[g * n + src] = 0.0
        live_groups.append(g)
    grp = np.array(live_groups, dtype=np.int64)
    node = np.array([sources[g] for g in live_groups], dtype=np.int64)

    t_grp = t_idx = None
    if target_lists is not None:
        pairs = [(g, t) for g in live_groups for t in target_lists[g]]
        if pairs:
            t_grp = np.array([p[0] for p in pairs], dtype=np.int64)
            t_idx = np.array([p[1] for p in pairs], dtype=np.int64)

    touched = np.zeros(groups * n, dtype=bool)  # scatter-dedup scratch
    while grp.size:
        entry_dist = flat[grp * n + node]
        if t_grp is not None:
            frontier_min = np.full(groups, np.inf)
            np.minimum.at(frontier_min, grp, entry_dist)
            target_max = np.full(groups, -np.inf)
            np.maximum.at(target_max, t_grp, flat[t_grp * n + t_idx])
            finished = target_max <= frontier_min
            if finished.any():
                alive = ~finished[grp]
                grp, node, entry_dist = grp[alive], node[alive], entry_dist[alive]
                if not grp.size:
                    break
        arcs, reps = _expand(indptr, node)
        if arcs.size == 0:
            break
        garc = grp[reps]
        nbr = indices[arcs]
        cell = garc * n + nbr
        cand = entry_dist[reps] + weights[arcs]
        keep = cand < flat[cell]
        if em_flat is not None:
            keep &= em_flat[garc * m + edge_ids[arcs]] == 0
        if vm_flat is not None:
            keep &= vm_flat[cell] == 0
        cell = cell[keep]
        if cell.size == 0:
            break
        np.minimum.at(flat, cell, cand[keep])
        touched[cell] = True
        cell = np.nonzero(touched)[0]
        touched[cell] = False
        grp = cell // n
        node = cell - grp * n
    return dist


def multi_source_sssp_csr(csr: CSRGraph, sources: Sequence[int],
                          vertex_masks: Optional[np.ndarray] = None,
                          edge_masks: Optional[np.ndarray] = None
                          ) -> List[List[float]]:
    """Full distance vectors for a whole ``(source, fault set)`` group plan.

    Returns one list per group, bit-identical to running
    :func:`sssp_dijkstra_csr` with that group's mask row — the cacheable
    form the query engine admits, produced by one fused sweep.
    """
    dist = _multi_source_sweep(csr, sources, vertex_masks, edge_masks)
    return [row.tolist() for row in dist]


def multi_source_multi_target_csr(csr: CSRGraph, sources: Sequence[int],
                                  target_lists: Sequence[Sequence[int]],
                                  vertex_masks: Optional[np.ndarray] = None,
                                  edge_masks: Optional[np.ndarray] = None
                                  ) -> List[List[float]]:
    """Early-exiting batched twin of :func:`multi_target_dijkstra_csr`.

    ``target_lists[g]`` aligns with the returned ``result[g]``; per-group
    semantics (masked targets stay inf, ``target == source`` answers 0.0,
    duplicates fill independently) replicate the single-source kernel.
    """
    n = csr.num_nodes
    groups = len(sources)
    results = [[_INF] * len(target_lists[g]) for g in range(groups)]
    pending: List[List[int]] = [[] for _ in range(groups)]
    live: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * groups
    for g, src in enumerate(sources):
        vrow = None if vertex_masks is None else vertex_masks[g]
        if vrow is not None and vrow[src]:
            continue
        row_pending = pending[g]
        for position, target in enumerate(target_lists[g]):
            if vrow is not None and vrow[target]:
                continue
            if target == src:
                results[g][position] = 0.0
                continue
            row_pending.append(position)
        if row_pending:
            live[g] = np.unique(np.array(
                [target_lists[g][p] for p in row_pending], dtype=np.int64))
    if not any(len(row) for row in pending):
        return results
    dist = _multi_source_sweep(csr, sources, vertex_masks, edge_masks,
                               target_lists=live)
    flat = dist.ravel()
    for g, row_pending in enumerate(pending):
        for position in row_pending:
            results[g][position] = float(flat[g * n + target_lists[g][position]])
    return results
