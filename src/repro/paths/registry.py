"""Kernel backend registry: named, swappable implementations of the CSR kernels.

Mirrors the execution-backend registry in :mod:`repro.runtime.backend`: each
backend is a named bundle of the six CSR kernel callables, consumers resolve
one by name (or take the default), and unknown names fail loudly with the
list of registered names.  Two backends ship:

``loop``
    The pure-Python reference kernels from :mod:`repro.paths.kernels`.
    Always available; the semantics baseline.

``numpy``
    The vectorized twins from :mod:`repro.paths.kernels_np`, byte-identical
    to ``loop`` on every output (distances, witness paths, visit orders,
    early exits) but doing per-frontier work in array operations.  Registered
    only when numpy imports; resolving it without numpy raises
    ``RuntimeError`` with the import failure.

The default is ``auto``: a dispatching backend that picks ``numpy`` for CSR
snapshots with at least :data:`AUTO_NODE_THRESHOLD` nodes (where the array
sweep wins decisively) and ``loop`` below it (where Python loop overhead is
lower than numpy's per-call setup).  ``REPRO_KERNEL`` in the environment
overrides the default; an explicit ``kernel=`` argument beats both.

Every :meth:`KernelBackend.resolve` call counts one selection on the
process metrics registry (``kernels.dispatch{backend="loop"|"numpy"}``), so
``repro-spanner stats`` shows which implementation actually served a run —
in particular how often the ``auto`` gate went each way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.graph.csr import CSRGraph
from repro.obs.metrics import Counter, get_registry
from repro.paths import kernels as _loop

#: Node count at which the ``auto`` backend switches from loop to numpy
#: kernels.  Below it the numpy per-call setup overhead dominates.
AUTO_NODE_THRESHOLD = 100_000

#: Environment variable consulted when no explicit kernel is requested.
KERNEL_ENV_VAR = "REPRO_KERNEL"

_DISPATCH = get_registry().counter(
    "kernels.dispatch", "kernel backend selections, by resolved backend")
_DISPATCH_CHILDREN: Dict[str, Counter] = {}


def _count_dispatch(name: str) -> None:
    # resolve() runs on per-call hot paths; cache the labeled children so a
    # selection costs one dict probe and one counter bump.
    child = _DISPATCH_CHILDREN.get(name)
    if child is None:
        child = _DISPATCH_CHILDREN[name] = _DISPATCH.labels(backend=name)
    child.inc()


@dataclass(frozen=True)
class KernelBackend:
    """A named bundle of CSR kernel callables.

    The six required kernels share signatures with their reference
    definitions in :mod:`repro.paths.kernels`.  The optional batched/raw
    entry points are ``None`` when a backend has no fused implementation;
    consumers fall back to per-query calls.
    """

    name: str
    description: str
    bounded_dijkstra_csr: Callable
    bounded_dijkstra_path_csr: Callable
    sssp_dijkstra_csr: Callable
    multi_target_dijkstra_csr: Callable
    bfs_distances_csr: Callable
    bounded_bfs_csr: Callable
    multi_source_sssp: Optional[Callable] = None
    multi_source_multi_target: Optional[Callable] = None
    sssp_arrays: Optional[Callable] = None

    def resolve(self, csr: CSRGraph) -> "KernelBackend":
        """The concrete backend serving ``csr`` (identity for real backends)."""
        _count_dispatch(self.name)
        return self


class _AutoKernelBackend(KernelBackend):
    """Size-gated dispatcher: numpy at scale, loop below the threshold."""

    def resolve(self, csr: CSRGraph) -> KernelBackend:
        if ("numpy" in _REGISTRY
                and csr.num_nodes >= AUTO_NODE_THRESHOLD):
            chosen = _REGISTRY["numpy"]
        else:
            chosen = _REGISTRY["loop"]
        _count_dispatch(chosen.name)
        return chosen


KernelLike = Union[None, str, KernelBackend]

_REGISTRY: Dict[str, KernelBackend] = {}
#: Backends that exist by name but cannot be constructed here, mapped to the
#: human-readable reason (e.g. numpy missing).  Requesting one raises
#: ``RuntimeError`` instead of the unknown-name ``ValueError``.
_UNAVAILABLE: Dict[str, str] = {}


def register_kernel_backend(backend: KernelBackend) -> None:
    """Register ``backend`` under its name, replacing any previous holder."""
    _REGISTRY[backend.name] = backend
    _UNAVAILABLE.pop(backend.name, None)


def kernel_backend_names() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def describe_kernel_backends() -> List[dict]:
    """Name/description/availability rows for every known backend."""
    rows = [
        {"name": name, "description": _REGISTRY[name].description,
         "available": True}
        for name in sorted(_REGISTRY)
    ]
    rows.extend(
        {"name": name, "description": reason, "available": False}
        for name, reason in sorted(_UNAVAILABLE.items())
    )
    return rows


def get_kernels(kernel: KernelLike = None) -> KernelBackend:
    """Resolve a kernel spec to a backend.

    ``None`` consults :data:`KERNEL_ENV_VAR` and falls back to ``auto``;
    a string is looked up in the registry; a :class:`KernelBackend` passes
    through.  Unknown names raise ``ValueError`` listing the registry;
    known-but-unavailable names raise ``RuntimeError`` with the reason.
    """
    if isinstance(kernel, KernelBackend):
        return kernel
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV_VAR) or "auto"
    try:
        return _REGISTRY[kernel]
    except KeyError:
        if kernel in _UNAVAILABLE:
            raise RuntimeError(
                f"kernel backend {kernel!r} is not available: "
                f"{_UNAVAILABLE[kernel]}"
            ) from None
        raise ValueError(
            f"unknown kernel backend {kernel!r}; registered: "
            f"{', '.join(kernel_backend_names())}"
        ) from None


register_kernel_backend(KernelBackend(
    name="loop",
    description="pure-Python reference kernels (always available)",
    bounded_dijkstra_csr=_loop.bounded_dijkstra_csr,
    bounded_dijkstra_path_csr=_loop.bounded_dijkstra_path_csr,
    sssp_dijkstra_csr=_loop.sssp_dijkstra_csr,
    multi_target_dijkstra_csr=_loop.multi_target_dijkstra_csr,
    bfs_distances_csr=_loop.bfs_distances_csr,
    bounded_bfs_csr=_loop.bounded_bfs_csr,
))

try:
    from repro.paths import kernels_np as _np_kernels
except ImportError as exc:  # pragma: no cover - exercised only without numpy
    _UNAVAILABLE["numpy"] = f"numpy import failed ({exc})"
else:
    register_kernel_backend(KernelBackend(
        name="numpy",
        description="vectorized array kernels (requires numpy)",
        bounded_dijkstra_csr=_np_kernels.bounded_dijkstra_csr,
        bounded_dijkstra_path_csr=_np_kernels.bounded_dijkstra_path_csr,
        sssp_dijkstra_csr=_np_kernels.sssp_dijkstra_csr,
        multi_target_dijkstra_csr=_np_kernels.multi_target_dijkstra_csr,
        bfs_distances_csr=_np_kernels.bfs_distances_csr,
        bounded_bfs_csr=_np_kernels.bounded_bfs_csr,
        multi_source_sssp=_np_kernels.multi_source_sssp_csr,
        multi_source_multi_target=_np_kernels.multi_source_multi_target_csr,
        sssp_arrays=_np_kernels.sssp_arrays_csr,
    ))

def _auto_dispatch(kernel_name: str) -> Callable:
    # Per-call dispatch so even consumers that skip resolve() get the gate.
    def call(csr: CSRGraph, *args, **kwargs):
        backend = _REGISTRY["auto"].resolve(csr)
        return getattr(backend, kernel_name)(csr, *args, **kwargs)
    call.__name__ = kernel_name
    return call


_REGISTRY["auto"] = _AutoKernelBackend(
    name="auto",
    description=(
        f"numpy kernels at >= {AUTO_NODE_THRESHOLD} nodes when available, "
        "loop kernels otherwise"
    ),
    bounded_dijkstra_csr=_auto_dispatch("bounded_dijkstra_csr"),
    bounded_dijkstra_path_csr=_auto_dispatch("bounded_dijkstra_path_csr"),
    sssp_dijkstra_csr=_auto_dispatch("sssp_dijkstra_csr"),
    multi_target_dijkstra_csr=_auto_dispatch("multi_target_dijkstra_csr"),
    bfs_distances_csr=_auto_dispatch("bfs_distances_csr"),
    bounded_bfs_csr=_auto_dispatch("bounded_bfs_csr"),
)
