"""Sharded execution runtime for the exponential sweeps.

The verification, adversarial-search, and experiment layers all reduce to
the same shape of work: a deterministic enumeration (fault sets, source
vertices, trials) folded with a deterministic merge (verdict + witness +
counters, or a running maximum).  This package factors that shape out:

* :mod:`repro.runtime.backend` — where chunks run (:class:`SerialBackend`
  inline, :class:`ProcessPoolBackend` across worker processes with the CSR
  context shipped once per worker);
* :mod:`repro.runtime.shard` — how sweeps split into balanced, contiguous,
  order-preserving chunks;
* :mod:`repro.runtime.merge` — how ordered chunk results fold back into the
  exact serial answer (bit-identical verdicts and witnesses — the property
  suite in ``tests/test_runtime.py`` enforces this).
"""

from repro.runtime.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
    usable_cpu_count,
)
from repro.runtime.merge import (
    ChunkArgmax,
    ChunkVerdict,
    merge_argmax,
    merge_verdicts,
)
from repro.runtime.shard import (
    chunk_size_for,
    iter_chunks,
    plan_ranges,
    split_sequence,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "get_backend",
    "usable_cpu_count",
    "ChunkVerdict",
    "ChunkArgmax",
    "merge_verdicts",
    "merge_argmax",
    "chunk_size_for",
    "iter_chunks",
    "plan_ranges",
    "split_sequence",
]
