"""Pluggable execution backends: run sharded work serially or in a process pool.

A backend executes *chunk tasks*: a top-level (hence picklable-by-reference)
function ``fn(context, chunk)`` applied to a stream of chunks, where
``context`` is the read-only payload every chunk needs — typically a pair of
compiled CSR snapshots plus a fault-model name.  Two implementations:

* :class:`SerialBackend` — runs chunks inline, in order.  This is the
  reference semantics; every parallel consumer is required to produce
  bit-identical results to it (``tests/test_runtime.py`` holds the line).
* :class:`ProcessPoolBackend` — fans chunks out over a
  :mod:`multiprocessing` pool.  The context is pickled **once per worker**
  (shipped through the pool initializer into a module global), so per-chunk
  messages carry only the chunk itself; CSR snapshots are plain
  ``dict``/``list``/``array`` containers and pickle cleanly.

Both expose the same lazy, *ordered* iteration protocol (:meth:`imap`):
results come back in chunk-submission order regardless of which worker
finished first, which is what lets consumers merge verdicts, witnesses, and
counters deterministically — and closing the iterator early (e.g. breaking
on the first refutation) cancels the outstanding chunks.

Metric capture: passing ``metrics=<registry>`` to :meth:`imap`/:meth:`map`
ships each chunk's movement of the *worker process's* default metrics
registry back with its result and folds it into the given registry (in
submission order, through :func:`repro.obs.merge_counters`).  Chunks the
consumer never pulls — speculative work past an early generator close —
contribute nothing, so captured counters obey the same "serial prefix" rule
as :func:`repro.runtime.merge.merge_verdicts` and parallel runs report the
same counters as serial ones.  The serial backend ignores ``metrics``: its
chunks run in-process, so their increments already land where they belong.
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Iterator, List, Optional, Union

from repro.obs.metrics import MetricsRegistry, get_registry, merge_counters

#: Per-worker slot for the shipped context (set by the pool initializer).
_WORKER_CONTEXT: Any = None


def _worker_init(context: Any) -> None:
    """Pool initializer: stash the shared context in the worker process."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _worker_call(payload):
    """Run one chunk task against the worker-resident context."""
    fn, chunk = payload
    return fn(_WORKER_CONTEXT, chunk)


def _worker_call_metered(payload):
    """Run one chunk task, also capturing the worker's counter movement.

    The before-snapshot is taken per chunk (not per worker), so the shipped
    delta is exactly this chunk's contribution no matter how chunks are
    spread over pool workers or what the forked registry inherited.
    """
    fn, chunk = payload
    registry = get_registry()
    before = registry.counters(include_sources=True)
    result = fn(_WORKER_CONTEXT, chunk)
    return result, registry.counters_delta(before, include_sources=True)


class ExecutionBackend(ABC):
    """How sharded work gets executed (serially or across workers)."""

    #: Machine-readable backend name ("serial" / "process"), used by the CLI.
    name: str = "abstract"
    #: Degree of parallelism the backend offers (1 for serial).
    workers: int = 1

    @abstractmethod
    def imap(self, fn: Callable[[Any, Any], Any], chunks: Iterable,
             *, context: Any = None,
             metrics: Optional[MetricsRegistry] = None) -> Iterator:
        """Lazily yield ``fn(context, chunk)`` for each chunk, in order.

        The returned iterator is a generator: consumers that stop early must
        ``close()`` it (or exhaust it) so pooled backends can cancel the
        outstanding chunks — the idiom is ``try: ... finally: it.close()``.

        ``metrics`` asks pooled backends to capture each chunk's worker-side
        counter movement and fold it into the given registry as the chunk's
        result is yielded (see the module docstring); serial backends ignore
        it.
        """

    def map(self, fn: Callable[[Any, Any], Any], chunks: Iterable,
            *, context: Any = None,
            metrics: Optional[MetricsRegistry] = None) -> List:
        """Eager form of :meth:`imap` (all chunks, results in order)."""
        return list(self.imap(fn, chunks, context=context, metrics=metrics))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialBackend(ExecutionBackend):
    """Run every chunk inline in the calling process — the reference order."""

    name = "serial"
    workers = 1

    def imap(self, fn, chunks, *, context=None, metrics=None):
        # ``metrics`` is deliberately unused: in-process chunks increment
        # the live registries directly, so capture would double-count.
        for chunk in chunks:
            yield fn(context, chunk)


class ProcessPoolBackend(ExecutionBackend):
    """Fan chunks out over a :class:`multiprocessing.Pool`.

    Parameters
    ----------
    workers:
        Pool size; defaults to the usable CPU count.
    start_method:
        ``multiprocessing`` start method (``None`` keeps the platform
        default).  The context payload must pickle under any method; fork
        merely makes shipping cheaper.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None, *,
                 start_method: Optional[str] = None):
        if workers is None:
            workers = usable_cpu_count()
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self._start_method = start_method

    def imap(self, fn, chunks, *, context=None, metrics=None):
        mp = (multiprocessing.get_context(self._start_method)
              if self._start_method else multiprocessing)
        pool = mp.Pool(self.workers, initializer=_worker_init,
                       initargs=(context,))
        try:
            # Ordered imap: results come back in submission order whatever
            # the completion order, so merges stay deterministic.  Chunk
            # payloads already carry a worker-sized amount of work, so the
            # pool-level chunksize stays 1.
            if metrics is None:
                yield from pool.imap(_worker_call,
                                     ((fn, chunk) for chunk in chunks))
            else:
                for result, delta in pool.imap(
                        _worker_call_metered,
                        ((fn, chunk) for chunk in chunks)):
                    # Fold before yielding: a consumer that closes the
                    # generator after this chunk still gets its counters,
                    # while never-consumed speculative chunks ship nothing.
                    merge_counters(metrics, delta)
                    yield result
        finally:
            # Reached on exhaustion *and* on early generator close: breaking
            # out of the consuming loop cancels all outstanding chunks.
            pool.terminate()
            pool.join()


def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


BackendLike = Union[None, str, ExecutionBackend]


def get_backend(backend: BackendLike = None, workers: int = 1) -> ExecutionBackend:
    """Resolve a backend spec (name / instance / ``None``) into a backend.

    ``None`` and ``"auto"`` pick :class:`ProcessPoolBackend` when
    ``workers > 1`` and :class:`SerialBackend` otherwise; ``"serial"`` and
    ``"process"`` force the choice.  Existing instances pass through
    unchanged (their own ``workers`` wins).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if backend is None or backend == "auto":
        return ProcessPoolBackend(workers) if workers > 1 else SerialBackend()
    if backend == "serial":
        return SerialBackend()
    if backend == "process":
        return ProcessPoolBackend(workers)
    raise ValueError(
        f"unknown backend {backend!r}; expected 'auto', 'serial', or 'process'"
    )
