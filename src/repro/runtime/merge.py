"""Deterministic merges of per-chunk verdicts, witnesses, and counters.

Chunks are contiguous slices of a deterministic enumeration order and their
results are consumed *in order* (see :mod:`repro.runtime.backend`), so every
merge below reproduces exactly what the serial loop over the concatenated
chunks would have computed:

* :func:`merge_verdicts` — the verification merge: stop at the first chunk
  holding a violation; the witness is that chunk's first violation, the
  counters cover precisely the serial prefix (full chunks before it plus the
  violating chunk's scanned prefix).  Chunks *after* the stopping point may
  have been speculatively executed by a pooled backend; their results are
  discarded, which is the documented counter-merge rule — ``checked`` always
  means "the serial prefix", never "work performed".
* :func:`merge_argmax` — the adversarial-search merge: keep the first
  strictly-greater maximum in chunk order (ties resolve to the earlier
  chunk, matching the serial ``>`` update), stopping early once a chunk
  reports that it hit the search's stop condition.

Both consume lazily and close their iterator, so pooled backends cancel
outstanding chunks the moment the merge decides.

:func:`merge_counters` (re-exported from :mod:`repro.obs.metrics`) is the
third member of the toolkit: the one deterministic fold for flat counter
mappings shipped back from chunks — worker metric deltas, speculative-batch
oracle counts, pooled audit counts — into either a plain dict or a metrics
registry.  Counters folded through it obey the same serial-prefix rule as
the verdict merge, because consumers fold in submission order and discard
chunks past an early stop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Tuple

from repro.obs.metrics import merge_counters

__all__ = ["ChunkArgmax", "ChunkVerdict", "merge_argmax", "merge_counters",
           "merge_verdicts"]


@dataclass(frozen=True)
class ChunkVerdict:
    """What one verification chunk reports back.

    ``checked`` is the number of fault sets the chunk actually scanned: the
    whole chunk when clean, the prefix up to and including the first
    violation otherwise (the worker stops there, exactly like the serial
    loop).  ``worst`` is the maximum stretch over that scanned prefix.
    """

    checked: int
    worst: float
    witness: Optional[Any] = None       # canonical violating fault set
    witness_value: float = 0.0          # stretch of the witness

    @property
    def violated(self) -> bool:
        return self.witness is not None


@dataclass(frozen=True)
class ChunkArgmax:
    """What one adversarial-search chunk reports back.

    ``best`` / ``best_value`` follow the serial strict-``>`` update rule
    *within* the chunk; ``stopped`` records that the chunk hit the search's
    stop condition (infinite stretch, or a caller-supplied refutation
    threshold) and quit scanning early.
    """

    checked: int
    best: Optional[Any] = None
    best_value: float = 0.0
    stopped: bool = False


def merge_verdicts(outcomes: Iterator[ChunkVerdict]) -> ChunkVerdict:
    """Fold ordered chunk verdicts into the serial-equivalent verdict."""
    checked = 0
    worst = 1.0
    try:
        for outcome in outcomes:
            checked += outcome.checked
            if outcome.worst > worst:
                worst = outcome.worst
            if outcome.violated:
                return ChunkVerdict(checked=checked, worst=worst,
                                    witness=outcome.witness,
                                    witness_value=outcome.witness_value)
    finally:
        close = getattr(outcomes, "close", None)
        if close is not None:
            close()
    return ChunkVerdict(checked=checked, worst=worst)


def merge_argmax(outcomes: Iterator[ChunkArgmax]) -> ChunkArgmax:
    """Fold ordered chunk maxima into the serial-equivalent maximum."""
    checked = 0
    best: Optional[Any] = None
    best_value = 0.0
    try:
        for outcome in outcomes:
            checked += outcome.checked
            # Strict >: a later chunk only wins by genuinely beating the
            # running maximum, mirroring the serial first-max tie-break.
            if outcome.best is not None and outcome.best_value > best_value:
                best = outcome.best
                best_value = outcome.best_value
            if outcome.stopped:
                return ChunkArgmax(checked=checked, best=best,
                                   best_value=best_value, stopped=True)
    finally:
        close = getattr(outcomes, "close", None)
        if close is not None:
            close()
    return ChunkArgmax(checked=checked, best=best, best_value=best_value)
