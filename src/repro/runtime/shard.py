"""Auto-chunking shard planner: split sweeps into balanced, ordered chunks.

The runtime's unit of distribution is a *chunk* — a contiguous slice of the
deterministic enumeration order of some sweep (fault-set enumerations,
source-vertex sweeps, ``(pair, fault set)`` grids).  Contiguity is what makes
the parallel merges exact: the concatenation of the chunks *is* the serial
iteration order, so "first violation across chunks consumed in order" is the
same fault set the serial loop would have stopped at.

Chunk sizing balances two costs: chunks far smaller than the work per worker
waste IPC round-trips, chunks as large as ``total / workers`` lose both load
balancing (stretch checks vary wildly in cost — early-exit kernels) and
early-cancel granularity.  :func:`chunk_size_for` aims for a few chunks per
worker, clamped by ``min_chunk``.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, List, Sequence, Tuple

#: Target number of chunks handed to each worker (load-balance granularity).
_CHUNKS_PER_WORKER = 4


def chunk_size_for(total: int, workers: int, *, min_chunk: int = 1,
                   chunks_per_worker: int = _CHUNKS_PER_WORKER) -> int:
    """Balanced chunk size for ``total`` items over ``workers`` workers."""
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if min_chunk < 1:
        raise ValueError("min_chunk must be at least 1")
    if total <= 0:
        return min_chunk
    target = -(-total // (workers * chunks_per_worker))  # ceil division
    return max(min_chunk, target)


def plan_ranges(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` index ranges covering ``range(total)``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    return [(start, min(start + chunk_size, total))
            for start in range(0, max(total, 0), chunk_size)]


def iter_chunks(items: Iterable, chunk_size: int) -> Iterator[list]:
    """Yield successive lists of up to ``chunk_size`` items.

    Lazy: pulls from ``items`` only as chunks are requested, so a serial
    backend consuming an exponential enumeration never materialises more
    than one chunk at a time.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    iterator = iter(items)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


def split_sequence(items: Sequence, workers: int, *, min_chunk: int = 1,
                   chunks_per_worker: int = _CHUNKS_PER_WORKER) -> List[Sequence]:
    """Split a sequence into balanced contiguous chunks (order preserved)."""
    size = chunk_size_for(len(items), workers, min_chunk=min_chunk,
                          chunks_per_worker=chunks_per_worker)
    return [items[start:stop] for start, stop in plan_ranges(len(items), size)]
