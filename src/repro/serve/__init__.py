"""The persistent serving subsystem: a network API over the live engine.

Layering (transport stays importable without the engine loaded):

* :mod:`repro.serve.wire`     — stdlib HTTP/1.1 + WebSocket framing;
* :mod:`repro.serve.protocol` — request schemas, the verb registry, dispatch;
* :mod:`repro.serve.coalesce` — the cross-client batch coalescing window;
* :mod:`repro.serve.daemon`   — the asyncio daemon (routing, admission,
  drain, ``/health`` + ``/metrics``);
* :mod:`repro.serve.core`     — the only engine-aware module: binds the
  protocol onto a :class:`~repro.dynamic.live.LiveEngine`;
* :mod:`repro.serve.client`   — thin blocking HTTP/WebSocket client.
"""

from repro.serve.coalesce import CoalescingWindow
from repro.serve.daemon import ServingDaemon, WS_PATH
from repro.serve.protocol import (
    RequestError,
    audit_document,
    describe_verbs,
    dispatch,
    dispatch_sync,
    from_wire_distance,
    get_verb,
    register_verb,
    verb_for_path,
    wire_distance,
)

__all__ = [
    "CoalescingWindow",
    "ServingDaemon",
    "WS_PATH",
    "RequestError",
    "audit_document",
    "describe_verbs",
    "dispatch",
    "dispatch_sync",
    "from_wire_distance",
    "get_verb",
    "register_verb",
    "verb_for_path",
    "wire_distance",
]


def engine_core(engine, **kwargs):
    """Build an :class:`~repro.serve.core.EngineCore` (lazy engine import)."""
    from repro.serve.core import EngineCore

    return EngineCore(engine, **kwargs)
