"""A thin blocking client for the serving daemon.

:class:`DaemonClient` speaks the HTTP verb API over one keep-alive
``http.client`` connection; :meth:`DaemonClient.session` upgrades a second
socket to the WebSocket endpoint and returns a :class:`WebSocketSession`
for streaming query traffic.  Both are stdlib-only and engine-free, so
benchmark drivers and smoke tests import this module without pulling in
numpy or the query engine.

Distances come back as Python floats with ``math.inf`` restored from the
wire's ``null`` (see :func:`repro.serve.protocol.from_wire_distance`), so a
client-side answer compares bit-identically against a local engine's.
"""

from __future__ import annotations

import http.client
import json
import socket
from base64 import b64encode
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.serve.protocol import from_wire_distance, get_verb
from repro.serve.wire import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    encode_frame,
    read_frame_sync,
    websocket_accept_key,
)

__all__ = ["DaemonClient", "DaemonError", "WebSocketSession"]


class DaemonError(Exception):
    """A non-200 answer from the daemon; carries the HTTP status."""

    def __init__(self, message: str, status: int):
        super().__init__(message)
        self.status = status


def _query_document(source, target, faults: Sequence = ()) -> Dict[str, Any]:
    # Tuples (product-graph labels, edge faults) serialize as JSON lists,
    # which is exactly the wire convention the protocol restores.
    return {"source": source, "target": target, "faults": list(faults)}


def _update_documents(ops: Iterable) -> List[Dict[str, Any]]:
    from repro.dynamic.updates import UpdateOp, update_to_json

    documents = []
    for op in ops:
        documents.append(update_to_json(op) if isinstance(op, UpdateOp)
                         else dict(op))
    return documents


class DaemonClient:
    """One keep-alive HTTP connection to a serving daemon."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection = http.client.HTTPConnection(
            host, port, timeout=timeout)

    # --------------------------------------------------------------- plumbing
    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Any:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # The daemon closes connections on drain/wire errors; one clean
            # reconnect keeps long-lived clients usable across that.
            self._connection.close()
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        if response.getheader("Connection", "").lower() == "close":
            self._connection.close()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            document = json.loads(raw) if raw else {}
        else:
            document = raw.decode("utf-8")
        if response.status != 200:
            message = (document.get("error", raw.decode("utf-8", "replace"))
                       if isinstance(document, dict) else str(document))
            raise DaemonError(message, response.status)
        return document

    def call(self, verb: str, payload: Optional[Dict[str, Any]] = None
             ) -> Dict[str, Any]:
        """POST one verb request (path resolved from the shared registry)."""
        return self._request("POST", get_verb(verb).path, payload or {})

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- the verbs
    def distance(self, source, target, faults: Sequence = ()) -> float:
        document = self.call("distance",
                             _query_document(source, target, faults))
        return from_wire_distance(document["distance"])

    def distances_batch(self, queries: Sequence) -> List[float]:
        payload = {"queries": [
            _query_document(*query) if not isinstance(query, dict) else query
            for query in queries]}
        document = self.call("distances_batch", payload)
        return [from_wire_distance(value) for value in document["distances"]]

    def connectivity(self, source, target, faults: Sequence = ()) -> bool:
        document = self.call("connectivity",
                             _query_document(source, target, faults))
        return bool(document["connected"])

    def stretch_audit(self, source, target,
                      faults: Sequence = ()) -> Dict[str, Any]:
        document = self.call("stretch_audit",
                             _query_document(source, target, faults))
        return document["audit"]

    def update(self, ops: Iterable) -> Dict[str, Any]:
        """Apply journal ops (``UpdateOp`` objects or their JSON dicts)."""
        return self.call("update", {"updates": _update_documents(ops)})

    # ------------------------------------------------------------ operational
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def index(self) -> Dict[str, Any]:
        return self._request("GET", "/")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition body from ``/metrics``."""
        return self._request("GET", "/metrics")

    def session(self) -> "WebSocketSession":
        """Open a streaming WebSocket query session on a fresh socket."""
        return WebSocketSession(self.host, self.port, timeout=self.timeout)


class WebSocketSession:
    """A blocking WebSocket session against the daemon's ``/v1/ws``."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        key = b64encode(b"repro-serve-client-0").decode("ascii")
        handshake = (
            f"GET /v1/ws HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Upgrade: websocket\r\n"
            f"Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            f"Sec-WebSocket-Version: 13\r\n\r\n").encode("latin-1")
        self._sock.sendall(handshake)
        head = self._read_handshake()
        if b" 101 " not in head.split(b"\r\n", 1)[0]:
            raise DaemonError(
                f"websocket upgrade refused: {head.splitlines()[0]!r}", 400)
        expected = websocket_accept_key(key).encode("ascii")
        if expected not in head:
            raise DaemonError("websocket accept key mismatch", 400)
        self._next_id = 0

    def _read_handshake(self) -> bytes:
        head = b""
        while b"\r\n\r\n" not in head:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise DaemonError("connection closed during upgrade", 400)
            head += chunk
        return head

    def send(self, verb: str, payload: Dict[str, Any]) -> int:
        """Fire one request frame; returns its correlation id."""
        self._next_id += 1
        message = {"id": self._next_id, "verb": verb, "payload": payload}
        frame = encode_frame(json.dumps(message).encode("utf-8"),
                             OP_TEXT, mask=True)
        self._sock.sendall(frame)
        return self._next_id

    def recv(self) -> Dict[str, Any]:
        """Block for the next response frame (answers ping transparently)."""
        while True:
            opcode, payload = read_frame_sync(self._sock)
            if opcode == OP_PING:
                self._sock.sendall(encode_frame(payload, OP_PONG, mask=True))
                continue
            if opcode == OP_CLOSE:
                raise DaemonError("session closed by daemon", 503)
            if opcode == OP_TEXT:
                return json.loads(payload)

    def ask(self, verb: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip; raises on a non-ok answer."""
        message_id = self.send(verb, payload)
        response = self.recv()
        if response.get("id") != message_id:  # pragma: no cover - pipelining
            raise DaemonError(
                f"out-of-order response {response.get('id')!r} "
                f"to request {message_id}", 500)
        if not response.get("ok"):
            raise DaemonError(response.get("error", "request failed"),
                              int(response.get("status", 500)))
        return response["result"]

    def distance(self, source, target, faults: Sequence = ()) -> float:
        result = self.ask("distance", _query_document(source, target, faults))
        return from_wire_distance(result["distance"])

    def close(self) -> None:
        try:
            self._sock.sendall(encode_frame(b"", OP_CLOSE, mask=True))
            self._sock.settimeout(1.0)
            read_frame_sync(self._sock)  # the daemon echoes the close
        except Exception:  # noqa: BLE001 - best-effort goodbye
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "WebSocketSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
