"""The cross-client coalescing window.

The group planner's fused sweeps (:mod:`repro.engine.batch`) only amortize
within one ``distances_batch`` call — a fleet of clients each sending one
query at a time gets none of the 4.9x batching win.  The
:class:`CoalescingWindow` restores it *across* connections: in-flight
distance requests park for at most ``window_seconds`` (or until
``max_batch`` queries gather), then the merged batch runs through one
``distances_batch`` call and each request's future is resolved from its
slice of the merged answer.

Answers are identical to per-request execution by the engine's own batching
contract (batching is an execution strategy, not an approximation), so the
window trades a bounded few milliseconds of latency for one fused kernel
sweep instead of N.

``window_seconds=0`` degenerates to flush-on-submit: every request runs
immediately in its own batch (coalescing *off*), which is also what the
one-shot CLI core uses — no event-loop timer is ever armed, so it works
under a throwaway ``asyncio.run``.

Single-loop discipline: everything here runs on the daemon's event loop and
the runner is a synchronous engine call, so a flush is atomic from the
loop's point of view — no locks, no partially merged batches.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs.metrics import SIZE_BUCKETS, MetricsRegistry, component_registry

__all__ = ["CoalescingWindow"]


class CoalescingWindow:
    """Merge concurrent distance requests into single engine batches.

    Parameters
    ----------
    runner:
        ``callable(queries) -> distances`` — the synchronous merged-batch
        executor (``engine.distances_batch``).
    window_seconds:
        How long the first request of a window waits for company; ``0``
        disables coalescing (flush on every submit).
    max_batch:
        Flush early once this many queries are pending, bounding both the
        merged batch size and the extra latency under load.
    metrics:
        Registry to host the ``serve.coalesce.*`` family (defaults to a
        component registry attached to the process default).
    """

    def __init__(self, runner: Callable[[List], Sequence[float]], *,
                 window_seconds: float = 0.002, max_batch: int = 512,
                 metrics: Optional[MetricsRegistry] = None):
        if window_seconds < 0:
            raise ValueError("window_seconds must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.runner = runner
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self.metrics = metrics if metrics is not None else component_registry(
            "serve.coalesce")
        self._pending: List[Tuple[List, "asyncio.Future", float]] = []
        self._pending_queries = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        self._batches = self.metrics.counter(
            "serve.coalesce.batches", "merged batches flushed to the engine")
        self._requests = self.metrics.counter(
            "serve.coalesce.requests", "requests that entered the window")
        self._queries = self.metrics.counter(
            "serve.coalesce.queries", "queries that entered the window")
        self._occupancy = self.metrics.histogram(
            "serve.coalesce.occupancy",
            "queries per merged batch (cross-client amortization)",
            buckets=SIZE_BUCKETS)
        self._wait_seconds = self.metrics.histogram(
            "serve.coalesce.wait_seconds",
            "time a request parked in the window before its batch ran")

    # ------------------------------------------------------------ reporting
    @property
    def pending_queries(self) -> int:
        """Queries currently parked in the open window."""
        return self._pending_queries

    @property
    def batches_flushed(self) -> int:
        return self._batches.value

    @property
    def requests_coalesced(self) -> int:
        return self._requests.value

    # ------------------------------------------------------------ the window
    async def submit(self, queries: List) -> List[float]:
        """Park ``queries`` in the window; resolves with their answers.

        All queries of one submit stay contiguous in the merged batch, so
        the answer slice is positional.  Raises whatever the runner raised
        (every request of the failed batch sees the same exception).
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((list(queries), future, time.perf_counter()))
        self._pending_queries += len(queries)
        self._requests.inc()
        self._queries.inc(len(queries))
        if self._pending_queries >= self.max_batch or self.window_seconds <= 0:
            self.flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window_seconds, self.flush)
        return await future

    def flush(self) -> None:
        """Run the merged batch now and resolve every parked request.

        Synchronous and atomic on the loop: by the time it returns, every
        future that was pending is resolved (with answers or the runner's
        exception).  Also the drain hook — a draining daemon flushes so
        in-flight batches complete before shutdown.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        self._pending_queries = 0
        if not pending:
            return
        merged: List = []
        for queries, _, _ in pending:
            merged.extend(queries)
        resolved_at = time.perf_counter()
        self._batches.inc()
        self._occupancy.observe(len(merged))
        try:
            answers = list(self.runner(merged))
        except Exception as error:  # pragma: no cover - engine bugs only
            for _, future, _ in pending:
                if not future.done():
                    future.set_exception(error)
            return
        if len(answers) != len(merged):
            mismatch = RuntimeError(
                f"runner answered {len(answers)} of {len(merged)} queries")
            for _, future, _ in pending:
                if not future.done():
                    future.set_exception(mismatch)
            return
        offset = 0
        for queries, future, parked_at in pending:
            slice_ = answers[offset:offset + len(queries)]
            offset += len(queries)
            self._wait_seconds.observe(resolved_at - parked_at)
            if not future.done():  # client may have disconnected (cancelled)
                future.set_result(slice_)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CoalescingWindow window={self.window_seconds * 1000:.1f}ms "
                f"max_batch={self.max_batch} pending={self._pending_queries} "
                f"batches={self.batches_flushed}>")
