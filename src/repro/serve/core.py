"""The engine-facing core: protocol verbs bound to a real query engine.

:class:`EngineCore` implements the duck-typed core protocol of
:mod:`repro.serve.protocol` over a :class:`~repro.dynamic.live.LiveEngine`
(read/write) or a plain :class:`~repro.engine.engine.QueryEngine`
(read-only), keeping transport strictly separate from the engine: the
daemon and the one-shot CLI both hold a core, never an engine, and tests
substitute a fake core without importing any engine machinery.

Read path: every ``distances`` call goes through the core's
:class:`~repro.serve.coalesce.CoalescingWindow`, so concurrent requests
from *different* connections merge into one ``distances_batch`` call —
that is the daemon's whole reason to exist.  The one-shot CLI builds the
core with ``window_seconds=0`` (a degenerate window that flushes on every
submit), so both surfaces run literally the same code path.

Write path: ``apply_updates`` first flushes the open window — the update
is a serialization barrier, so requests that were already parked resolve
against the pre-update spanner — then applies each op through the live
engine (which syncs the result cache atomically per op) and appends it to
the daemon's own :class:`~repro.dynamic.updates.UpdateJournal`.  The
journal offset in the response is the client-visible lineage cursor.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.dynamic.updates import UpdateError, UpdateJournal, UpdateOp
from repro.obs.metrics import MetricsRegistry, component_registry
from repro.serve.coalesce import CoalescingWindow
from repro.serve.protocol import RequestError

__all__ = ["EngineCore"]


class EngineCore:
    """Bind the protocol's core interface onto a query engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.dynamic.live.LiveEngine` (its ``apply`` makes the
        ``update`` verb available) or any read-only engine exposing
        ``snapshot`` / ``distances_batch`` / ``stretch_audit``.
    window_seconds / max_batch:
        The coalescing window (see :class:`CoalescingWindow`); ``0``
        disables coalescing.
    journal:
        The journal recording every op applied through this core; a fresh
        empty one by default (offset 0 = the snapshot as loaded).
    """

    def __init__(self, engine, *, window_seconds: float = 0.002,
                 max_batch: int = 512,
                 journal: Optional[UpdateJournal] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.engine = engine
        self.snapshot = engine.snapshot
        self.fault_model = self.snapshot.fault_model
        self.writable = hasattr(engine, "apply")
        self.journal = (journal if journal is not None
                        else UpdateJournal(name="daemon"))
        self.metrics = (metrics if metrics is not None
                        else component_registry("serve.core"))
        self.window = CoalescingWindow(
            engine.distances_batch, window_seconds=window_seconds,
            max_batch=max_batch, metrics=self.metrics)
        self._updates_applied = self.metrics.counter(
            "serve.updates_applied", "journal ops applied via /v1/update")
        self._updates_spanner_changed = self.metrics.counter(
            "serve.updates_spanner_changed",
            "applied ops that mutated the served spanner")

    # ------------------------------------------------------------- the core
    async def distances(self, queries: List) -> List[float]:
        """Answer query triples through the coalescing window."""
        return await self.window.submit(queries)

    async def audit(self, source, target, faults):
        """One stretch audit (bypasses the window: audits are diagnostics)."""
        from repro.engine.engine import EngineError

        try:
            return self.engine.stretch_audit(source, target, faults)
        except EngineError as error:
            # Snapshot kept no original graph — a deployment property, so
            # 409 (the request is well-formed, this server can't serve it).
            raise RequestError(str(error), status=409) from None

    async def apply_updates(self, ops: Sequence[UpdateOp]) -> Dict[str, Any]:
        """Apply ops in order through the live maintainer.

        Ops apply one at a time exactly like a journal replay; on the first
        inapplicable op the report carries how many earlier ops *did* apply
        (and were journalled) so the client can resynchronize.
        """
        if not self.writable:
            raise RequestError(
                "this daemon serves an immutable snapshot (no live "
                "maintainer); restart it from a snapshot that carries the "
                "original graph to enable /v1/update", status=409)
        # Serialization barrier: requests already parked in the window
        # resolve against the pre-update spanner.
        self.window.flush()
        applied = 0
        spanner_changed = 0
        outcomes = []
        for op in ops:
            try:
                outcome = self.engine.apply(op)
            except UpdateError as error:
                raise RequestError(
                    f"update {applied} of {len(ops)} failed after "
                    f"{applied} applied: {error}", status=409) from None
            self.journal.append(op)
            applied += 1
            if outcome.spanner_changed:
                spanner_changed += 1
            outcomes.append({"op": op.kind,
                             "edge": list(op.edge),
                             "spanner_changed": outcome.spanner_changed})
        self._updates_applied.inc(applied)
        self._updates_spanner_changed.inc(spanner_changed)
        return {
            "applied": applied,
            "spanner_changed": spanner_changed,
            "journal_offset": len(self.journal),
            "outcomes": outcomes,
        }

    # ------------------------------------------------------------- reporting
    def describe(self) -> Dict[str, Any]:
        """JSON-safe engine + lineage summary for ``/health``."""
        spec = self.snapshot.build_spec
        return {
            "snapshot": self.snapshot.describe(),
            "build_spec": spec.to_json() if spec is not None else None,
            "writable": self.writable,
            "journal_offset": len(self.journal),
            "spanner_version": self.snapshot.spanner.version,
        }

    def stats(self) -> Dict[str, Any]:
        """The engine's serving report plus the core's write-path ledger."""
        return {
            **self.engine.stats(),
            "journal_offset": len(self.journal),
            "coalesce": {
                "window_seconds": self.window.window_seconds,
                "max_batch": self.window.max_batch,
                "batches_flushed": self.window.batches_flushed,
                "requests_coalesced": self.window.requests_coalesced,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EngineCore {'live' if self.writable else 'frozen'} "
                f"model={self.fault_model} "
                f"journal_offset={len(self.journal)}>")
