"""The persistent serving daemon: an asyncio network API over one core.

:class:`ServingDaemon` is pure transport + policy: it owns the listening
socket, routes HTTP and WebSocket traffic through the verb registry of
:mod:`repro.serve.protocol`, enforces admission control, and exposes the
operational endpoints.  Everything engine-shaped lives behind the core
(:mod:`repro.serve.core` in production, a fake in tests), so this module
imports no engine code and runs on the stdlib alone.

Endpoints
---------
* ``GET /``            — index: the verb registry plus operational routes;
* ``GET /health``      — liveness + snapshot lineage (build spec, journal
  offset, spanner version); reports ``"draining"`` during shutdown;
* ``GET /metrics``     — Prometheus text exposition of the process metrics
  registry (:func:`repro.obs.export.render_prometheus`), including the
  ``repro_serve_*`` families;
* ``POST /v1/<verb>``  — every verb registered in the protocol
  (``distance``, ``distances_batch``, ``connectivity``, ``stretch_audit``,
  ``update``), one JSON document in, one out;
* ``GET /v1/ws``       — WebSocket upgrade for streaming query sessions:
  each text frame is ``{"id", "verb", "payload"}``, answered by
  ``{"id", "ok", "result" | "error"}``; requests within one session run
  concurrently, so pipelined frames coalesce like separate connections.

Admission control
-----------------
The daemon bounds its in-flight request count: past ``queue_limit``
requests (HTTP and WebSocket alike) are answered ``429`` immediately, so a
saturated daemon sheds load instead of queueing unboundedly.  During drain
(SIGTERM/SIGINT or :meth:`ServingDaemon.drain`) new work is answered
``503`` while in-flight requests — including batches parked in the
coalescing window — run to completion before the process exits.

Threading: the daemon is single-loop.  :meth:`wait_until_started` and
:meth:`request_drain` are the only thread-safe entry points, provided so
tests and benchmarks can run the loop in a background thread.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from typing import Any, Dict, Optional, Set, Tuple

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry, component_registry, get_registry
from repro.serve.protocol import (
    RequestError,
    describe_verbs,
    dispatch,
    verb_for_path,
)
from repro.serve.wire import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    HttpRequest,
    WireError,
    encode_frame,
    read_frame,
    read_http_request,
    response_bytes,
    websocket_accept_key,
)

__all__ = ["ServingDaemon", "WS_PATH"]

#: The WebSocket mount point for streaming query sessions.
WS_PATH = "/v1/ws"

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


def _json_bytes(document: Any) -> bytes:
    return (json.dumps(document) + "\n").encode("utf-8")


class ServingDaemon:
    """Serve one core over HTTP + WebSocket until told to drain.

    Parameters
    ----------
    core:
        The protocol core (see :mod:`repro.serve.protocol`) answering the
        verbs.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    queue_limit:
        Max in-flight requests before new ones are answered ``429``.
    drain_grace_seconds:
        How long :meth:`drain` waits for in-flight requests before
        force-closing connections.
    """

    def __init__(self, core, *, host: str = "127.0.0.1", port: int = 0,
                 queue_limit: int = 256, drain_grace_seconds: float = 10.0,
                 metrics: Optional[MetricsRegistry] = None):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.core = core
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.drain_grace_seconds = drain_grace_seconds
        self.metrics = (metrics if metrics is not None
                        else component_registry("serve"))
        self._requests = self.metrics.counter(
            "serve.requests", "API requests by verb and status")
        self._request_seconds = self.metrics.histogram(
            "serve.request_seconds",
            "wall time from request parsed to response written")
        self._queue_depth = self.metrics.gauge(
            "serve.queue_depth", "requests currently in flight")
        self._connections = self.metrics.gauge(
            "serve.connections", "open client connections")
        self._inflight = 0
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._started_at = time.monotonic()
        self._writers: Set[asyncio.StreamWriter] = set()

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._started.set()

    async def run(self, *, install_signals: bool = True) -> None:
        """Start (if needed), serve until drained, then close the socket."""
        if self._server is None:
            await self.start()
        if install_signals:
            self.install_signal_handlers()
        try:
            await self._stopped.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()

    def install_signal_handlers(self) -> None:
        """SIGTERM / SIGINT trigger a graceful drain."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(self.drain()))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loops; drain stays reachable via the API

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight work, stop.

        Idempotent.  New requests are answered ``503`` the moment draining
        starts; requests already past admission — including distance
        batches parked in the coalescing window — complete normally (up to
        the grace period), then remaining connections are force-closed.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        deadline = time.monotonic() + self.drain_grace_seconds
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        # Anything still parked in an open window resolves now.
        window = getattr(self.core, "window", None)
        if window is not None:
            window.flush()
        for writer in list(self._writers):
            writer.close()
        self._stopped.set()

    # ------------------------------------------------- thread-safe entry points
    def wait_until_started(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Block (from another thread) until the socket is bound."""
        if not self._started.wait(timeout):
            raise TimeoutError("daemon did not start in time")
        return self.host, self.port

    def request_drain(self) -> None:
        """Trigger :meth:`drain` from any thread."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.drain()))

    # ------------------------------------------------------------ connections
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._connections.inc()
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_http_request(reader)
                except WireError as error:
                    writer.write(response_bytes(
                        400, _json_bytes({"error": str(error)}),
                        keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                if request.wants_websocket:
                    await self._websocket_session(request, reader, writer)
                    return
                keep_alive = await self._handle_http(request, writer)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            self._connections.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------- HTTP
    async def _handle_http(self, request: HttpRequest,
                           writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection."""
        keep_alive = request.keep_alive and not self._draining
        status, body, content_type, verb_name = await self._route(request)
        writer.write(response_bytes(status, body, content_type=content_type,
                                    keep_alive=keep_alive))
        await writer.drain()
        self._requests.labels(verb=verb_name, status=str(status)).inc()
        return keep_alive

    async def _route(self, request: HttpRequest) -> Tuple[int, bytes, str, str]:
        path = request.path.rstrip("/") or "/"
        if path == "/" and request.method == "GET":
            return 200, _json_bytes(self._index_document()), _JSON, "index"
        if path == "/health" and request.method == "GET":
            return 200, _json_bytes(self.health_document()), _JSON, "health"
        if path == "/metrics" and request.method == "GET":
            body = render_prometheus(get_registry().snapshot())
            return 200, body.encode("utf-8"), _PROMETHEUS, "metrics"
        verb = verb_for_path(path)
        if verb is None:
            return (404, _json_bytes({"error": f"no endpoint at {path}"}),
                    _JSON, "unknown")
        if request.method != "POST":
            return (405, _json_bytes(
                {"error": f"{verb.path} expects POST, got {request.method}"}),
                _JSON, verb.name)
        try:
            payload = json.loads(request.body) if request.body else {}
        except json.JSONDecodeError as error:
            return (400, _json_bytes({"error": f"bad JSON body: {error}"}),
                    _JSON, verb.name)
        status, document = await self._admit_and_dispatch(verb.name, payload)
        return status, _json_bytes(document), _JSON, verb.name

    async def _admit_and_dispatch(self, verb_name: str,
                                  payload: Any) -> Tuple[int, Dict[str, Any]]:
        """Admission control + dispatch, shared by HTTP and WebSocket."""
        if self._draining:
            return 503, {"error": "daemon is draining", "status": 503}
        if self._inflight >= self.queue_limit:
            return 429, {"error": f"daemon saturated "
                                  f"({self._inflight} requests in flight, "
                                  f"limit {self.queue_limit}); retry",
                         "status": 429}
        self._inflight += 1
        self._queue_depth.set(self._inflight)
        started = time.perf_counter()
        try:
            document = await dispatch(self.core, verb_name, payload)
            return 200, document
        except RequestError as error:
            return error.status, {"error": str(error), "status": error.status}
        except Exception as error:  # noqa: BLE001 - the daemon must not die
            return 500, {"error": f"internal error: {error}", "status": 500}
        finally:
            self._inflight -= 1
            self._queue_depth.set(self._inflight)
            self._request_seconds.observe(time.perf_counter() - started)

    # -------------------------------------------------------------- WebSocket
    async def _websocket_session(self, request: HttpRequest,
                                 reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        key = request.header("sec-websocket-key")
        if request.path != WS_PATH or not key:
            writer.write(response_bytes(
                404 if request.path != WS_PATH else 400,
                _json_bytes({"error": "websocket sessions live at "
                                      f"{WS_PATH} and need a key"}),
                keep_alive=False))
            await writer.drain()
            return
        accept = websocket_accept_key(key)
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {accept}\r\n\r\n").encode("latin-1"))
        await writer.drain()
        self._requests.labels(verb="ws", status="101").inc()
        send_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    opcode, payload = await read_frame(reader)
                except WireError:
                    break
                if opcode == OP_CLOSE:
                    writer.write(encode_frame(payload, OP_CLOSE))
                    await writer.drain()
                    break
                if opcode == OP_PING:
                    async with send_lock:
                        writer.write(encode_frame(payload, OP_PONG))
                        await writer.drain()
                    continue
                if opcode != OP_TEXT:
                    continue
                # Concurrent per-message tasks: pipelined frames from one
                # session coalesce exactly like separate connections.
                task = asyncio.ensure_future(
                    self._ws_message(payload, writer, send_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

    async def _ws_message(self, payload: bytes, writer: asyncio.StreamWriter,
                          send_lock: asyncio.Lock) -> None:
        message_id = None
        try:
            message = json.loads(payload)
            message_id = message.get("id") if isinstance(message, dict) else None
            if not isinstance(message, dict) or "verb" not in message:
                raise RequestError('frame must be {"id", "verb", "payload"}')
            verb_name = message["verb"]
            status, document = await self._admit_and_dispatch(
                verb_name, message.get("payload"))
        except RequestError as error:
            status, document = error.status, {"error": str(error)}
            verb_name = "ws"
        except json.JSONDecodeError as error:
            status, document = 400, {"error": f"bad JSON frame: {error}"}
            verb_name = "ws"
        response: Dict[str, Any] = {"id": message_id, "ok": status == 200}
        if status == 200:
            response["result"] = document
        else:
            response["status"] = status
            response["error"] = document.get("error", "request failed")
        self._requests.labels(verb=verb_name, status=str(status)).inc()
        try:
            async with send_lock:
                writer.write(encode_frame(_json_bytes(response), OP_TEXT))
                await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass

    # -------------------------------------------------------------- documents
    def _index_document(self) -> Dict[str, Any]:
        endpoints = describe_verbs()
        endpoints.extend([
            {"verb": "health", "path": "/health",
             "summary": "liveness + snapshot lineage", "write": False},
            {"verb": "metrics", "path": "/metrics",
             "summary": "Prometheus text exposition", "write": False},
            {"verb": "ws", "path": WS_PATH,
             "summary": "WebSocket streaming query session", "write": False},
        ])
        return {"service": "repro-spanner daemon", "endpoints": endpoints}

    def health_document(self) -> Dict[str, Any]:
        """The ``/health`` body: liveness, admission state, and lineage."""
        window = getattr(self.core, "window", None)
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": time.monotonic() - self._started_at,
            "inflight": self._inflight,
            "queue_limit": self.queue_limit,
            "pending_queries": (window.pending_queries
                                if window is not None else 0),
            "engine": self.core.describe(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "draining" if self._draining else "serving"
        return (f"<ServingDaemon {state} {self.host}:{self.port} "
                f"inflight={self._inflight}>")
