"""Request schemas, the verb handler registry, and the dispatch loop.

This module is the *one* definition of the serving API's shapes: what a
request payload for each verb looks like, and what the response document
looks like.  Both serving surfaces run through it —

* the persistent daemon (:mod:`repro.serve.daemon`) routes every
  ``POST /v1/<verb>`` body and every WebSocket message here;
* the one-shot ``repro-spanner serve`` / ``query`` CLI verbs build their
  JSON reports from the same render functions —

so the two surfaces cannot drift apart.

Verbs register declaratively with :func:`register_verb`: a new endpoint is
one :class:`Verb` subclass with ``parse`` / ``execute`` / ``render``
methods, and the daemon picks up its route from the registry (the MAAS
websocket handler-registry shape).  Handlers never touch sockets and never
construct engines — they speak to a *core*, the duck-typed bridge described
below, so the whole protocol layer is importable and testable without the
query engine loaded.

The core protocol
-----------------
A core is any object with:

* ``fault_model`` — the snapshot's fault model name (``"vertex"``/``"edge"``);
* ``async distances(queries)`` — answer ``(source, target, faults)``
  triples (this is where the daemon's coalescing window lives);
* ``async audit(source, target, faults)`` — one stretch audit (an object
  with the :class:`repro.engine.engine.StretchAudit` attributes);
* ``async apply_updates(ops)`` — apply parsed update ops, returning an
  application report dict (raises :class:`RequestError` when read-only);
* ``describe()`` — a JSON-safe summary for ``/health``.

Wire conventions
----------------
* Node labels are JSON scalars; tuple labels (product graphs) travel as
  lists and are restored exactly like the graph JSON format.
* A fault set is a list of nodes (vertex model) or ``[u, v]`` pairs (edge
  model).
* Distances are JSON numbers, with ``null`` for *unreachable* (JSON has no
  ``Infinity``); :func:`wire_distance` / :func:`from_wire_distance` are the
  only mapping.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dynamic.updates import UpdateError, update_from_json
from repro.faults.models import get_fault_model
from repro.graph.io import _restore_node

__all__ = [
    "RequestError",
    "Verb",
    "VERBS",
    "register_verb",
    "get_verb",
    "verb_for_path",
    "describe_verbs",
    "dispatch",
    "dispatch_sync",
    "parse_query",
    "parse_queries",
    "audit_document",
    "wire_distance",
    "from_wire_distance",
]


class RequestError(ValueError):
    """A request the protocol refuses; carries the HTTP status to answer."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def wire_distance(value: float) -> Optional[float]:
    """A distance as it travels in JSON: ``None`` for unreachable."""
    return None if math.isinf(value) else value


def from_wire_distance(value: Optional[float]) -> float:
    """Invert :func:`wire_distance` (client side)."""
    return math.inf if value is None else float(value)


# ---------------------------------------------------------------------------
# Payload parsing
# ---------------------------------------------------------------------------

def _parse_node(value: Any) -> Any:
    """Restore one node label from its JSON form (lists become tuples)."""
    return _restore_node(value)


def parse_faults(value: Any, fault_model: str) -> Tuple:
    """Parse a request's fault list under the given model."""
    if value is None:
        return ()
    if not isinstance(value, (list, tuple)):
        raise RequestError(f"faults must be a list, got {type(value).__name__}")
    faults = []
    for element in value:
        if fault_model == "edge":
            if not isinstance(element, (list, tuple)) or len(element) != 2:
                raise RequestError(
                    f"edge fault {element!r} must be a [u, v] pair")
            faults.append((_parse_node(element[0]), _parse_node(element[1])))
        else:
            faults.append(_parse_node(element))
    return tuple(faults)


def _render_faults(faults: Sequence) -> List:
    """Faults back into their JSON form (tuples become lists)."""
    return [list(fault) if isinstance(fault, tuple) else fault
            for fault in faults]


def parse_query(payload: Any, fault_model: str) -> Tuple[Any, Any, Tuple]:
    """One ``(source, target, faults)`` triple from a dict or 2/3-list."""
    if isinstance(payload, dict):
        missing = [key for key in ("source", "target") if key not in payload]
        if missing:
            raise RequestError(f"query is missing {', '.join(missing)}")
        return (_parse_node(payload["source"]), _parse_node(payload["target"]),
                parse_faults(payload.get("faults"), fault_model))
    if isinstance(payload, (list, tuple)) and len(payload) in (2, 3):
        faults = payload[2] if len(payload) == 3 else ()
        return (_parse_node(payload[0]), _parse_node(payload[1]),
                parse_faults(faults, fault_model))
    raise RequestError(
        "query must be {source, target, faults?} or [source, target, faults?]")


def parse_queries(payload: Any, fault_model: str) -> List[Tuple]:
    """The ``queries`` list of a ``distances_batch`` request."""
    if not isinstance(payload, dict) or "queries" not in payload:
        raise RequestError("payload must be {\"queries\": [...]}")
    queries = payload["queries"]
    if not isinstance(queries, list):
        raise RequestError("queries must be a list")
    return [parse_query(entry, fault_model) for entry in queries]


def audit_document(audit: Any) -> Dict[str, Any]:
    """The JSON form of one stretch audit — shared with ``query --audit``."""
    return {
        "distance": wire_distance(audit.spanner_distance),
        "original_distance": wire_distance(audit.original_distance),
        "stretch": wire_distance(audit.stretch),
        "required_stretch": audit.required_stretch,
        "within_budget": audit.within_budget,
        "ok": audit.ok,
    }


# ---------------------------------------------------------------------------
# The verb registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Verb:
    """One registered API verb: schema, execution, and rendering."""

    name: str
    path: str
    summary: str
    parse: Callable[[Any, str], Any]
    execute: Callable[..., Any]  # async (core, parsed) -> result
    render: Callable[[Any, Any], Dict[str, Any]]  # (parsed, result) -> doc
    write: bool = False  # whether the verb mutates the served spanner


VERBS: Dict[str, Verb] = {}
_PATHS: Dict[str, Verb] = {}


def register_verb(name: str, *, path: str, summary: str,
                  write: bool = False) -> Callable:
    """Class decorator registering a verb's parse/execute/render trio."""
    def decorator(namespace):
        verb = Verb(name=name, path=path, summary=summary,
                    parse=namespace.parse, execute=namespace.execute,
                    render=namespace.render, write=write)
        if name in VERBS:
            raise ValueError(f"verb {name!r} already registered")
        if path in _PATHS:
            raise ValueError(f"path {path!r} already registered")
        VERBS[name] = verb
        _PATHS[path] = verb
        return namespace
    return decorator


def get_verb(name: str) -> Verb:
    verb = VERBS.get(name)
    if verb is None:
        raise RequestError(
            f"unknown verb {name!r}; expected one of {sorted(VERBS)}",
            status=404)
    return verb


def verb_for_path(path: str) -> Optional[Verb]:
    """The verb mounted at an HTTP path, or ``None``."""
    return _PATHS.get(path)


def describe_verbs() -> List[Dict[str, Any]]:
    """The registry as a JSON-safe table (the daemon's index document)."""
    return [{"verb": verb.name, "path": verb.path, "summary": verb.summary,
             "write": verb.write}
            for verb in sorted(VERBS.values(), key=lambda v: v.name)]


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

async def dispatch(core, verb_name: str, payload: Any) -> Dict[str, Any]:
    """Parse → execute → render one request against ``core``.

    Everything the protocol can reject surfaces as :class:`RequestError`
    (with its HTTP status); anything else is a genuine server bug and is
    left to the caller's 500 handler.
    """
    verb = get_verb(verb_name)
    # Unknown fault models fail loudly here, before any engine work.
    get_fault_model(core.fault_model)
    parsed = verb.parse(payload if payload is not None else {},
                        core.fault_model)
    result = await verb.execute(core, parsed)
    return verb.render(parsed, result)


def dispatch_sync(core, verb_name: str, payload: Any) -> Dict[str, Any]:
    """Blocking :func:`dispatch` for the one-shot CLI surfaces.

    The core used here must resolve without a running event loop (the
    direct core's ``distances`` does — its coalescing window is degenerate),
    so ``asyncio.run`` completes in one pass.
    """
    return asyncio.run(dispatch(core, verb_name, payload))


# ---------------------------------------------------------------------------
# The verbs
# ---------------------------------------------------------------------------

@register_verb("distance", path="/v1/distance",
               summary="one fault-tolerant distance query")
class _DistanceVerb:
    @staticmethod
    def parse(payload, fault_model):
        return parse_query(payload, fault_model)

    @staticmethod
    async def execute(core, parsed):
        return (await core.distances([parsed]))[0]

    @staticmethod
    def render(parsed, result):
        source, target, faults = parsed
        return {
            "verb": "distance",
            "source": source,
            "target": target,
            "faults": _render_faults(faults),
            "distance": wire_distance(result),
            "reachable": not math.isinf(result),
        }


@register_verb("distances_batch", path="/v1/distances_batch",
               summary="a batch of distance queries (grouped and coalesced)")
class _DistancesBatchVerb:
    @staticmethod
    def parse(payload, fault_model):
        return parse_queries(payload, fault_model)

    @staticmethod
    async def execute(core, parsed):
        if not parsed:
            return []
        return await core.distances(parsed)

    @staticmethod
    def render(parsed, result):
        return {
            "verb": "distances_batch",
            "count": len(result),
            "distances": [wire_distance(value) for value in result],
        }


@register_verb("connectivity", path="/v1/connectivity",
               summary="reachability under a fault set")
class _ConnectivityVerb:
    @staticmethod
    def parse(payload, fault_model):
        return parse_query(payload, fault_model)

    @staticmethod
    async def execute(core, parsed):
        return (await core.distances([parsed]))[0]

    @staticmethod
    def render(parsed, result):
        source, target, faults = parsed
        return {
            "verb": "connectivity",
            "source": source,
            "target": target,
            "faults": _render_faults(faults),
            "connected": not math.isinf(result),
        }


@register_verb("stretch_audit", path="/v1/stretch_audit",
               summary="served distance vs the original graph's ground truth")
class _StretchAuditVerb:
    @staticmethod
    def parse(payload, fault_model):
        return parse_query(payload, fault_model)

    @staticmethod
    async def execute(core, parsed):
        source, target, faults = parsed
        return await core.audit(source, target, faults)

    @staticmethod
    def render(parsed, result):
        source, target, faults = parsed
        return {
            "verb": "stretch_audit",
            "source": source,
            "target": target,
            "faults": _render_faults(faults),
            "audit": audit_document(result),
        }


@register_verb("update", path="/v1/update", write=True,
               summary="apply update-journal ops through the maintainer")
class _UpdateVerb:
    @staticmethod
    def parse(payload, fault_model):
        if not isinstance(payload, dict) or "updates" not in payload:
            raise RequestError("payload must be {\"updates\": [...]}")
        documents = payload["updates"]
        if not isinstance(documents, list):
            raise RequestError("updates must be a list of journal op dicts")
        try:
            return [update_from_json(document) for document in documents]
        except (UpdateError, KeyError, TypeError, ValueError) as error:
            raise RequestError(f"bad update op: {error}") from None

    @staticmethod
    async def execute(core, parsed):
        return await core.apply_updates(parsed)

    @staticmethod
    def render(parsed, result):
        return {"verb": "update", **result}
