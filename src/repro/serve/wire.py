"""Wire-level transport primitives: HTTP/1.1 parsing and WebSocket frames.

This module is the daemon's entire dependency on the network protocols — a
minimal, stdlib-only implementation of exactly what the serving daemon
(:mod:`repro.serve.daemon`) and the thin client (:mod:`repro.serve.client`)
speak:

* HTTP/1.1 requests with ``Content-Length`` bodies and keep-alive (no
  chunked transfer, no multipart — the API is small JSON documents);
* RFC 6455 WebSocket handshake keys and single-fragment frames (text,
  close, ping/pong), with client-side masking.

Nothing here knows about graphs, engines, or request schemas: the functions
take readers/sockets and bytes, so the layer is testable against literal
byte strings and reusable from both the asyncio server and the blocking
client.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "HttpRequest",
    "WireError",
    "read_http_request",
    "response_bytes",
    "websocket_accept_key",
    "encode_frame",
    "read_frame",
    "read_frame_sync",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
]

#: Largest request body the daemon accepts (covers big update journals and
#: query batches; anything larger should be split by the client anyway).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Largest single WebSocket frame either side will accept.
MAX_FRAME_BYTES = MAX_BODY_BYTES

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

# WebSocket opcodes (RFC 6455 §5.2) and the handshake GUID (§1.3).
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class WireError(Exception):
    """A malformed HTTP request or WebSocket frame (connection-fatal)."""


@dataclass
class HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        return self.header("connection").lower() != "close"

    @property
    def wants_websocket(self) -> bool:
        return (self.header("upgrade").lower() == "websocket"
                and "upgrade" in self.header("connection").lower())


# ---------------------------------------------------------------------------
# HTTP/1.1
# ---------------------------------------------------------------------------

async def read_http_request(reader, *,
                            max_body: int = MAX_BODY_BYTES
                            ) -> Optional[HttpRequest]:
    """Read one request off an asyncio stream; ``None`` on clean EOF.

    Raises :class:`WireError` on malformed input or an oversized body — the
    caller should answer 400/413 and close, since framing is lost.
    """
    import asyncio

    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between requests (keep-alive close)
        raise WireError("truncated HTTP request head") from None
    except asyncio.LimitOverrunError:
        raise WireError("HTTP request head too large") from None
    request = _parse_head(head)
    length_text = request.header("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise WireError(f"bad Content-Length: {length_text!r}") from None
    if length < 0 or length > max_body:
        raise WireError(f"request body of {length} bytes exceeds the "
                        f"{max_body}-byte limit")
    if "chunked" in request.header("transfer-encoding").lower():
        raise WireError("chunked transfer encoding is not supported")
    if length:
        try:
            request.body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise WireError("truncated HTTP request body") from None
    return request


def _parse_head(head: bytes) -> HttpRequest:
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes anything
        raise WireError("undecodable HTTP request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise WireError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise WireError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    # The query string is dropped: every API argument travels in the body.
    path = target.split("?", 1)[0]
    return HttpRequest(method=method.upper(), path=path, headers=headers)


def response_bytes(status: int, body: bytes, *,
                   content_type: str = "application/json",
                   keep_alive: bool = True,
                   extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    """Serialize one HTTP/1.1 response (always with ``Content-Length``)."""
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


# ---------------------------------------------------------------------------
# WebSocket (RFC 6455)
# ---------------------------------------------------------------------------

def websocket_accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((client_key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(payload: bytes, opcode: int = OP_TEXT, *,
                 mask: bool = False) -> bytes:
    """One single-fragment frame (FIN set); ``mask=True`` for client→server."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = _xor_mask(payload, key)
    return bytes(header) + payload


def _xor_mask(payload: bytes, key: bytes) -> bytes:
    # Stretch the 4-byte key across the payload; int.from_bytes-based XOR is
    # the fastest stdlib-only approach and the payloads are small JSON.
    if not payload:
        return payload
    repeated = (key * (len(payload) // 4 + 1))[:len(payload)]
    value = int.from_bytes(payload, "big") ^ int.from_bytes(repeated, "big")
    return value.to_bytes(len(payload), "big")


def _decode_frame(header: bytes, read_exact: Callable[[int], bytes]
                  ) -> Tuple[int, bytes]:
    """Shared frame-body decoding once the 2-byte header is in hand."""
    first, second = header[0], header[1]
    if not first & 0x80:
        raise WireError("fragmented WebSocket frames are not supported")
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    length = second & 0x7F
    if length == 126:
        length = struct.unpack(">H", read_exact(2))[0]
    elif length == 127:
        length = struct.unpack(">Q", read_exact(8))[0]
    if length > MAX_FRAME_BYTES:
        raise WireError(f"WebSocket frame of {length} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte limit")
    key = read_exact(4) if masked else b""
    payload = read_exact(length) if length else b""
    if masked and payload:
        payload = _xor_mask(payload, key)
    return opcode, payload


async def read_frame(reader) -> Tuple[int, bytes]:
    """Read one frame off an asyncio stream → ``(opcode, payload)``.

    The two-step read (header, then computed remainder) is pre-buffered
    into one blob so the length/mask/payload decoding can be shared with the
    synchronous client path via :func:`_decode_frame`.
    """
    import asyncio

    try:
        header = await reader.readexactly(2)
        extra = 0
        length = header[1] & 0x7F
        if length == 126:
            extra = 2
        elif length == 127:
            extra = 8
        if header[1] & 0x80:
            extra += 4
        blob = await reader.readexactly(extra) if extra else b""
        # Peek the real payload length from the now-complete header blob.
        cursor = 0
        if length == 126:
            length = struct.unpack(">H", blob[:2])[0]
            cursor = 2
        elif length == 127:
            length = struct.unpack(">Q", blob[:8])[0]
            cursor = 8
        if length > MAX_FRAME_BYTES:
            raise WireError(f"WebSocket frame of {length} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise WireError("connection closed mid-frame") from None
    if not header[0] & 0x80:
        raise WireError("fragmented WebSocket frames are not supported")
    opcode = header[0] & 0x0F
    if header[1] & 0x80:
        key = blob[cursor:cursor + 4]
        if payload:
            payload = _xor_mask(payload, key)
    return opcode, payload


def read_frame_sync(sock) -> Tuple[int, bytes]:
    """Blocking twin of :func:`read_frame` over a plain socket."""
    def read_exact(count: int) -> bytes:
        chunks = b""
        while len(chunks) < count:
            chunk = sock.recv(count - len(chunks))
            if not chunk:
                raise WireError("connection closed mid-frame")
            chunks += chunk
        return chunks

    header = read_exact(2)
    return _decode_frame(header, read_exact)
