"""Spanner constructions, fault-check oracles, verification, and blocking sets.

This package is the paper's primary contribution:

* :func:`greedy_spanner` — the classic (non-fault-tolerant) greedy algorithm
  of Althöfer et al., the baseline everything is measured against;
* :func:`ft_greedy_spanner` — **Algorithm 1** of the paper, the VFT/EFT greedy
  algorithm, with pluggable fault-check oracles;
* :mod:`repro.spanners.fault_check` — the oracles answering "is there a fault
  set of size ≤ f that pushes the distance above k·w?";
* :mod:`repro.spanners.verify` — spanner / FT-spanner verification and stretch
  measurement;
* :mod:`repro.spanners.blocking` — blocking sets (Definition 3), the Lemma 3
  extraction, and the Lemma 4 subsampling argument.
"""

from repro.spanners.base import SpannerResult
from repro.spanners.greedy import greedy_spanner
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.fault_check import (
    FaultCheckOracle,
    ExhaustiveOracle,
    BranchAndBoundOracle,
    GreedyPathPackingOracle,
    get_oracle,
)
from repro.spanners.verify import (
    stretch_of,
    is_spanner,
    is_ft_spanner,
    FTVerificationReport,
)
from repro.spanners.blocking import (
    BlockingSet,
    extract_blocking_set,
    is_blocking_set,
    lemma4_subsample,
    Lemma4Result,
)

__all__ = [
    "SpannerResult",
    "greedy_spanner",
    "ft_greedy_spanner",
    "FaultCheckOracle",
    "ExhaustiveOracle",
    "BranchAndBoundOracle",
    "GreedyPathPackingOracle",
    "get_oracle",
    "stretch_of",
    "is_spanner",
    "is_ft_spanner",
    "FTVerificationReport",
    "BlockingSet",
    "extract_blocking_set",
    "is_blocking_set",
    "lemma4_subsample",
    "Lemma4Result",
]
