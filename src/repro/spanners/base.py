"""Common result type shared by all spanner constructions.

Every construction in the library (greedy, FT greedy, and the baselines)
returns a :class:`SpannerResult`, so the experiment harness can treat them
interchangeably: it reads the spanner graph, the construction parameters, the
per-edge witness fault sets (when the construction produces them — the FT
greedy does, and Lemma 3 turns them into a blocking set), and a few counters
describing how much work the construction did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.faults.models import FaultSet
from repro.graph.core import Graph, Node

EdgeKey = Tuple[Node, Node]


@dataclass
class SpannerResult:
    """The output of a spanner construction plus its provenance.

    Attributes
    ----------
    spanner:
        The constructed subgraph ``H``.
    original:
        The input graph ``G`` the construction ran on (kept by reference; it
        is never mutated by the constructions).
    stretch:
        The stretch parameter ``k``.
    max_faults:
        The fault budget ``f`` (0 for non-fault-tolerant constructions).
    fault_model:
        ``"vertex"``, ``"edge"``, or ``"none"``.
    algorithm:
        Human-readable name of the construction ("ft-greedy", "greedy",
        "dk-sampling", ...).
    witness_fault_sets:
        For the FT greedy algorithm: the fault set ``F_e`` that justified
        adding each edge ``e`` (Lemma 3 builds the blocking set from exactly
        these).  Empty for constructions that do not produce witnesses.
    edges_considered / edges_added:
        Work counters of the construction.
    oracle_queries / distance_queries:
        How many fault-check oracle calls and bounded-distance computations
        were made (for the runtime experiment E8).
    construction_seconds:
        Wall-clock construction time.
    parameters:
        Any further algorithm-specific parameters worth reporting.
    """

    spanner: Graph
    original: Graph
    stretch: float
    max_faults: int = 0
    fault_model: str = "none"
    algorithm: str = ""
    witness_fault_sets: Dict[EdgeKey, FaultSet] = field(default_factory=dict)
    edges_considered: int = 0
    edges_added: int = 0
    oracle_queries: int = 0
    distance_queries: int = 0
    construction_seconds: float = 0.0
    parameters: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ stats
    @property
    def size(self) -> int:
        """Number of edges in the spanner."""
        return self.spanner.number_of_edges()

    @property
    def original_size(self) -> int:
        """Number of edges in the input graph."""
        return self.original.number_of_edges()

    @property
    def compression_ratio(self) -> float:
        """``|E(H)| / |E(G)|`` (1.0 when the input graph has no edges)."""
        if self.original_size == 0:
            return 1.0
        return self.size / self.original_size

    @property
    def weight_ratio(self) -> float:
        """Total spanner weight divided by total input weight."""
        total = self.original.total_weight()
        if total == 0:
            return 1.0
        return self.spanner.total_weight() / total

    def summary(self) -> dict:
        """Flat dictionary of the headline numbers (for result tables)."""
        return {
            "algorithm": self.algorithm,
            "fault_model": self.fault_model,
            "n": self.original.number_of_nodes(),
            "m": self.original_size,
            "stretch": self.stretch,
            "f": self.max_faults,
            "spanner_edges": self.size,
            "compression_ratio": self.compression_ratio,
            "weight_ratio": self.weight_ratio,
            "oracle_queries": self.oracle_queries,
            "distance_queries": self.distance_queries,
            "seconds": self.construction_seconds,
        }

    def __repr__(self) -> str:
        return (
            f"<SpannerResult {self.algorithm} k={self.stretch} f={self.max_faults} "
            f"({self.fault_model}) edges={self.size}/{self.original_size}>"
        )
