"""Blocking sets: Definition 3, Lemma 3, and Lemma 4 of the paper.

A ``k``-blocking set of a graph ``G`` is a set ``B ⊆ V × E`` such that every
pair ``(v, e) ∈ B`` has ``v ∉ e`` and every cycle of ``G`` on at most ``k``
edges contains both the vertex and the edge of some pair in ``B``.

* **Lemma 3** — the FT greedy output has a ``(k + 1)``-blocking set of size at
  most ``f · |E(H)|``: for each kept edge ``e`` take its witness fault set
  ``F_e`` and add ``(x, e)`` for every ``x ∈ F_e``.
  :func:`extract_blocking_set` implements exactly this.
* **Lemma 4** — any graph with such a blocking set contains a subgraph on
  ``O(n/f)`` nodes with ``Ω(m/f²)`` edges and girth ``> k + 1``:
  sample ``⌈n/(2f)⌉`` vertices, keep the induced subgraph, and delete every
  edge that appears in a fully-surviving blocking pair.
  :func:`lemma4_subsample` implements the sampling experiment.
* The closing remark of Section 2 defines **edge blocking sets** (pairs of
  edges instead of vertex–edge pairs); :func:`extract_edge_blocking_set` and
  :func:`is_edge_blocking_set` cover those for experiment E10.

Verification uses exhaustive short-cycle enumeration
(:func:`repro.graph.girth.enumerate_short_cycles`) as an independent oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.graph.core import Graph, Node, edge_key
from repro.graph.girth import cycle_edges, enumerate_short_cycles, girth
from repro.spanners.base import SpannerResult
from repro.utils.rng import ensure_rng

EdgeKey = Tuple[Node, Node]
VertexBlockingPair = Tuple[Node, EdgeKey]
EdgeBlockingPair = Tuple[EdgeKey, EdgeKey]


@dataclass(frozen=True)
class BlockingSet:
    """A (vertex or edge) blocking set together with its provenance.

    Attributes
    ----------
    kind:
        ``"vertex"`` for Definition 3 blocking sets (pairs ``(vertex, edge)``)
        or ``"edge"`` for the edge blocking sets of the closing remark (pairs
        ``(edge, edge)``).
    pairs:
        The blocking pairs, canonicalised (edges as ``(min, max)`` keys).
    cycle_bound:
        The ``k`` such that the set is claimed to block all cycles on at most
        ``k`` edges (``k + 1`` when extracted from a ``k``-stretch greedy run).
    source:
        Free-form description of where the set came from.
    """

    kind: str
    pairs: FrozenSet[Tuple[Hashable, EdgeKey]]
    cycle_bound: int
    source: str = ""

    @property
    def size(self) -> int:
        """Number of blocking pairs."""
        return len(self.pairs)

    def blockers_of(self, edge: EdgeKey) -> List[Hashable]:
        """All blockers paired with a given edge."""
        target = edge_key(*edge)
        return [blocker for blocker, e in self.pairs if e == target]

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)


# --------------------------------------------------------------------------
# Lemma 3: extraction from a greedy run
# --------------------------------------------------------------------------

def extract_blocking_set(result: SpannerResult) -> BlockingSet:
    """Build the Lemma 3 blocking set from an FT greedy result.

    For a vertex-fault run this is the ``(k + 1)``-blocking set
    ``B = {(x, e) : e ∈ E(H), x ∈ F_e}`` of size at most ``f · |E(H)|``;
    for an edge-fault run it is the analogous edge blocking set.

    Raises ``ValueError`` if the result carries no witness fault sets (e.g.
    the construction was run with ``record_witnesses=False`` or is not the FT
    greedy algorithm).
    """
    if result.fault_model not in ("vertex", "edge"):
        raise ValueError(
            f"blocking sets are defined for FT greedy runs, not {result.algorithm!r}"
        )
    if result.max_faults > 0 and result.size > 0 and not result.witness_fault_sets:
        raise ValueError("the spanner result carries no witness fault sets")

    pairs: set = set()
    for edge, fault_set in result.witness_fault_sets.items():
        canonical_edge = edge_key(*edge)
        for element in fault_set:
            if result.fault_model == "vertex":
                pairs.add((element, canonical_edge))
            else:
                pairs.add((edge_key(*element), canonical_edge))
    cycle_bound = int(math.floor(result.stretch)) + 1
    return BlockingSet(
        kind=result.fault_model,
        pairs=frozenset(pairs),
        cycle_bound=cycle_bound,
        source=f"lemma3({result.algorithm}, k={result.stretch}, f={result.max_faults})",
    )


# --------------------------------------------------------------------------
# Verification (Definition 3 and the edge analogue)
# --------------------------------------------------------------------------

def is_blocking_set(graph: Graph, blocking_set: "BlockingSet | Iterable[VertexBlockingPair]",
                    cycle_bound: Optional[int] = None) -> bool:
    """Check Definition 3 exhaustively.

    Conditions checked:

    1. every pair ``(v, e)`` has ``v ∉ e`` (and both exist in ``graph``);
    2. every cycle of ``graph`` on at most ``cycle_bound`` edges contains both
       the vertex and the edge of some pair.

    ``cycle_bound`` defaults to the blocking set's own ``cycle_bound``.
    """
    pairs, bound = _normalise(blocking_set, cycle_bound, expected_kind="vertex")
    by_edge: dict[EdgeKey, set] = {}
    for vertex, edge in pairs:
        u, v = edge
        if vertex == u or vertex == v:
            return False
        if not graph.has_edge(u, v) or not graph.has_node(vertex):
            return False
        by_edge.setdefault(edge, set()).add(vertex)

    for cycle in enumerate_short_cycles(graph, bound):
        cycle_nodes = set(cycle)
        edges = cycle_edges(cycle)
        blocked = False
        for edge in edges:
            blockers = by_edge.get(edge)
            if blockers and blockers & cycle_nodes:
                blocked = True
                break
        if not blocked:
            return False
    return True


def unblocked_cycles(graph: Graph, blocking_set: BlockingSet,
                     cycle_bound: Optional[int] = None) -> List[List[Node]]:
    """Return the short cycles *not* blocked (empty iff the set is valid).

    Useful in experiments and tests for reporting counterexamples.
    """
    pairs, bound = _normalise(blocking_set, cycle_bound, expected_kind=blocking_set.kind)
    failures = []
    for cycle in enumerate_short_cycles(graph, bound):
        if not _cycle_blocked(cycle, pairs, blocking_set.kind):
            failures.append(cycle)
    return failures


def is_edge_blocking_set(graph: Graph,
                         blocking_set: "BlockingSet | Iterable[EdgeBlockingPair]",
                         cycle_bound: Optional[int] = None) -> bool:
    """Check the edge-blocking-set property from the closing remark of §2.

    Every cycle on at most ``cycle_bound`` edges must contain *both* edges of
    some pair, and the two edges of every pair must be distinct edges of the
    graph.
    """
    pairs, bound = _normalise(blocking_set, cycle_bound, expected_kind="edge")
    for first, second in pairs:
        if first == second:
            return False
        if not graph.has_edge(*first) or not graph.has_edge(*second):
            return False
    for cycle in enumerate_short_cycles(graph, bound):
        if not _cycle_blocked(cycle, pairs, "edge"):
            return False
    return True


def _cycle_blocked(cycle: List[Node], pairs, kind: str) -> bool:
    cycle_nodes = set(cycle)
    edges = set(cycle_edges(cycle))
    if kind == "vertex":
        return any(edge in edges and vertex in cycle_nodes for vertex, edge in pairs)
    return any(first in edges and second in edges for first, second in pairs)


def _normalise(blocking_set, cycle_bound, expected_kind: str):
    if isinstance(blocking_set, BlockingSet):
        if blocking_set.kind != expected_kind:
            raise ValueError(
                f"expected a {expected_kind} blocking set, got {blocking_set.kind}"
            )
        bound = cycle_bound if cycle_bound is not None else blocking_set.cycle_bound
        raw_pairs = blocking_set.pairs
    else:
        if cycle_bound is None:
            raise ValueError("cycle_bound is required when passing raw pairs")
        bound = cycle_bound
        raw_pairs = blocking_set
    if expected_kind == "vertex":
        pairs = {(vertex, edge_key(*edge)) for vertex, edge in raw_pairs}
    else:
        pairs = {(edge_key(*first), edge_key(*second)) for first, second in raw_pairs}
    return pairs, bound


def extract_edge_blocking_set(result: SpannerResult) -> BlockingSet:
    """Edge-blocking-set analogue of Lemma 3, for EFT greedy runs."""
    if result.fault_model != "edge":
        raise ValueError("edge blocking sets come from edge-fault greedy runs")
    return extract_blocking_set(result)


# --------------------------------------------------------------------------
# Lemma 4: subsampling to a high-girth subgraph
# --------------------------------------------------------------------------

@dataclass
class Lemma4Result:
    """Outcome of one (or the best of several) Lemma 4 subsampling trials.

    Attributes mirror the lemma statement: the pruned subgraph ``H''``, its
    node and edge counts, whether its girth really exceeds ``k + 1``, and the
    quantities the expectation argument predicts (``m / (4 f²) - |B| / (8 f³)``).
    """

    subgraph: Graph
    sampled_nodes: int
    surviving_edges: int
    girth_bound: int
    girth_ok: bool
    expected_edges_lower_bound: float
    trials: int = 1

    @property
    def edges_per_expectation(self) -> float:
        """Measured surviving edges divided by the lemma's expectation bound."""
        if self.expected_edges_lower_bound <= 0:
            return math.inf
        return self.surviving_edges / self.expected_edges_lower_bound


def lemma4_subsample(graph: Graph, blocking_set: BlockingSet, max_faults: int,
                     cycle_bound: Optional[int] = None, *, rng=None,
                     trials: int = 1, sample_size: Optional[int] = None,
                     check_girth: bool = True) -> Lemma4Result:
    """Run the Lemma 4 sampling argument and return the best trial.

    Parameters
    ----------
    graph:
        The graph ``H`` (typically an FT greedy output).
    blocking_set:
        A vertex blocking set of ``graph`` (typically from Lemma 3).
    max_faults:
        The ``f`` in the lemma: the sample has ``⌈n / (2f)⌉`` vertices.
    cycle_bound:
        The ``k + 1`` the pruned subgraph's girth must exceed; defaults to the
        blocking set's bound.
    trials:
        Number of independent samples; the one with the most surviving edges
        is returned ("there exists a setting matching the expectation").
    sample_size:
        Override the number of sampled vertices (used by the E6 ablation of
        the ``1/(2f)`` constant).
    check_girth:
        Girth verification can be skipped when the caller only needs the edge
        counts (it is the expensive part on large samples).
    """
    if blocking_set.kind != "vertex":
        raise ValueError("Lemma 4 subsampling needs a vertex blocking set")
    if max_faults < 1:
        raise ValueError("max_faults must be at least 1 for the sampling argument")
    if trials < 1:
        raise ValueError("trials must be at least 1")
    rng = ensure_rng(rng)
    bound = cycle_bound if cycle_bound is not None else blocking_set.cycle_bound

    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    nodes = list(graph.nodes())
    size = sample_size if sample_size is not None else math.ceil(n / (2 * max_faults))
    size = max(0, min(size, n))

    expected = m / (4.0 * max_faults ** 2) - len(blocking_set) / (8.0 * max_faults ** 3)

    best: Optional[Lemma4Result] = None
    for trial in range(trials):
        sampled = rng.sample(nodes, size) if size > 0 else []
        sampled_set = set(sampled)
        induced = graph.subgraph(sampled)
        # Delete every edge appearing in a fully-surviving blocking pair.
        doomed_edges = {
            edge for vertex, edge in blocking_set.pairs
            if vertex in sampled_set and edge[0] in sampled_set and edge[1] in sampled_set
        }
        pruned = Graph(nodes=induced.nodes(), name=f"{graph.name}-lemma4")
        for u, v, w in induced.edges():
            if edge_key(u, v) not in doomed_edges:
                pruned.add_edge(u, v, w)
        girth_ok = True
        if check_girth:
            girth_ok = girth(pruned, cutoff=bound) > bound
        candidate = Lemma4Result(
            subgraph=pruned,
            sampled_nodes=size,
            surviving_edges=pruned.number_of_edges(),
            girth_bound=bound,
            girth_ok=girth_ok,
            expected_edges_lower_bound=expected,
            trials=trials,
        )
        if best is None or candidate.surviving_edges > best.surviving_edges:
            best = candidate
    assert best is not None
    return best


def theorem1_certificate(result: SpannerResult, *, rng=None,
                         trials: int = 5) -> dict:
    """End-to-end replay of the Theorem 1 proof on a concrete greedy run.

    Extracts the Lemma 3 blocking set, runs the Lemma 4 subsample, and reports
    the quantities the proof chains together (blocking-set size vs.
    ``f · |E(H)|``, surviving edges vs. ``m / f²``, girth of the pruned
    subgraph).  Experiments E5/E6 and the integration tests consume this.
    """
    if result.max_faults < 1:
        raise ValueError("the certificate is only meaningful for f >= 1")
    blocking = extract_blocking_set(result)
    lemma4 = lemma4_subsample(result.spanner, blocking, result.max_faults,
                              rng=rng, trials=trials)
    m = result.size
    f = result.max_faults
    return {
        "spanner_edges": m,
        "blocking_pairs": blocking.size,
        "blocking_bound": f * m,
        "blocking_within_bound": blocking.size <= f * m,
        "sampled_nodes": lemma4.sampled_nodes,
        "surviving_edges": lemma4.surviving_edges,
        "expected_edges_lower_bound": lemma4.expected_edges_lower_bound,
        "girth_bound": lemma4.girth_bound,
        "girth_ok": lemma4.girth_ok,
    }
