"""Fault-check oracles: the inner decision problem of the FT greedy algorithm.

Algorithm 1 adds the edge ``(u, v)`` to ``H`` exactly when

    ∃ F, |F| ≤ f :  dist_{H \\ F}(u, v) > k · w(u, v).

Answering this is the only hard part of the algorithm — the paper notes the
naive implementation is exponential in ``f`` and leaves a faster algorithm as
an open problem.  This module provides four oracles behind one interface:

* :class:`ExhaustiveOracle` — literally tries every fault set of size ≤ f.
  Exponential in ``f`` with a huge base (``n choose f``); only sensible for
  tiny instances, kept as the ground-truth oracle for tests.
* :class:`BranchAndBoundOracle` — exact, and the default.  It branches only on
  the elements of some *short witness path*: if ``dist_{H\\F}(u, v) ≤ k·w``
  then every fault set that works must hit every ``u``–``v`` path of length
  ``≤ k·w``, in particular the shortest one, so it suffices to try faulting
  each of its elements and recurse with budget ``f - 1``.  Still exponential
  in ``f`` (the paper's open problem stands) but the branching factor is the
  hop-length of a short path rather than ``n``.
* :class:`GreedyPathPackingOracle` — polynomial-time heuristic: repeatedly
  fault one element of the current shortest short path, up to ``f`` times.
  One-sided: a returned fault set is always a genuine witness, but a ``None``
  answer may be wrong, so a spanner built with this oracle can be slightly
  sparser than required and is *not guaranteed* to be ``f``-fault tolerant.
  It exists for the runtime experiment (E8) and as the "better and simpler"
  style baseline.
* :class:`TieredOracle` — exact, and the construction-scale fast path: cheap
  *sound* screens (warm-started distance vectors shared across consecutive
  candidates with the same source, disjoint short-path packing, replay of
  the previous witness fault set — the Lemma 3 blocking-set material of
  :mod:`repro.spanners.blocking`) answer most candidates outright, and only
  the undecided margin falls through to the branch-and-bound search.  The
  screens may certify a reject or certify the exact oracle's accept (with
  the identical canonical witness); they never change a decision, so
  spanners and witnesses are byte-identical to :class:`BranchAndBoundOracle`
  (property-tested in ``tests/test_fault_check.py``).

All oracles return either a canonical fault set ``F`` witnessing the distance
blow-up, or ``None`` when no such set exists (or was found, for the
heuristic).

When the queried graph is a plain :class:`~repro.graph.core.Graph` (always
the case inside the greedy driver, where it is the growing spanner ``H``),
every oracle runs on the compiled CSR snapshot with *fault masks*: trying a
candidate fault set is a few byte writes on a mask instead of building an
:class:`ExclusionView`, and the distance query itself runs the array-native
kernels.  Duck-typed graphs (views, test doubles) fall back to the original
view-based implementations, which the mask path mirrors decision-for-decision.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.faults.enumeration import enumerate_fault_sets
from repro.faults.models import FaultModel, FaultSet, get_fault_model
from repro.graph.core import Graph, Node, edge_key
from repro.graph.csr import CSRGraph, csr_snapshot
from repro.graph.views import ExclusionView
from repro.obs.metrics import MetricsRegistry, component_registry, get_registry
from repro.paths.dijkstra import bounded_distance, bounded_path
from repro.paths.registry import KernelLike, get_kernels

#: Screen outcomes that resolved the query without the exact search.
SCREEN_RESOLVED_OUTCOMES = ("accept", "reject")

#: Buckets for the per-build screen hit-rate histogram (a fraction in [0, 1]).
RATE_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


class OracleStats:
    """Oracle work counters shared between an oracle and the greedy driver.

    The counters live on a per-oracle metrics registry (``oracle.*`` family,
    attached to the process default — see :mod:`repro.obs`), so oracle work
    shows up in ``repro-spanner stats`` and span traces.  Reads keep the
    historical attribute names (``queries``, ``distance_queries``,
    ``nodes_expanded``); writes go through the ``count_*`` methods.
    ``reset()`` zeroes this oracle's counters only — the greedy driver calls
    it at build start so finished builds report per-build work.
    """

    __slots__ = ("metrics", "_queries", "_distance_queries", "_nodes_expanded",
                 "_screen", "_screen_children", "_exact", "_screen_hit_rate")

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = (metrics if metrics is not None
                        else component_registry("oracle"))
        self._queries = self.metrics.counter(
            "oracle.queries", "fault-check oracle calls")
        self._distance_queries = self.metrics.counter(
            "oracle.distance_queries",
            "bounded distance queries issued by oracles")
        self._nodes_expanded = self.metrics.counter(
            "oracle.nodes_expanded", "branch-and-bound search tree nodes")
        # Tiered-oracle observability: every tiered query lands exactly one
        # screen outcome ("accept" / "reject" resolved by the screen,
        # "fallthrough" handed to the exact search) and fallthroughs also
        # count one exact check, so accept+reject+fallthrough == queries and
        # exact == fallthrough reconcile per build — including parallel
        # builds, where the workers ship these as flat labeled counters.
        self._screen = self.metrics.counter(
            "oracle.screen", "tiered-oracle screen decisions, by outcome")
        self._screen_children: Dict[str, object] = {}
        self._exact = self.metrics.counter(
            "oracle.exact", "fault checks answered by the exact search")
        # The hit-rate histogram lives on the *process* registry: per-build
        # observations are process history, and the per-oracle component
        # registry (weakly attached) dies with the oracle — usually before
        # a ``--metrics-json`` snapshot is written.
        self._screen_hit_rate = get_registry().histogram(
            "oracle.screen_hit_rate",
            "fraction of fault checks the screen resolved, per build",
            buckets=RATE_BUCKETS)

    @property
    def queries(self) -> int:
        return self._queries.value

    @property
    def distance_queries(self) -> int:
        return self._distance_queries.value

    @property
    def nodes_expanded(self) -> int:
        return self._nodes_expanded.value

    @property
    def screen_outcomes(self) -> Dict[str, int]:
        """Screen outcome → count (empty unless a tiered oracle ran)."""
        return {outcome: child.value
                for outcome, child in self._screen_children.items()
                if child.value}

    @property
    def screen_checks(self) -> int:
        """Total screen decisions (every tiered query makes exactly one)."""
        return sum(child.value for child in self._screen_children.values())

    @property
    def screen_resolved(self) -> int:
        """Queries the screen answered without running the exact search."""
        return sum(child.value
                   for outcome, child in self._screen_children.items()
                   if outcome in SCREEN_RESOLVED_OUTCOMES)

    @property
    def exact_checks(self) -> int:
        return self._exact.value

    def count_query(self) -> None:
        self._queries.inc()

    def count_distance_query(self) -> None:
        self._distance_queries.inc()

    def count_nodes_expanded(self) -> None:
        self._nodes_expanded.inc()

    def count_screen(self, outcome: str) -> None:
        child = self._screen_children.get(outcome)
        if child is None:
            child = self._screen_children[outcome] = self._screen.labels(
                outcome=outcome)
        child.inc()

    def count_exact(self) -> None:
        self._exact.inc()

    def observe_screen_hit_rate(
            self, extra: Optional[Mapping[str, float]] = None) -> Optional[float]:
        """Record this build's screen hit rate; returns the rate (or ``None``).

        ``extra`` optionally folds in screen counts a parallel driver
        collected from its workers (the flat ``oracle.screen{outcome="..."}``
        keys shipped by :func:`repro.spanners.ft_greedy._ft_check_chunk`).
        """
        outcomes = {outcome: child.value
                    for outcome, child in self._screen_children.items()}
        if extra:
            for flat, amount in extra.items():
                if flat.startswith('oracle.screen{outcome="') and flat.endswith('"}'):
                    outcome = flat[len('oracle.screen{outcome="'):-2]
                    outcomes[outcome] = outcomes.get(outcome, 0) + amount
        total = sum(outcomes.values())
        if not total:
            return None
        rate = sum(count for outcome, count in outcomes.items()
                   if outcome in SCREEN_RESOLVED_OUTCOMES) / total
        self._screen_hit_rate.observe(rate)
        return rate

    def reset(self) -> None:
        self.metrics.reset()

    def publish(self) -> None:
        """Fold this oracle's counters into the process registry, then zero.

        Build drivers call this once per finished build (after reading the
        per-build numbers into the result): the per-oracle component
        registry is only weakly attached and dies with the oracle, so a
        ``--metrics-json`` snapshot written after the build would otherwise
        miss the ``oracle.*`` family entirely.  Zeroing after the fold
        keeps a long-lived oracle instance from double-counting in
        ``include_sources`` views.
        """
        counters = self.metrics.counters()
        if counters:
            get_registry().merge_counters(counters)
            self.metrics.reset()


def candidate_elements_csr(model: FaultModel, csr: CSRGraph, source: Node,
                           target: Node) -> List:
    """Faultable elements derived from a CSR snapshot (no ``Graph`` needed).

    Vertex candidates come back in ``csr.node_of`` order, which equals the
    source graph's node-insertion order; edge candidates come back in
    undirected-edge-id order (the compile/append order of the snapshot).
    Callers that need the exact :meth:`Graph.edges` iteration order — it can
    differ from id order after incremental appends — should pass an explicit
    ``candidates`` list to :meth:`FaultCheckOracle.find_breaking_fault_set_csr`
    instead; enumeration order decides which witness a tie returns.
    """
    if model.uses_vertex_mask:
        return [node for node in csr.node_of
                if node != source and node != target]
    node_of = csr.node_of
    return [edge_key(node_of[a], node_of[b]) for a, b in csr.edge_index]


class FaultCheckOracle(ABC):
    """Interface for the "find a breaking fault set" decision/search problem."""

    #: Short name used in experiment tables.
    name: str = "abstract"

    #: Whether a ``None`` answer is guaranteed to mean "no fault set exists".
    exact: bool = True

    def __init__(self, kernel: KernelLike = None) -> None:
        self.stats = OracleStats()
        #: Kernel backend answering the CSR distance queries (auto if None).
        self.kernels = get_kernels(kernel)

    @abstractmethod
    def find_breaking_fault_set(self, graph, source: Node, target: Node,
                                budget: float, max_faults: int,
                                fault_model: "str | FaultModel") -> Optional[FaultSet]:
        """Return ``F`` with ``|F| ≤ max_faults`` and ``dist_{graph\\F}(source, target) > budget``.

        Returns ``None`` if no such set exists (exact oracles) or none was
        found (heuristic oracles).  The distance comparison treats
        unreachability as ``inf > budget``.
        """

    def find_breaking_fault_set_csr(self, csr: CSRGraph, source: Node,
                                    target: Node, budget: float,
                                    max_faults: int,
                                    fault_model: "str | FaultModel",
                                    candidates: Optional[List] = None) -> Optional[FaultSet]:
        """CSR-native twin of :meth:`find_breaking_fault_set`.

        Operates directly on a compiled snapshot, so the check can run in a
        worker process that only received the (picklable) CSR — this is what
        the parallel FT-greedy build ships through :mod:`repro.runtime`.
        ``candidates`` optionally pins the enumeration order of the faultable
        elements (only the exhaustive oracle consults it); oracles without a
        CSR implementation raise ``NotImplementedError`` so the parallel
        driver can refuse them up front.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no CSR fault-check implementation")

    # ------------------------------------------------------------------ utils
    def _distance_exceeds(self, graph, source: Node, target: Node,
                          budget: float) -> bool:
        """Whether the (possibly faulted view) distance already exceeds the budget."""
        self.stats.count_distance_query()
        return bounded_distance(graph, source, target, budget) > budget

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ExhaustiveOracle(FaultCheckOracle):
    """Ground-truth oracle: enumerate every fault set of size at most ``f``.

    The paper's "naive implementation"; complexity ``O(n^f)`` distance
    queries per edge.  Use only on very small instances.
    """

    name = "exhaustive"
    exact = True

    def find_breaking_fault_set(self, graph, source: Node, target: Node,
                                budget: float, max_faults: int,
                                fault_model: "str | FaultModel") -> Optional[FaultSet]:
        model = get_fault_model(fault_model)
        elements = model.candidate_elements(graph, source, target)
        if isinstance(graph, Graph):
            # Candidates come from the *graph* so the enumeration order (and
            # hence which witness a tie returns) is identical to the
            # pre-kernel implementation.
            return self.find_breaking_fault_set_csr(
                csr_snapshot(graph), source, target, budget, max_faults,
                model, candidates=elements)
        self.stats.count_query()
        for faults in enumerate_fault_sets(elements, max_faults):
            view = model.apply(graph, faults)
            if self._distance_exceeds(view, source, target, budget):
                return model.canonical(faults)
        return None

    def find_breaking_fault_set_csr(self, csr: CSRGraph, source: Node,
                                    target: Node, budget: float,
                                    max_faults: int,
                                    fault_model: "str | FaultModel",
                                    candidates: Optional[List] = None) -> Optional[FaultSet]:
        model = get_fault_model(fault_model)
        self.stats.count_query()
        elements = (candidates if candidates is not None
                    else candidate_elements_csr(model, csr, source, target))
        s = csr.index_of.get(source)
        t = csr.index_of.get(target)
        mask = model.new_mask(csr)
        vertex_mask, edge_mask = model.kernel_masks(mask)
        bounded_query = self.kernels.resolve(csr).bounded_dijkstra_csr
        for faults in enumerate_fault_sets(elements, max_faults):
            indices = model.mask_indices(csr, faults)
            for index in indices:
                mask[index] = 1
            self.stats.count_distance_query()
            if s is None or t is None:
                exceeded = True
            else:
                exceeded = bounded_query(
                    csr, s, t, budget, vertex_mask, edge_mask) > budget
            for index in indices:
                mask[index] = 0
            if exceeded:
                return model.canonical(faults)
        return None


class BranchAndBoundOracle(FaultCheckOracle):
    """Exact oracle that branches only on elements of short witness paths.

    Correctness: suppose some fault set ``F*`` of size ``≤ f`` works.  Consider
    the shortest ``source``–``target`` path ``P`` in the current (partially
    faulted) graph with length ``≤ budget``; since removing ``F*`` pushes the
    distance above the budget, ``F*`` must contain at least one element of
    ``P`` (an internal vertex for vertex faults, an edge for edge faults).
    Hence trying every element of ``P`` as "the next fault" and recursing with
    budget ``f - 1`` explores a superset of some ordering of ``F*``.

    The worst-case complexity is ``O(L^f)`` distance queries per edge, where
    ``L`` is the hop-length of short paths — exponential in ``f`` as the paper
    says, but with a far smaller base than :class:`ExhaustiveOracle`.
    """

    name = "branch-and-bound"
    exact = True

    def find_breaking_fault_set(self, graph, source: Node, target: Node,
                                budget: float, max_faults: int,
                                fault_model: "str | FaultModel") -> Optional[FaultSet]:
        model = get_fault_model(fault_model)
        if isinstance(graph, Graph):
            return self.find_breaking_fault_set_csr(
                csr_snapshot(graph), source, target, budget, max_faults, model)
        self.stats.count_query()
        found = self._search(graph, source, target, budget, max_faults, model, [])
        return model.canonical(found) if found is not None else None

    def find_breaking_fault_set_csr(self, csr: CSRGraph, source: Node,
                                    target: Node, budget: float,
                                    max_faults: int,
                                    fault_model: "str | FaultModel",
                                    candidates: Optional[List] = None) -> Optional[FaultSet]:
        # ``candidates`` is ignored: the branching elements come from the
        # witness paths themselves, never from a global enumeration.
        model = get_fault_model(fault_model)
        self.stats.count_query()
        mask = model.new_mask(csr)
        found = self._search_csr(
            csr, source, target,
            csr.index_of.get(source), csr.index_of.get(target),
            budget, max_faults, model, [], mask,
        )
        return model.canonical(found) if found is not None else None

    def _search_csr(self, csr: CSRGraph, source: Node, target: Node,
                    s: Optional[int], t: Optional[int], budget: float,
                    remaining: int, model: FaultModel,
                    current: List, mask: bytearray) -> Optional[List]:
        """Mask-based twin of :meth:`_search`: branch = one byte write."""
        self.stats.count_nodes_expanded()
        self.stats.count_distance_query()
        if s is None or t is None:
            return list(current)
        backend = self.kernels.resolve(csr)
        vertex_mask, edge_mask = model.kernel_masks(mask)
        distance, index_path = backend.bounded_dijkstra_path_csr(
            csr, s, t, budget, vertex_mask, edge_mask)
        if distance > budget:
            return list(current)
        if remaining == 0:
            return None
        node_of = csr.node_of
        path = [node_of[index] for index in index_path]
        elements = self._path_elements(path, source, target, model)
        if (remaining == 1 and len(elements) > 1
                and backend.multi_source_multi_target is not None):
            # Every child of this node is a leaf (remaining == 0): its whole
            # decision is one bounded distance comparison, so the sibling
            # queries batch into a single fused sweep instead of one bounded
            # Dijkstra per branch.  The leaves are the bulk of the O(L^f)
            # tree, which is where the per-branch query cost lived.
            return self._fused_leaf_search(csr, s, t, budget, model, elements,
                                           current, mask, backend)
        for element in elements:
            index = model.mask_indices(csr, (element,))[0]
            current.append(element)
            mask[index] = 1
            result = self._search_csr(csr, source, target, s, t, budget,
                                      remaining - 1, model, current, mask)
            mask[index] = 0
            current.pop()
            if result is not None:
                return result
        return None

    def _fused_leaf_search(self, csr: CSRGraph, s: int, t: int, budget: float,
                           model: FaultModel, elements: List, current: List,
                           mask: bytearray, backend) -> Optional[List]:
        """All ``remaining == 0`` children of one node, in one fused sweep.

        Scanning the answers in branch order and stopping at the first
        distance beyond the budget reproduces the serial child loop's
        first-hit semantics exactly, so the returned fault list (and the
        ``None`` miss) is byte-identical to the per-branch recursion.
        """
        import numpy as np

        rows = np.tile(np.frombuffer(bytes(mask), dtype=np.uint8),
                       (len(elements), 1))
        for row, element in enumerate(elements):
            rows[row, model.mask_indices(csr, (element,))[0]] = 1
        if model.uses_vertex_mask:
            vertex_masks, edge_masks = rows, None
        else:
            vertex_masks, edge_masks = None, rows
        answers = backend.multi_source_multi_target(
            csr, [s] * len(elements), [[t]] * len(elements),
            vertex_masks, edge_masks)
        for row, element in enumerate(elements):
            # Count exactly what the serial loop would have: one expansion
            # and one distance query per child actually visited.
            self.stats.count_nodes_expanded()
            self.stats.count_distance_query()
            if answers[row][0] > budget:
                return current + [element]
        return None

    def _search(self, graph, source: Node, target: Node, budget: float,
                remaining: int, model: FaultModel,
                current: List) -> Optional[List]:
        self.stats.count_nodes_expanded()
        view = model.apply(graph, current) if current else graph
        self.stats.count_distance_query()
        distance, path = bounded_path(view, source, target, budget)
        if distance > budget:
            return list(current)
        if remaining == 0:
            return None
        for element in self._path_elements(path, source, target, model):
            current.append(element)
            result = self._search(graph, source, target, budget,
                                  remaining - 1, model, current)
            current.pop()
            if result is not None:
                return result
        return None

    @staticmethod
    def _path_elements(path: List[Node], source: Node, target: Node,
                       model: FaultModel) -> List:
        """Faultable elements of a witness path for the given model."""
        if model.name == "vertex":
            return [node for node in path if node != source and node != target]
        return [edge_key(path[i], path[i + 1]) for i in range(len(path) - 1)]


class TieredOracle(BranchAndBoundOracle):
    """Exact oracle with certified screens in front of the branch-and-bound search.

    Every query runs a pipeline of cheap *sound* screens; only the undecided
    margin pays for the exact search.  Each screen carries its own
    correctness certificate, so the decision — and, for accepts, the
    canonical witness — is byte-identical to :class:`BranchAndBoundOracle`:

    1. **Isolated endpoints** — an endpoint that is missing from the
       snapshot, or present with no incident arcs, has no ``u``–``v`` path
       at all: the exact search's root query would read ``inf`` and return
       ``model.canonical([])``, so the screen certifies that accept from
       the degree alone, with no sweep.
    2. **Warm-started distance vectors** — the unfaulted distance
       ``dist_H(u, v)`` is read from a full SSSP vector cached across
       consecutive candidates sharing a source (the sorted-edges order the
       greedy driver feeds makes those runs common; the cache key includes
       the snapshot's edge count, so growing ``H`` invalidates it).  If
       ``dist_H(u, v) > budget`` the exact search's very first bounded query
       would exceed the budget and return ``model.canonical([])`` — the
       screen returns that same empty canonical witness.  If
       ``dist_H(u, v) ≤ budget`` and ``f = 0``, the exact search would
       reject; the screen rejects.
    3. **Witness replay** (the Lemma 3 blocking-set material of
       :mod:`repro.spanners.blocking`) — the previous accept's witness fault
       set is retried with ``|F|`` byte writes and one bounded query.  If it
       still pushes the distance beyond the budget, a breaking fault set
       *exists*, so path packing cannot possibly certify a reject: the
       query goes straight to the exact search (which alone produces the
       canonical witness).
    4. **Disjoint short-path packing** — greedily pack element-disjoint
       ``u``–``v`` paths of length ``≤ budget``: each found path has its
       faultable elements masked before the next query.  ``f + 1`` such
       paths (or any one path with no faultable element) certify that every
       fault set of size ``≤ f`` leaves some short path intact, i.e. the
       exact search must answer ``None``.  Costs at most ``f + 1`` bounded
       queries, against the exact search's ``O(L^f)``.

    Outcomes land on the ``oracle.screen{outcome=}`` counter ("accept",
    "reject", "fallthrough"); fallthroughs also count ``oracle.exact``, and
    the per-build hit rate feeds the ``oracle.screen_hit_rate`` histogram.
    """

    name = "tiered"
    exact = True

    def __init__(self, kernel: KernelLike = None) -> None:
        super().__init__(kernel)
        # Warm SSSP cache: (id(csr), num_edges, source index) -> distances.
        # One entry suffices — the greedy driver's candidate stream visits
        # sources in runs, and any accepted edge invalidates via num_edges.
        self._sssp_key: Optional[Tuple] = None
        self._sssp_dist: Optional[List[float]] = None
        self._previous_key: Optional[Tuple] = None
        #: Most recent non-empty exact witness, replayed by screen 2.
        self._recent_witness: Optional[List] = None
        # Reusable packing/replay mask (MaskBuffer discipline: writes are
        # tracked and cleared, so masking costs O(elements), not O(n)).
        self._scratch: Optional[bytearray] = None

    def find_breaking_fault_set(self, graph, source: Node, target: Node,
                                budget: float, max_faults: int,
                                fault_model: "str | FaultModel") -> Optional[FaultSet]:
        model = get_fault_model(fault_model)
        if isinstance(graph, Graph):
            return self.find_breaking_fault_set_csr(
                csr_snapshot(graph), source, target, budget, max_faults, model)
        # Duck-typed graphs have no snapshot to screen against; hand the
        # whole query to the view-based exact search.
        self.stats.count_query()
        self.stats.count_screen("fallthrough")
        self.stats.count_exact()
        found = self._search(graph, source, target, budget, max_faults, model, [])
        return model.canonical(found) if found is not None else None

    def find_breaking_fault_set_csr(self, csr: CSRGraph, source: Node,
                                    target: Node, budget: float,
                                    max_faults: int,
                                    fault_model: "str | FaultModel",
                                    candidates: Optional[List] = None) -> Optional[FaultSet]:
        # ``candidates`` is ignored, exactly as in the branch-and-bound
        # search the undecided margin falls through to.
        model = get_fault_model(fault_model)
        self.stats.count_query()
        s = csr.index_of.get(source)
        t = csr.index_of.get(target)
        if s is None or t is None:
            # The exact search returns the empty canonical set outright for
            # endpoints unknown to the snapshot.
            self.stats.count_screen("accept")
            return model.canonical([])
        if not csr.degree(s) or not csr.degree(t):
            # An isolated endpoint has no u–v path at all: the exact
            # search's root query would read dist = inf > budget and accept
            # with the empty canonical witness.  Certifying that accept from
            # the degree alone skips the sweep *and* — on graphs where most
            # candidates attach a new leaf node, the dominant shape at
            # datacenter scale — lets the snapshot's overflow arcs pile up
            # across a whole run of such accepts instead of forcing one
            # compaction per accepted edge.
            self.stats.count_screen("accept")
            return model.canonical([])
        # One root query feeds every tier: the warm-cache read (free on a
        # hit), the accept/f=0 screens, the packing screen's first path,
        # and the exact search's root — the fallthrough never re-queries.
        distance, root_path = self._root_query(csr, s, t, budget)
        if distance > budget:
            # Certified accept: the exact search's unfaulted root query sees
            # this same distance and returns the empty canonical witness.
            self.stats.count_screen("accept")
            return model.canonical([])
        if max_faults == 0:
            # Root distance within budget with no fault budget left: the
            # exact search answers None from its root.
            self.stats.count_screen("reject")
            return None
        straight_to_exact = self._witness_replays(
            csr, source, target, s, t, budget, max_faults, model)
        if not straight_to_exact and self._packs_disjoint_paths(
                csr, source, target, s, t, budget, max_faults, model,
                root_path):
            # f+1 element-disjoint short paths (or one unfaultable path):
            # every fault set of size <= f leaves a short path intact, so
            # the exact search must reject.
            self.stats.count_screen("reject")
            return None
        self.stats.count_screen("fallthrough")
        self.stats.count_exact()
        found = self._exact_from_root(csr, source, target, s, t, budget,
                                      max_faults, model, root_path)
        if found:
            self._recent_witness = list(found)
        return model.canonical(found) if found is not None else None

    # ------------------------------------------------------------- screens
    def _root_query(self, csr: CSRGraph, s: int, t: int,
                    budget: float) -> Tuple[float, Optional[List[Node]]]:
        """Unfaulted ``(dist_H(u, v), short path or None)``, warm-started.

        Consecutive candidates sharing a source are common (``sorted_edges``
        tie-breaks cluster them within weight classes): the second same-source
        query against an unchanged snapshot computes one *full* SSSP vector
        and every later one reads ``dist[t]`` for free.  The vector must be
        cutoff-free — a budget-bounded vector would read ``inf`` for
        reachable nodes past the cutoff and wrongly certify accepts for later
        candidates with larger budgets.  Any accepted edge invalidates the
        cache through the ``num_edges`` component of the key.  Vector reads
        return no path; callers that need one (packing, the exact search)
        issue their own path query.
        """
        key = (id(csr), csr.num_edges, s)
        if self._sssp_key == key and self._sssp_dist is not None:
            return self._sssp_dist[t], None
        backend = self.kernels.resolve(csr)
        if self._previous_key == key:
            self.stats.count_distance_query()
            dist, _ = backend.sssp_dijkstra_csr(csr, s, None, None, None)
            self._sssp_key = key
            self._sssp_dist = dist
            return dist[t], None
        self._previous_key = key
        self.stats.count_distance_query()
        distance, index_path = backend.bounded_dijkstra_path_csr(
            csr, s, t, budget, None, None)
        node_of = csr.node_of
        return distance, [node_of[index] for index in index_path]

    def _exact_from_root(self, csr: CSRGraph, source: Node, target: Node,
                         s: int, t: int, budget: float, max_faults: int,
                         model: FaultModel,
                         root_path: Optional[List[Node]]) -> Optional[List]:
        """The exact branch-and-bound search, root query already answered.

        Replays :meth:`BranchAndBoundOracle._search_csr`'s root node without
        re-issuing its (deterministic, already screened ``<= budget``)
        unfaulted query — the caller holds the distance and, unless it came
        from the warm cache, the path.  Children recurse through the
        inherited ``_search_csr`` unchanged, so the found fault set is
        byte-identical to the plain exact oracle's.
        """
        mask = model.new_mask(csr)
        if root_path is None:
            # The root distance came from the cached SSSP vector (no path);
            # this is the one fallthrough shape that pays the root twice.
            return self._search_csr(csr, source, target, s, t, budget,
                                    max_faults, model, [], mask)
        self.stats.count_nodes_expanded()
        backend = self.kernels.resolve(csr)
        elements = self._path_elements(root_path, source, target, model)
        if (max_faults == 1 and len(elements) > 1
                and backend.multi_source_multi_target is not None):
            return self._fused_leaf_search(csr, s, t, budget, model, elements,
                                           [], mask, backend)
        current: List = []
        for element in elements:
            index = model.mask_indices(csr, (element,))[0]
            current.append(element)
            mask[index] = 1
            result = self._search_csr(csr, source, target, s, t, budget,
                                      max_faults - 1, model, current, mask)
            mask[index] = 0
            current.pop()
            if result is not None:
                return result
        return None

    def _scratch_mask(self, csr: CSRGraph, model: FaultModel) -> bytearray:
        width = csr.num_nodes if model.uses_vertex_mask else csr.num_edges
        if self._scratch is None or len(self._scratch) != width:
            self._scratch = model.new_mask(csr)
        return self._scratch

    def _witness_replays(self, csr: CSRGraph, source: Node, target: Node,
                         s: int, t: int, budget: float, max_faults: int,
                         model: FaultModel) -> bool:
        """Whether the previous witness fault set breaks this pair too.

        ``True`` certifies that *some* breaking fault set of size
        ``≤ max_faults`` exists, so the packing screen is skipped and the
        exact search (the only producer of canonical witnesses) runs
        directly.  ``False`` is always safe — it only means "screen on".
        """
        witness = self._recent_witness
        if witness is None or len(witness) > max_faults:
            return False
        if model.uses_vertex_mask and (source in witness or target in witness):
            # A fault set for this pair may not contain its own endpoints.
            return False
        mask = self._scratch_mask(csr, model)
        indices = model.mask_indices(csr, witness)
        if len(indices) != len(witness):
            # Elements unknown to this snapshot were dropped (possible under
            # dynamic deletions); the smaller set is still a valid
            # certificate, but skip the stale witness entirely.
            for index in indices:
                mask[index] = 0
            return False
        for index in indices:
            mask[index] = 1
        vertex_mask, edge_mask = model.kernel_masks(mask)
        self.stats.count_distance_query()
        exceeded = self.kernels.resolve(csr).bounded_dijkstra_csr(
            csr, s, t, budget, vertex_mask, edge_mask) > budget
        for index in indices:
            mask[index] = 0
        return exceeded

    def _packs_disjoint_paths(self, csr: CSRGraph, source: Node, target: Node,
                              s: int, t: int, budget: float, max_faults: int,
                              model: FaultModel,
                              root_path: Optional[List[Node]] = None) -> bool:
        """Certify a reject by packing ``max_faults + 1`` disjoint short paths.

        Greedy packing, not max-flow: a ``True`` answer is a sound
        certificate (some short path survives every fault set of size
        ``≤ max_faults``), a ``False`` answer only sends the query on to the
        exact search.  ``root_path``, when the caller holds one, serves as
        the first packed path for free (the mask starts empty, so the first
        packing query would reproduce exactly the unfaulted root query).
        """
        backend = self.kernels.resolve(csr)
        mask = self._scratch_mask(csr, model)
        vertex_mask, edge_mask = model.kernel_masks(mask)
        node_of = csr.node_of
        set_indices: List[int] = []
        path = root_path
        try:
            for packed in range(max_faults + 1):
                if path is None:
                    self.stats.count_distance_query()
                    distance, index_path = backend.bounded_dijkstra_path_csr(
                        csr, s, t, budget, vertex_mask, edge_mask)
                    if distance > budget:
                        return False
                    path = [node_of[index] for index in index_path]
                elements = self._path_elements(path, source, target, model)
                if not elements:
                    # A short path with nothing to fault survives every
                    # fault set outright.
                    return True
                if packed < max_faults:
                    indices = model.mask_indices(csr, elements)
                    for index in indices:
                        mask[index] = 1
                    set_indices.extend(indices)
                path = None
            return True
        finally:
            for index in set_indices:
                mask[index] = 0


class GreedyPathPackingOracle(FaultCheckOracle):
    """Polynomial heuristic: greedily hit the current shortest short path.

    Repeats at most ``f`` times: find the shortest ``source``–``target`` path
    of length ``≤ budget`` in the currently-faulted graph; fault its most
    central element (the middle internal vertex / middle edge).  If after at
    most ``f`` rounds the distance exceeds the budget, the accumulated fault
    set is returned (and is a genuine witness).  Otherwise ``None`` is
    returned, which may be a false negative.

    Spanners built with this oracle are therefore *heuristic* FT spanners:
    still valid k-spanners in the fault-free sense, but possibly missing edges
    needed for full fault tolerance.  Experiment E8 quantifies the
    speed/quality trade-off against the exact oracles.
    """

    name = "greedy-path-packing"
    exact = False

    def find_breaking_fault_set(self, graph, source: Node, target: Node,
                                budget: float, max_faults: int,
                                fault_model: "str | FaultModel") -> Optional[FaultSet]:
        model = get_fault_model(fault_model)
        if isinstance(graph, Graph):
            return self.find_breaking_fault_set_csr(
                csr_snapshot(graph), source, target, budget, max_faults, model)
        self.stats.count_query()
        chosen: List = []
        for _ in range(max_faults + 1):
            view = model.apply(graph, chosen) if chosen else graph
            self.stats.count_distance_query()
            distance, path = bounded_path(view, source, target, budget)
            if distance > budget:
                return model.canonical(chosen)
            if len(chosen) >= max_faults:
                return None
            elements = BranchAndBoundOracle._path_elements(path, source, target, model)
            if not elements:
                # The short path has no faultable element (e.g. a direct edge
                # under vertex faults): no fault set can break this pair.
                return None
            chosen.append(elements[len(elements) // 2])
        return None

    def find_breaking_fault_set_csr(self, csr: CSRGraph, source: Node,
                                    target: Node, budget: float,
                                    max_faults: int,
                                    fault_model: "str | FaultModel",
                                    candidates: Optional[List] = None) -> Optional[FaultSet]:
        """Mask-based twin of the view loop above (``candidates`` ignored)."""
        model = get_fault_model(fault_model)
        self.stats.count_query()
        s = csr.index_of.get(source)
        t = csr.index_of.get(target)
        mask = model.new_mask(csr)
        vertex_mask, edge_mask = model.kernel_masks(mask)
        node_of = csr.node_of
        chosen: List = []
        for _ in range(max_faults + 1):
            self.stats.count_distance_query()
            if s is None or t is None:
                return model.canonical(chosen)
            distance, index_path = self.kernels.resolve(csr).bounded_dijkstra_path_csr(
                csr, s, t, budget, vertex_mask, edge_mask)
            if distance > budget:
                return model.canonical(chosen)
            if len(chosen) >= max_faults:
                return None
            path = [node_of[index] for index in index_path]
            elements = BranchAndBoundOracle._path_elements(path, source, target, model)
            if not elements:
                return None
            element = elements[len(elements) // 2]
            chosen.append(element)
            mask[model.mask_indices(csr, (element,))[0]] = 1
        return None


_ORACLES = {
    "exhaustive": ExhaustiveOracle,
    "branch-and-bound": BranchAndBoundOracle,
    "bnb": BranchAndBoundOracle,
    "exact": BranchAndBoundOracle,
    "greedy-path-packing": GreedyPathPackingOracle,
    "heuristic": GreedyPathPackingOracle,
    "tiered": TieredOracle,
}


def available_oracles() -> List[str]:
    """Sorted names (including aliases) accepted by :func:`get_oracle`."""
    return sorted(_ORACLES)


def oracle_name(name: "str | FaultCheckOracle | None") -> str:
    """Resolve a name, alias, or instance to its canonical oracle name."""
    if name is None:
        return BranchAndBoundOracle.name
    if isinstance(name, FaultCheckOracle):
        return name.name
    if isinstance(name, str) and name.lower() in _ORACLES:
        return _ORACLES[name.lower()].name
    raise ValueError(
        f"unknown oracle {name!r}; available: {available_oracles()}")


def describe_oracles() -> List[dict]:
    """One row per canonical oracle: name, exactness, and accepted aliases."""
    rows = []
    for cls in sorted({cls for cls in _ORACLES.values()},
                      key=lambda cls: cls.name):
        aliases = sorted(alias for alias, target in _ORACLES.items()
                         if target is cls and alias != cls.name)
        rows.append({"name": cls.name, "exact": cls.exact, "aliases": aliases})
    return rows


def get_oracle(name: "str | FaultCheckOracle | None",
               kernel: KernelLike = None) -> FaultCheckOracle:
    """Resolve an oracle by name; ``None`` gives the default exact oracle.

    Already-constructed oracle instances pass through unchanged (``kernel``
    is ignored for them).  For names, ``kernel`` picks the kernel backend
    the oracle's CSR distance queries run on.
    """
    if name is None:
        return BranchAndBoundOracle(kernel)
    if isinstance(name, FaultCheckOracle):
        return name
    if isinstance(name, str) and name.lower() in _ORACLES:
        return _ORACLES[name.lower()](kernel)
    raise ValueError(
        f"unknown oracle {name!r}; available: {available_oracles()}")
