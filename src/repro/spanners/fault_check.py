"""Fault-check oracles: the inner decision problem of the FT greedy algorithm.

Algorithm 1 adds the edge ``(u, v)`` to ``H`` exactly when

    ∃ F, |F| ≤ f :  dist_{H \\ F}(u, v) > k · w(u, v).

Answering this is the only hard part of the algorithm — the paper notes the
naive implementation is exponential in ``f`` and leaves a faster algorithm as
an open problem.  This module provides three oracles behind one interface:

* :class:`ExhaustiveOracle` — literally tries every fault set of size ≤ f.
  Exponential in ``f`` with a huge base (``n choose f``); only sensible for
  tiny instances, kept as the ground-truth oracle for tests.
* :class:`BranchAndBoundOracle` — exact, and the default.  It branches only on
  the elements of some *short witness path*: if ``dist_{H\\F}(u, v) ≤ k·w``
  then every fault set that works must hit every ``u``–``v`` path of length
  ``≤ k·w``, in particular the shortest one, so it suffices to try faulting
  each of its elements and recurse with budget ``f - 1``.  Still exponential
  in ``f`` (the paper's open problem stands) but the branching factor is the
  hop-length of a short path rather than ``n``.
* :class:`GreedyPathPackingOracle` — polynomial-time heuristic: repeatedly
  fault one element of the current shortest short path, up to ``f`` times.
  One-sided: a returned fault set is always a genuine witness, but a ``None``
  answer may be wrong, so a spanner built with this oracle can be slightly
  sparser than required and is *not guaranteed* to be ``f``-fault tolerant.
  It exists for the runtime experiment (E8) and as the "better and simpler"
  style baseline.

All oracles return either a canonical fault set ``F`` witnessing the distance
blow-up, or ``None`` when no such set exists (or was found, for the
heuristic).

When the queried graph is a plain :class:`~repro.graph.core.Graph` (always
the case inside the greedy driver, where it is the growing spanner ``H``),
every oracle runs on the compiled CSR snapshot with *fault masks*: trying a
candidate fault set is a few byte writes on a mask instead of building an
:class:`ExclusionView`, and the distance query itself runs the array-native
kernels.  Duck-typed graphs (views, test doubles) fall back to the original
view-based implementations, which the mask path mirrors decision-for-decision.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Tuple

from repro.faults.enumeration import enumerate_fault_sets
from repro.faults.models import FaultModel, FaultSet, get_fault_model
from repro.graph.core import Graph, Node, edge_key
from repro.graph.csr import CSRGraph, csr_snapshot
from repro.graph.views import ExclusionView
from repro.obs.metrics import MetricsRegistry, component_registry
from repro.paths.dijkstra import bounded_distance, bounded_path
from repro.paths.registry import KernelLike, get_kernels


class OracleStats:
    """Oracle work counters shared between an oracle and the greedy driver.

    The counters live on a per-oracle metrics registry (``oracle.*`` family,
    attached to the process default — see :mod:`repro.obs`), so oracle work
    shows up in ``repro-spanner stats`` and span traces.  Reads keep the
    historical attribute names (``queries``, ``distance_queries``,
    ``nodes_expanded``); writes go through the ``count_*`` methods.
    ``reset()`` zeroes this oracle's counters only — the greedy driver calls
    it at build start so finished builds report per-build work.
    """

    __slots__ = ("metrics", "_queries", "_distance_queries", "_nodes_expanded")

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = (metrics if metrics is not None
                        else component_registry("oracle"))
        self._queries = self.metrics.counter(
            "oracle.queries", "fault-check oracle calls")
        self._distance_queries = self.metrics.counter(
            "oracle.distance_queries",
            "bounded distance queries issued by oracles")
        self._nodes_expanded = self.metrics.counter(
            "oracle.nodes_expanded", "branch-and-bound search tree nodes")

    @property
    def queries(self) -> int:
        return self._queries.value

    @property
    def distance_queries(self) -> int:
        return self._distance_queries.value

    @property
    def nodes_expanded(self) -> int:
        return self._nodes_expanded.value

    def count_query(self) -> None:
        self._queries.inc()

    def count_distance_query(self) -> None:
        self._distance_queries.inc()

    def count_nodes_expanded(self) -> None:
        self._nodes_expanded.inc()

    def reset(self) -> None:
        self.metrics.reset()


def candidate_elements_csr(model: FaultModel, csr: CSRGraph, source: Node,
                           target: Node) -> List:
    """Faultable elements derived from a CSR snapshot (no ``Graph`` needed).

    Vertex candidates come back in ``csr.node_of`` order, which equals the
    source graph's node-insertion order; edge candidates come back in
    undirected-edge-id order (the compile/append order of the snapshot).
    Callers that need the exact :meth:`Graph.edges` iteration order — it can
    differ from id order after incremental appends — should pass an explicit
    ``candidates`` list to :meth:`FaultCheckOracle.find_breaking_fault_set_csr`
    instead; enumeration order decides which witness a tie returns.
    """
    if model.uses_vertex_mask:
        return [node for node in csr.node_of
                if node != source and node != target]
    node_of = csr.node_of
    return [edge_key(node_of[a], node_of[b]) for a, b in csr.edge_index]


class FaultCheckOracle(ABC):
    """Interface for the "find a breaking fault set" decision/search problem."""

    #: Short name used in experiment tables.
    name: str = "abstract"

    #: Whether a ``None`` answer is guaranteed to mean "no fault set exists".
    exact: bool = True

    def __init__(self, kernel: KernelLike = None) -> None:
        self.stats = OracleStats()
        #: Kernel backend answering the CSR distance queries (auto if None).
        self.kernels = get_kernels(kernel)

    @abstractmethod
    def find_breaking_fault_set(self, graph, source: Node, target: Node,
                                budget: float, max_faults: int,
                                fault_model: "str | FaultModel") -> Optional[FaultSet]:
        """Return ``F`` with ``|F| ≤ max_faults`` and ``dist_{graph\\F}(source, target) > budget``.

        Returns ``None`` if no such set exists (exact oracles) or none was
        found (heuristic oracles).  The distance comparison treats
        unreachability as ``inf > budget``.
        """

    def find_breaking_fault_set_csr(self, csr: CSRGraph, source: Node,
                                    target: Node, budget: float,
                                    max_faults: int,
                                    fault_model: "str | FaultModel",
                                    candidates: Optional[List] = None) -> Optional[FaultSet]:
        """CSR-native twin of :meth:`find_breaking_fault_set`.

        Operates directly on a compiled snapshot, so the check can run in a
        worker process that only received the (picklable) CSR — this is what
        the parallel FT-greedy build ships through :mod:`repro.runtime`.
        ``candidates`` optionally pins the enumeration order of the faultable
        elements (only the exhaustive oracle consults it); oracles without a
        CSR implementation raise ``NotImplementedError`` so the parallel
        driver can refuse them up front.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no CSR fault-check implementation")

    # ------------------------------------------------------------------ utils
    def _distance_exceeds(self, graph, source: Node, target: Node,
                          budget: float) -> bool:
        """Whether the (possibly faulted view) distance already exceeds the budget."""
        self.stats.count_distance_query()
        return bounded_distance(graph, source, target, budget) > budget

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ExhaustiveOracle(FaultCheckOracle):
    """Ground-truth oracle: enumerate every fault set of size at most ``f``.

    The paper's "naive implementation"; complexity ``O(n^f)`` distance
    queries per edge.  Use only on very small instances.
    """

    name = "exhaustive"
    exact = True

    def find_breaking_fault_set(self, graph, source: Node, target: Node,
                                budget: float, max_faults: int,
                                fault_model: "str | FaultModel") -> Optional[FaultSet]:
        model = get_fault_model(fault_model)
        elements = model.candidate_elements(graph, source, target)
        if isinstance(graph, Graph):
            # Candidates come from the *graph* so the enumeration order (and
            # hence which witness a tie returns) is identical to the
            # pre-kernel implementation.
            return self.find_breaking_fault_set_csr(
                csr_snapshot(graph), source, target, budget, max_faults,
                model, candidates=elements)
        self.stats.count_query()
        for faults in enumerate_fault_sets(elements, max_faults):
            view = model.apply(graph, faults)
            if self._distance_exceeds(view, source, target, budget):
                return model.canonical(faults)
        return None

    def find_breaking_fault_set_csr(self, csr: CSRGraph, source: Node,
                                    target: Node, budget: float,
                                    max_faults: int,
                                    fault_model: "str | FaultModel",
                                    candidates: Optional[List] = None) -> Optional[FaultSet]:
        model = get_fault_model(fault_model)
        self.stats.count_query()
        elements = (candidates if candidates is not None
                    else candidate_elements_csr(model, csr, source, target))
        s = csr.index_of.get(source)
        t = csr.index_of.get(target)
        mask = model.new_mask(csr)
        vertex_mask, edge_mask = model.kernel_masks(mask)
        bounded_query = self.kernels.resolve(csr).bounded_dijkstra_csr
        for faults in enumerate_fault_sets(elements, max_faults):
            indices = model.mask_indices(csr, faults)
            for index in indices:
                mask[index] = 1
            self.stats.count_distance_query()
            if s is None or t is None:
                exceeded = True
            else:
                exceeded = bounded_query(
                    csr, s, t, budget, vertex_mask, edge_mask) > budget
            for index in indices:
                mask[index] = 0
            if exceeded:
                return model.canonical(faults)
        return None


class BranchAndBoundOracle(FaultCheckOracle):
    """Exact oracle that branches only on elements of short witness paths.

    Correctness: suppose some fault set ``F*`` of size ``≤ f`` works.  Consider
    the shortest ``source``–``target`` path ``P`` in the current (partially
    faulted) graph with length ``≤ budget``; since removing ``F*`` pushes the
    distance above the budget, ``F*`` must contain at least one element of
    ``P`` (an internal vertex for vertex faults, an edge for edge faults).
    Hence trying every element of ``P`` as "the next fault" and recursing with
    budget ``f - 1`` explores a superset of some ordering of ``F*``.

    The worst-case complexity is ``O(L^f)`` distance queries per edge, where
    ``L`` is the hop-length of short paths — exponential in ``f`` as the paper
    says, but with a far smaller base than :class:`ExhaustiveOracle`.
    """

    name = "branch-and-bound"
    exact = True

    def find_breaking_fault_set(self, graph, source: Node, target: Node,
                                budget: float, max_faults: int,
                                fault_model: "str | FaultModel") -> Optional[FaultSet]:
        model = get_fault_model(fault_model)
        if isinstance(graph, Graph):
            return self.find_breaking_fault_set_csr(
                csr_snapshot(graph), source, target, budget, max_faults, model)
        self.stats.count_query()
        found = self._search(graph, source, target, budget, max_faults, model, [])
        return model.canonical(found) if found is not None else None

    def find_breaking_fault_set_csr(self, csr: CSRGraph, source: Node,
                                    target: Node, budget: float,
                                    max_faults: int,
                                    fault_model: "str | FaultModel",
                                    candidates: Optional[List] = None) -> Optional[FaultSet]:
        # ``candidates`` is ignored: the branching elements come from the
        # witness paths themselves, never from a global enumeration.
        model = get_fault_model(fault_model)
        self.stats.count_query()
        mask = model.new_mask(csr)
        found = self._search_csr(
            csr, source, target,
            csr.index_of.get(source), csr.index_of.get(target),
            budget, max_faults, model, [], mask,
        )
        return model.canonical(found) if found is not None else None

    def _search_csr(self, csr: CSRGraph, source: Node, target: Node,
                    s: Optional[int], t: Optional[int], budget: float,
                    remaining: int, model: FaultModel,
                    current: List, mask: bytearray) -> Optional[List]:
        """Mask-based twin of :meth:`_search`: branch = one byte write."""
        self.stats.count_nodes_expanded()
        self.stats.count_distance_query()
        if s is None or t is None:
            return list(current)
        vertex_mask, edge_mask = model.kernel_masks(mask)
        distance, index_path = self.kernels.resolve(csr).bounded_dijkstra_path_csr(
            csr, s, t, budget, vertex_mask, edge_mask)
        if distance > budget:
            return list(current)
        if remaining == 0:
            return None
        node_of = csr.node_of
        path = [node_of[index] for index in index_path]
        for element in self._path_elements(path, source, target, model):
            index = model.mask_indices(csr, (element,))[0]
            current.append(element)
            mask[index] = 1
            result = self._search_csr(csr, source, target, s, t, budget,
                                      remaining - 1, model, current, mask)
            mask[index] = 0
            current.pop()
            if result is not None:
                return result
        return None

    def _search(self, graph, source: Node, target: Node, budget: float,
                remaining: int, model: FaultModel,
                current: List) -> Optional[List]:
        self.stats.count_nodes_expanded()
        view = model.apply(graph, current) if current else graph
        self.stats.count_distance_query()
        distance, path = bounded_path(view, source, target, budget)
        if distance > budget:
            return list(current)
        if remaining == 0:
            return None
        for element in self._path_elements(path, source, target, model):
            current.append(element)
            result = self._search(graph, source, target, budget,
                                  remaining - 1, model, current)
            current.pop()
            if result is not None:
                return result
        return None

    @staticmethod
    def _path_elements(path: List[Node], source: Node, target: Node,
                       model: FaultModel) -> List:
        """Faultable elements of a witness path for the given model."""
        if model.name == "vertex":
            return [node for node in path if node != source and node != target]
        return [edge_key(path[i], path[i + 1]) for i in range(len(path) - 1)]


class GreedyPathPackingOracle(FaultCheckOracle):
    """Polynomial heuristic: greedily hit the current shortest short path.

    Repeats at most ``f`` times: find the shortest ``source``–``target`` path
    of length ``≤ budget`` in the currently-faulted graph; fault its most
    central element (the middle internal vertex / middle edge).  If after at
    most ``f`` rounds the distance exceeds the budget, the accumulated fault
    set is returned (and is a genuine witness).  Otherwise ``None`` is
    returned, which may be a false negative.

    Spanners built with this oracle are therefore *heuristic* FT spanners:
    still valid k-spanners in the fault-free sense, but possibly missing edges
    needed for full fault tolerance.  Experiment E8 quantifies the
    speed/quality trade-off against the exact oracles.
    """

    name = "greedy-path-packing"
    exact = False

    def find_breaking_fault_set(self, graph, source: Node, target: Node,
                                budget: float, max_faults: int,
                                fault_model: "str | FaultModel") -> Optional[FaultSet]:
        model = get_fault_model(fault_model)
        if isinstance(graph, Graph):
            return self.find_breaking_fault_set_csr(
                csr_snapshot(graph), source, target, budget, max_faults, model)
        self.stats.count_query()
        chosen: List = []
        for _ in range(max_faults + 1):
            view = model.apply(graph, chosen) if chosen else graph
            self.stats.count_distance_query()
            distance, path = bounded_path(view, source, target, budget)
            if distance > budget:
                return model.canonical(chosen)
            if len(chosen) >= max_faults:
                return None
            elements = BranchAndBoundOracle._path_elements(path, source, target, model)
            if not elements:
                # The short path has no faultable element (e.g. a direct edge
                # under vertex faults): no fault set can break this pair.
                return None
            chosen.append(elements[len(elements) // 2])
        return None

    def find_breaking_fault_set_csr(self, csr: CSRGraph, source: Node,
                                    target: Node, budget: float,
                                    max_faults: int,
                                    fault_model: "str | FaultModel",
                                    candidates: Optional[List] = None) -> Optional[FaultSet]:
        """Mask-based twin of the view loop above (``candidates`` ignored)."""
        model = get_fault_model(fault_model)
        self.stats.count_query()
        s = csr.index_of.get(source)
        t = csr.index_of.get(target)
        mask = model.new_mask(csr)
        vertex_mask, edge_mask = model.kernel_masks(mask)
        node_of = csr.node_of
        chosen: List = []
        for _ in range(max_faults + 1):
            self.stats.count_distance_query()
            if s is None or t is None:
                return model.canonical(chosen)
            distance, index_path = self.kernels.resolve(csr).bounded_dijkstra_path_csr(
                csr, s, t, budget, vertex_mask, edge_mask)
            if distance > budget:
                return model.canonical(chosen)
            if len(chosen) >= max_faults:
                return None
            path = [node_of[index] for index in index_path]
            elements = BranchAndBoundOracle._path_elements(path, source, target, model)
            if not elements:
                return None
            element = elements[len(elements) // 2]
            chosen.append(element)
            mask[model.mask_indices(csr, (element,))[0]] = 1
        return None


_ORACLES = {
    "exhaustive": ExhaustiveOracle,
    "branch-and-bound": BranchAndBoundOracle,
    "bnb": BranchAndBoundOracle,
    "exact": BranchAndBoundOracle,
    "greedy-path-packing": GreedyPathPackingOracle,
    "heuristic": GreedyPathPackingOracle,
}


def get_oracle(name: "str | FaultCheckOracle | None",
               kernel: KernelLike = None) -> FaultCheckOracle:
    """Resolve an oracle by name; ``None`` gives the default exact oracle.

    ``kernel`` picks the kernel backend the oracle's CSR distance queries
    run on (passed through to the oracle constructor; ignored for
    already-constructed oracle instances).
    """
    if name is None:
        return BranchAndBoundOracle(kernel)
    if isinstance(name, FaultCheckOracle):
        return name
    try:
        return _ORACLES[name.lower()](kernel)
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown oracle {name!r}; expected one of {sorted(set(_ORACLES))}"
        ) from None
