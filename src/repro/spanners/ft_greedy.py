"""Algorithm 1 of the paper: the fault-tolerant greedy spanner.

::

    function ft-greedy(G = (V, E, w), k, f):
        H ← (V, ∅, w)
        for (u, v) ∈ E in order of increasing weight:
            if ∃ F, |F| ≤ f (vertices resp. edges) with dist_{H \\ F}(u, v) > k · w(u, v):
                add (u, v) to H
        return H

The existence check is delegated to a :class:`~repro.spanners.fault_check.FaultCheckOracle`
(exact branch-and-bound by default).  The witnessing fault set ``F_e`` of each
added edge is recorded — Lemma 3 turns exactly these witnesses into a
``(k + 1)``-blocking set of size at most ``f · |E(H)|``, which is how the
paper's size bound is proved and how experiment E5 validates it.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.models import FaultModel, get_fault_model
from repro.graph.core import Graph, edge_key
from repro.graph.csr import csr_snapshot
from repro.spanners.base import SpannerResult
from repro.spanners.fault_check import FaultCheckOracle, get_oracle
from repro.spanners.greedy import sorted_edges
from repro.utils.logging import get_logger
from repro.utils.timing import Timer

_LOGGER = get_logger("spanners.ft_greedy")


def ft_greedy_spanner(graph: Graph, stretch: float, max_faults: int,
                      fault_model: "str | FaultModel" = "vertex",
                      *, oracle: "str | FaultCheckOracle | None" = None,
                      record_witnesses: bool = True,
                      progress_every: int = 0) -> SpannerResult:
    """Build an ``f``-fault-tolerant ``k``-spanner with Algorithm 1.

    Parameters
    ----------
    graph:
        The weighted input graph ``G``.
    stretch:
        The stretch factor ``k ≥ 1``.
    max_faults:
        The fault budget ``f ≥ 0``.  ``f = 0`` reproduces the classic greedy
        spanner exactly.
    fault_model:
        ``"vertex"`` (VFT, where the paper's bound is optimal) or ``"edge"``
        (EFT).
    oracle:
        Fault-check oracle: ``"branch-and-bound"`` (default, exact),
        ``"exhaustive"`` (exact, slow), ``"greedy-path-packing"`` (heuristic,
        polynomial — the resulting spanner may not be fully fault tolerant),
        or an oracle instance.
    record_witnesses:
        Keep the fault set that justified each added edge (needed by the
        Lemma 3 blocking-set extraction; costs a small amount of memory).
    progress_every:
        Log progress every this many edges (0 disables logging).

    Returns
    -------
    SpannerResult
        The spanner ``H``, the witness fault sets, and work counters.  By
        Theorem 1 the size satisfies ``|E(H)| = O(f^2 · b(n/f, k+1))``; with
        stretch ``2k - 1`` this is ``O(n^{1+1/k} · f^{1-1/k})`` (Corollary 2).

    Notes
    -----
    The greedy decision for edge ``(u, v)`` is made against the *current*
    partial spanner ``H`` (not the final one), exactly as in the paper; this
    is what makes Lemma 3 work, because when a short cycle closes, its last
    edge saw the rest of the cycle already present.
    """
    if stretch < 1:
        raise ValueError("stretch must be at least 1")
    if max_faults < 0:
        raise ValueError("max_faults must be non-negative")
    model = get_fault_model(fault_model)
    checker = get_oracle(oracle)
    checker.stats.reset()

    spanner = graph.spanning_subgraph()
    # Compile H's CSR snapshot up front: Graph.add_edge keeps it in sync as
    # edges are kept, so the oracle's mask-based kernels never recompile
    # while H grows (thousands of bounded Dijkstra queries per insertion).
    csr_snapshot(spanner)
    witnesses = {}
    timer = Timer("ft-greedy").start()
    considered = 0
    edge_list = sorted_edges(graph)
    for u, v, w in edge_list:
        considered += 1
        budget = stretch * w
        fault_set = checker.find_breaking_fault_set(
            spanner, u, v, budget, max_faults, model
        )
        if fault_set is not None:
            spanner.add_edge(u, v, w)
            if record_witnesses:
                witnesses[edge_key(u, v)] = fault_set
        if progress_every and considered % progress_every == 0:
            _LOGGER.info(
                "ft-greedy: %d/%d edges considered, %d kept",
                considered, len(edge_list), spanner.number_of_edges(),
            )
    timer.stop()

    return SpannerResult(
        spanner=spanner,
        original=graph,
        stretch=stretch,
        max_faults=max_faults,
        fault_model=model.name,
        algorithm=f"ft-greedy[{checker.name}]",
        witness_fault_sets=witnesses,
        edges_considered=considered,
        edges_added=spanner.number_of_edges(),
        oracle_queries=checker.stats.queries,
        distance_queries=checker.stats.distance_queries,
        construction_seconds=timer.elapsed,
        parameters={"oracle": checker.name, "oracle_exact": checker.exact},
    )


def vft_greedy_spanner(graph: Graph, stretch: float, max_faults: int,
                       **kwargs) -> SpannerResult:
    """Convenience wrapper for the vertex-fault-tolerant greedy algorithm."""
    return ft_greedy_spanner(graph, stretch, max_faults, fault_model="vertex", **kwargs)


def eft_greedy_spanner(graph: Graph, stretch: float, max_faults: int,
                       **kwargs) -> SpannerResult:
    """Convenience wrapper for the edge-fault-tolerant greedy algorithm."""
    return ft_greedy_spanner(graph, stretch, max_faults, fault_model="edge", **kwargs)
