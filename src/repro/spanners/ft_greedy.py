"""Algorithm 1 of the paper: the fault-tolerant greedy spanner.

::

    function ft-greedy(G = (V, E, w), k, f):
        H ← (V, ∅, w)
        for (u, v) ∈ E in order of increasing weight:
            if ∃ F, |F| ≤ f (vertices resp. edges) with dist_{H \\ F}(u, v) > k · w(u, v):
                add (u, v) to H
        return H

The existence check is delegated to a :class:`~repro.spanners.fault_check.FaultCheckOracle`
(exact branch-and-bound by default).  The witnessing fault set ``F_e`` of each
added edge is recorded — Lemma 3 turns exactly these witnesses into a
``(k + 1)``-blocking set of size at most ``f · |E(H)|``, which is how the
paper's size bound is proved and how experiment E5 validates it.

:func:`ft_greedy_spanner` is the stable front door, now a thin shim over the
algorithm registry (:mod:`repro.build`): it translates its arguments into a
:class:`~repro.build.spec.BuildSpec` and runs :func:`repro.build.build`,
which lands back in :func:`_ft_greedy` below — byte-identical spanners,
witnesses, and counters either way.  Prefer constructing through
``build(graph, BuildSpec("ft-greedy", ...))`` in new code.

Parallel construction
---------------------
With ``workers > 1`` the per-edge fault checks shard through
:mod:`repro.runtime` using *speculative batches*: a batch of upcoming edges
is checked in parallel against the spanner ``H`` frozen at batch start, then
replayed serially in weight order.  Batches grow geometrically
(:data:`_BATCH_GROWTH`), so the pool is dispatched only ``O(log m)`` times:
the accept-dense light-edge prefix is covered by small batches (few wasted
re-checks), while the reject-dominated tail — where parallel checking
actually pays — runs in a handful of large ones.  Rejections are safe to trust because the
check is monotone — ``H`` only gains edges, so distances only shrink, and a
pair no fault set could break against the smaller ``H`` cannot be broken
against any larger one.  Speculative *accepts* are trusted only while ``H``
is unchanged since batch start (then the worker's answer is exactly the
serial answer); once an earlier edge of the batch was added, later accepts
are re-checked in process against the current ``H``.  The spanner and the
witness fault sets are therefore **byte-identical** to the serial run —
property-tested in ``tests/test_build.py`` — while the work counters report
the actual (speculative) work performed.  This requires an *exact* oracle:
the heuristic path-packing oracle may answer ``None`` for reasons that do
not transfer between snapshots of ``H``, so it is rejected up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.faults.models import FaultModel, FaultSet, get_fault_model
from repro.graph.core import Graph, Node, edge_key
from repro.graph.csr import CSRGraph, csr_snapshot
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.runtime.backend import BackendLike, ExecutionBackend, get_backend
from repro.runtime.merge import merge_counters
from repro.runtime.shard import split_sequence
from repro.spanners.base import SpannerResult
from repro.spanners.fault_check import FaultCheckOracle, get_oracle
from repro.spanners.greedy import sorted_edges
from repro.utils.logging import get_logger
from repro.utils.timing import Timer

_LOGGER = get_logger("spanners.ft_greedy")

#: Edges speculatively checked in the first parallel round, per worker.
_BATCH_EDGES_PER_WORKER = 4
#: ... but never fewer than this many per round (amortises pool dispatch).
_BATCH_MIN = 16
#: Batches double in size each round (the accept-dense light-edge prefix
#: gets fine granularity, the reject-dominated tail gets huge batches), so
#: the number of pool dispatches is O(log m) rather than O(m / batch).
_BATCH_GROWTH = 2

# Build-outcome counters on the process registry (``repro-spanner stats``):
# accept/reject tallies cover serial and parallel drivers alike, the
# speculative pair only moves under ``workers > 1``.
_ACCEPTS = get_registry().counter(
    "build.oracle_accepts", "greedy decisions that kept the edge")
_REJECTS = get_registry().counter(
    "build.oracle_rejects", "greedy decisions that dropped the edge")
_SPECULATIVE_BATCHES = get_registry().counter(
    "build.speculative_batches", "parallel speculative batches dispatched")
_SPECULATIVE_RECHECKS = get_registry().counter(
    "build.speculative_rechecks",
    "stale speculative accepts replayed in process")


def ft_greedy_spanner(graph: Graph, stretch: float, max_faults: int,
                      fault_model: "str | FaultModel" = "vertex",
                      *, oracle: "str | FaultCheckOracle | None" = None,
                      record_witnesses: bool = True,
                      progress_every: int = 0,
                      workers: int = 1,
                      backend: BackendLike = None,
                      kernel: "str | None" = None,
                      on_progress: Optional[Callable[[str, int, int], None]] = None,
                      should_cancel: Optional[Callable[[], bool]] = None) -> SpannerResult:
    """Build an ``f``-fault-tolerant ``k``-spanner with Algorithm 1.

    This is a thin shim over the algorithm registry — equivalent to
    ``repro.build.build(graph, BuildSpec("ft-greedy", ...))`` — kept so
    existing call sites and code in the wild continue to work.

    Parameters
    ----------
    graph:
        The weighted input graph ``G``.
    stretch:
        The stretch factor ``k ≥ 1``.
    max_faults:
        The fault budget ``f ≥ 0``.  ``f = 0`` reproduces the classic greedy
        spanner exactly.
    fault_model:
        ``"vertex"`` (VFT, where the paper's bound is optimal) or ``"edge"``
        (EFT).
    oracle:
        Fault-check oracle: ``"branch-and-bound"`` (default, exact),
        ``"tiered"`` (exact, certified screens in front of branch-and-bound
        — the fast choice at scale), ``"exhaustive"`` (exact, slow),
        ``"greedy-path-packing"`` (heuristic, polynomial — the resulting
        spanner may not be fully fault tolerant), or an oracle instance.
    record_witnesses:
        Keep the fault set that justified each added edge (needed by the
        Lemma 3 blocking-set extraction; costs a small amount of memory).
    progress_every:
        Log progress every this many edges (0 disables logging).
    workers / backend:
        Shard the per-edge fault checks through :mod:`repro.runtime` (see
        the module docstring; requires an exact oracle).  The default runs
        the reference serial loop.
    on_progress / should_cancel:
        Optional hooks: ``on_progress("ft-greedy", edges_considered, total)``
        fires periodically; ``should_cancel()`` returning true aborts the
        build with :class:`repro.build.spec.BuildCancelled`.

    Returns
    -------
    SpannerResult
        The spanner ``H``, the witness fault sets, and work counters.  By
        Theorem 1 the size satisfies ``|E(H)| = O(f^2 · b(n/f, k+1))``; with
        stretch ``2k - 1`` this is ``O(n^{1+1/k} · f^{1-1/k})`` (Corollary 2).

    Notes
    -----
    The greedy decision for edge ``(u, v)`` is made against the *current*
    partial spanner ``H`` (not the final one), exactly as in the paper; this
    is what makes Lemma 3 work, because when a short cycle closes, its last
    edge saw the rest of the cycle already present.
    """
    if isinstance(oracle, FaultCheckOracle) or isinstance(backend, ExecutionBackend):
        # Live oracle/backend instances cannot ride inside a JSON build
        # spec; run the implementation directly (results are identical).
        return _ft_greedy(graph, stretch, max_faults, fault_model,
                          oracle=oracle, record_witnesses=record_witnesses,
                          progress_every=progress_every, workers=workers,
                          backend=backend, kernel=kernel,
                          on_progress=on_progress,
                          should_cancel=should_cancel)
    from repro.build import BuildSpec, build
    spec = BuildSpec(
        algorithm="ft-greedy", stretch=stretch, max_faults=max_faults,
        fault_model=get_fault_model(fault_model).name, oracle=oracle,
        workers=workers, backend=backend, kernel=kernel,
        params={"record_witnesses": record_witnesses,
                "progress_every": progress_every},
    )
    return build(graph, spec, on_progress=on_progress,
                 should_cancel=should_cancel)


def _ft_greedy(graph: Graph, stretch: float, max_faults: int,
               fault_model: "str | FaultModel" = "vertex",
               *, oracle: "str | FaultCheckOracle | None" = None,
               record_witnesses: bool = True,
               progress_every: int = 0,
               workers: int = 1,
               backend: BackendLike = None,
               kernel: "str | None" = None,
               on_progress: Optional[Callable[[str, int, int], None]] = None,
               should_cancel: Optional[Callable[[], bool]] = None) -> SpannerResult:
    """The FT-greedy implementation behind the registry entry and the shim."""
    if stretch < 1:
        raise ValueError("stretch must be at least 1")
    if max_faults < 0:
        raise ValueError("max_faults must be non-negative")
    model = get_fault_model(fault_model)
    checker = get_oracle(oracle, kernel)
    checker.stats.reset()

    resolved: Optional[ExecutionBackend] = None
    if workers > 1 or backend == "process" or isinstance(backend, ExecutionBackend):
        resolved = get_backend(backend, workers)
    if resolved is not None and resolved.workers > 1:
        return _ft_greedy_parallel(graph, stretch, max_faults, model, checker,
                                   resolved, kernel=kernel,
                                   record_witnesses=record_witnesses,
                                   progress_every=progress_every,
                                   on_progress=on_progress,
                                   should_cancel=should_cancel)

    spanner = graph.spanning_subgraph()
    # Compile H's CSR snapshot up front: Graph.add_edge keeps it in sync as
    # edges are kept, so the oracle's mask-based kernels never recompile
    # while H grows (thousands of bounded Dijkstra queries per insertion).
    csr_snapshot(spanner)
    witnesses = {}
    timer = Timer("ft-greedy").start()
    considered = 0
    edge_list = sorted_edges(graph)
    for u, v, w in edge_list:
        if should_cancel is not None and should_cancel():
            from repro.build.spec import BuildCancelled
            raise BuildCancelled("ft-greedy build cancelled")
        considered += 1
        budget = stretch * w
        fault_set = checker.find_breaking_fault_set(
            spanner, u, v, budget, max_faults, model
        )
        if fault_set is not None:
            _ACCEPTS.inc()
            spanner.add_edge(u, v, w)
            if record_witnesses:
                witnesses[edge_key(u, v)] = fault_set
        else:
            _REJECTS.inc()
        if progress_every and considered % progress_every == 0:
            _LOGGER.info(
                "ft-greedy: %d/%d edges considered, %d kept",
                considered, len(edge_list), spanner.number_of_edges(),
            )
        if (on_progress is not None
                and considered % (progress_every or 64) == 0):
            on_progress("ft-greedy", considered, len(edge_list))
    timer.stop()

    parameters = {"oracle": checker.name, "oracle_exact": checker.exact}
    hit_rate = checker.stats.observe_screen_hit_rate()
    if hit_rate is not None:
        parameters["screen_hit_rate"] = hit_rate
        parameters["screen_outcomes"] = checker.stats.screen_outcomes
    oracle_queries = checker.stats.queries
    distance_queries = checker.stats.distance_queries
    # Flush the oracle's counters to the process registry: the checker (and
    # its weakly-attached component registry) may die with this frame, and
    # a --metrics-json snapshot must still see the build's oracle.* family.
    checker.stats.publish()
    return SpannerResult(
        spanner=spanner,
        original=graph,
        stretch=stretch,
        max_faults=max_faults,
        fault_model=model.name,
        algorithm=f"ft-greedy[{checker.name}]",
        witness_fault_sets=witnesses,
        edges_considered=considered,
        edges_added=spanner.number_of_edges(),
        oracle_queries=oracle_queries,
        distance_queries=distance_queries,
        construction_seconds=timer.elapsed,
        parameters=parameters,
    )


# --------------------------------------------------------------------------
# Parallel (speculative-batch) driver
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class _FTCheckContext:
    """Picklable payload shipped once per worker per speculative batch."""

    csr: CSRGraph
    fault_model: str
    oracle: str
    max_faults: int
    kernel: "str | None" = None
    #: Candidate universes in :meth:`Graph.nodes` / :meth:`Graph.edges`
    #: order — only the exhaustive oracle enumerates them, but pinning the
    #: order here is what keeps its tie-broken witnesses byte-identical to
    #: the serial loop's.
    nodes: Optional[Tuple[Node, ...]] = None
    edges: Optional[Tuple[Tuple[Node, Node], ...]] = None


def _ft_check_chunk(ctx: _FTCheckContext,
                    chunk: List[Tuple[Node, Node, float]]):
    """Speculatively fault-check one chunk of edges against the frozen H."""
    model = get_fault_model(ctx.fault_model)
    checker = get_oracle(ctx.oracle, ctx.kernel)
    found: List[Optional[FaultSet]] = []
    for source, target, budget in chunk:
        candidates = None
        if ctx.nodes is not None:
            candidates = [node for node in ctx.nodes
                          if node != source and node != target]
        elif ctx.edges is not None:
            candidates = list(ctx.edges)
        found.append(checker.find_breaking_fault_set_csr(
            ctx.csr, source, target, budget, ctx.max_faults, model,
            candidates=candidates))
    # Ship the oracle's whole counter family — queries, distance queries,
    # nodes expanded, and the tiered screen/exact outcome tallies (labeled
    # keys like ``oracle.screen{outcome="reject"}`` round-trip through
    # ``merge_counters``).
    counters = checker.stats.metrics.counters()
    # Reset before returning so backend-level metric capture (which ships
    # the worker registry's movement) can never count this work a second
    # time: the explicit mapping above is the single source of truth.
    checker.stats.reset()
    return found, counters


def _ft_greedy_parallel(graph: Graph, stretch: float, max_faults: int,
                        model: FaultModel, checker: FaultCheckOracle,
                        backend: ExecutionBackend, *,
                        kernel: "str | None" = None,
                        record_witnesses: bool,
                        progress_every: int,
                        on_progress: Optional[Callable[[str, int, int], None]],
                        should_cancel: Optional[Callable[[], bool]]) -> SpannerResult:
    """Speculative-batch FT greedy: byte-identical spanner and witnesses.

    See the module docstring for the correctness argument (monotone rejects,
    version-guarded accepts).
    """
    if not checker.exact:
        raise ValueError(
            "parallel ft-greedy requires an exact oracle: the heuristic "
            f"{checker.name!r} oracle's misses do not transfer between "
            "snapshots of the growing spanner")
    try:
        get_oracle(checker.name)
    except ValueError:
        raise ValueError(
            "parallel ft-greedy requires an oracle constructible by name "
            f"in the worker processes; {checker.name!r} is not registered"
        ) from None

    spanner = graph.spanning_subgraph()
    csr_snapshot(spanner)
    witnesses = {}
    timer = Timer("ft-greedy-parallel").start()
    edge_list = sorted_edges(graph)
    total = len(edge_list)
    batch_size = max(_BATCH_MIN, _BATCH_EDGES_PER_WORKER * backend.workers)
    considered = 0
    rechecks = 0
    batches = 0
    worker_counters: dict = {}
    registry = get_registry()
    tracer = get_tracer()
    ship_elements = checker.name == "exhaustive"

    position = 0
    while position < total:
        if should_cancel is not None and should_cancel():
            from repro.build.spec import BuildCancelled
            raise BuildCancelled("ft-greedy build cancelled")
        batch = edge_list[position:position + batch_size]
        position += len(batch)
        batch_size *= _BATCH_GROWTH
        batches += 1
        h_version = spanner.version
        context = _FTCheckContext(
            csr=csr_snapshot(spanner), fault_model=model.name,
            oracle=checker.name, max_faults=max_faults, kernel=kernel,
            nodes=(tuple(spanner.nodes())
                   if ship_elements and model.uses_vertex_mask else None),
            edges=(tuple(spanner.edge_keys())
                   if ship_elements and not model.uses_vertex_mask else None),
        )
        tasks = [(u, v, stretch * w) for u, v, w in batch]
        speculative: List[Optional[FaultSet]] = []
        _SPECULATIVE_BATCHES.inc()
        with tracer.span("build.speculative_batch", batch=batches,
                         edges=len(batch)):
            for chunk_found, counters in backend.map(
                    _ft_check_chunk, split_sequence(tasks, backend.workers),
                    context=context, metrics=registry):
                speculative.extend(chunk_found)
                # One fold, two targets: the local tally feeding the
                # SpannerResult counters, and the process registry (the
                # chunk fn zeroed its own copy, so this is the only path
                # by which worker oracle counts reach the registry).
                merge_counters(worker_counters, counters)
                registry.merge_counters(counters)

            for (u, v, w), fault_set in zip(batch, speculative):
                considered += 1
                if fault_set is None:
                    # Monotone-safe: no fault set broke (u, v) against the
                    # batch-start H, so none can break it against the current,
                    # denser H either — the serial loop would also reject.
                    _REJECTS.inc()
                    continue
                if spanner.version != h_version:
                    # H gained an edge earlier in this batch; the speculative
                    # answer is stale, so replay the serial decision exactly.
                    rechecks += 1
                    _SPECULATIVE_RECHECKS.inc()
                    fault_set = checker.find_breaking_fault_set(
                        spanner, u, v, stretch * w, max_faults, model)
                    if fault_set is None:
                        _REJECTS.inc()
                        continue
                _ACCEPTS.inc()
                spanner.add_edge(u, v, w)
                if record_witnesses:
                    witnesses[edge_key(u, v)] = fault_set
        if progress_every and (considered // progress_every
                               != (considered - len(batch)) // progress_every):
            _LOGGER.info(
                "ft-greedy[parallel]: %d/%d edges considered, %d kept",
                considered, total, spanner.number_of_edges(),
            )
        if on_progress is not None:
            on_progress("ft-greedy", considered, total)
    timer.stop()

    parameters = {"oracle": checker.name, "oracle_exact": checker.exact,
                  "workers": backend.workers, "backend": backend.name,
                  "speculative_batches": batches,
                  "speculative_rechecks": rechecks}
    # The screen outcomes from the workers arrived as flat labeled counters;
    # fold them into the in-process tally before computing the build's rate.
    hit_rate = checker.stats.observe_screen_hit_rate(extra=worker_counters)
    if hit_rate is not None:
        parameters["screen_hit_rate"] = hit_rate
    oracle_queries = (checker.stats.queries
                      + int(worker_counters.get("oracle.queries", 0)))
    distance_queries = (checker.stats.distance_queries
                        + int(worker_counters.get("oracle.distance_queries", 0)))
    # The worker deltas were already merged into the process registry as
    # they arrived; flush the local checker's recheck counts the same way,
    # so a --metrics-json snapshot sees the whole build's oracle.* family
    # even after the checker dies with this frame.
    checker.stats.publish()
    return SpannerResult(
        spanner=spanner,
        original=graph,
        stretch=stretch,
        max_faults=max_faults,
        fault_model=model.name,
        algorithm=f"ft-greedy[{checker.name}]",
        witness_fault_sets=witnesses,
        edges_considered=considered,
        edges_added=spanner.number_of_edges(),
        # Counters report actual (speculative + recheck) work; unlike the
        # spanner and witnesses they are *not* byte-identical to serial.
        oracle_queries=oracle_queries,
        distance_queries=distance_queries,
        construction_seconds=timer.elapsed,
        parameters=parameters,
    )


def vft_greedy_spanner(graph: Graph, stretch: float, max_faults: int,
                       **kwargs) -> SpannerResult:
    """Convenience wrapper for the vertex-fault-tolerant greedy algorithm."""
    return ft_greedy_spanner(graph, stretch, max_faults, fault_model="vertex", **kwargs)


def eft_greedy_spanner(graph: Graph, stretch: float, max_faults: int,
                       **kwargs) -> SpannerResult:
    """Convenience wrapper for the edge-fault-tolerant greedy algorithm."""
    return ft_greedy_spanner(graph, stretch, max_faults, fault_model="edge", **kwargs)
