"""The classic greedy spanner of Althöfer, Das, Dobkin, Joseph & Soares.

This is the non-fault-tolerant baseline (``f = 0``): process edges by
increasing weight and keep ``(u, v)`` iff the distance in the spanner built so
far exceeds ``k · w(u, v)``.  Besides being the natural baseline for every
size comparison, it doubles as a correctness cross-check: the FT greedy
algorithm with ``f = 0`` must produce exactly the same edge set (the tests
assert this).
"""

from __future__ import annotations

from typing import Optional

from repro.graph.core import Graph, edge_key
from repro.graph.csr import csr_snapshot
from repro.paths.kernels import bounded_dijkstra_csr
from repro.spanners.base import SpannerResult
from repro.utils.timing import Timer


def sorted_edges(graph: Graph):
    """Edges sorted by increasing weight, ties broken by the canonical key.

    The deterministic tie-break makes every construction in the library fully
    reproducible; the greedy guarantee holds for *any* tie-break, which the
    property-based tests exercise by shuffling equal-weight edges.
    """
    return sorted(graph.edges(), key=lambda item: (item[2], repr(edge_key(item[0], item[1]))))


def greedy_spanner(graph: Graph, stretch: float) -> SpannerResult:
    """Build a ``stretch``-spanner with the greedy algorithm.

    A thin shim over the algorithm registry — equivalent to
    ``repro.build.build(graph, BuildSpec("greedy", stretch=...))`` — kept as
    the stable front door for existing call sites.

    Parameters
    ----------
    graph:
        The weighted input graph ``G``.
    stretch:
        The stretch factor ``k ≥ 1``.

    Returns
    -------
    SpannerResult
        The spanner and construction statistics.  For stretch ``2k - 1`` on an
        ``n``-node graph the output has ``O(n^{1 + 1/k})`` edges (via the
        Moore bound and the standard girth argument: the output has girth
        ``> 2k``).
    """
    from repro.build import BuildSpec, build
    return build(graph, BuildSpec(algorithm="greedy", stretch=stretch))


def _greedy(graph: Graph, stretch: float) -> SpannerResult:
    """The greedy implementation behind the registry entry and the shim."""
    if stretch < 1:
        raise ValueError("stretch must be at least 1")
    spanner = graph.spanning_subgraph()
    timer = Timer("greedy").start()
    considered = 0
    distance_queries = 0
    # Graph.add_edge appends into the compiled snapshot of H incrementally,
    # so csr_snapshot() is a version check per edge and every distance query
    # runs on the array kernels without recompiling.
    for u, v, w in sorted_edges(graph):
        considered += 1
        budget = stretch * w
        distance_queries += 1
        snapshot = csr_snapshot(spanner)
        index_of = snapshot.index_of
        if bounded_dijkstra_csr(snapshot, index_of[u], index_of[v], budget) > budget:
            spanner.add_edge(u, v, w)
    timer.stop()
    return SpannerResult(
        spanner=spanner,
        original=graph,
        stretch=stretch,
        max_faults=0,
        fault_model="none",
        algorithm="greedy",
        edges_considered=considered,
        edges_added=spanner.number_of_edges(),
        distance_queries=distance_queries,
        construction_seconds=timer.elapsed,
    )
