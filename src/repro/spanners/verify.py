"""Spanner and fault-tolerant-spanner verification.

These routines are the library's notion of ground truth: every construction
and every experiment ultimately defends itself by passing them.

* :func:`stretch_of` — worst multiplicative stretch of a subgraph (no faults).
* :func:`is_spanner` — Definition 1.
* :func:`is_ft_spanner` — Definition 2, checked either exhaustively over all
  fault sets of size ``≤ f`` (exponential, exact — used on small instances)
  or over a random sample of fault sets (one-sided: can only refute).

Both the fault-set sweep of :func:`is_ft_spanner` and the source-vertex
sweep of :func:`stretch_of` shard through :mod:`repro.runtime`: pass
``workers``/``backend`` to fan the work out over a process pool.  Parallel
runs are **bit-identical** to serial ones — same verdict, same worst
stretch, same witness fault set, and the same ``fault_sets_checked`` counter
(chunks are contiguous slices of the serial enumeration order, merged in
order; chunks speculatively executed past the first violation are discarded,
so the counter always means "the serial prefix up to the stopping point",
never "work performed").  ``tests/test_runtime.py`` enforces the identity
property-style for both fault models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.adversarial import stretch_between_csr, stretch_under_faults
from repro.faults.enumeration import count_fault_sets, enumerate_fault_sets, sample_fault_sets
from repro.faults.models import FaultModel, FaultSet, get_fault_model
from repro.graph.core import Graph, Node
from repro.graph.csr import CSRGraph, csr_snapshot
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.paths.dijkstra import dijkstra_distances
from repro.paths.registry import KernelLike, get_kernels
from repro.runtime.backend import BackendLike, get_backend
from repro.runtime.merge import ChunkVerdict, merge_verdicts
from repro.runtime.shard import chunk_size_for, iter_chunks, split_sequence

#: Relative slack on every stretch comparison, absorbing float noise in the
#: distance sums.  The CLI reuses this so its verdicts match the library's.
STRETCH_TOLERANCE = 1e-9

_RELATIVE_TOLERANCE = STRETCH_TOLERANCE

# Verification counters on the process registry.  ``fault_sets_checked``
# counts the serial prefix (the merge rule above), so serial and parallel
# runs report identical values — property-tested in ``tests/test_obs.py``.
_VERIFY_RUNS = get_registry().counter(
    "verify.runs", "is_ft_spanner verification runs")
_VERIFY_CHECKED = get_registry().counter(
    "verify.fault_sets_checked", "fault sets checked across verifications")
_VERIFY_VIOLATIONS = get_registry().counter(
    "verify.violations", "verifications that found a violating fault set")


@dataclass(frozen=True)
class _SweepContext:
    """Picklable payload for the sharded per-source stretch sweep."""

    csr_g: CSRGraph
    csr_h: CSRGraph
    #: ``None`` means "all targets"; otherwise source -> allowed target set.
    restrict: Optional[Dict[Node, frozenset]]
    kernel: Optional[str] = None


def _sweep_chunk(ctx: _SweepContext, sources: List[Node]) -> float:
    """Worst stretch over one chunk of source vertices (no faults).

    Delegates to :func:`stretch_between_csr` with an empty fault set so the
    per-source target scan lives in exactly one place; an all-zero mask
    gates nothing, so the floats match the unmasked kernels bit-for-bit.
    """
    return stretch_between_csr(ctx.csr_g, ctx.csr_h, get_fault_model("vertex"),
                               [], sources=sources, restrict=ctx.restrict,
                               kernel=ctx.kernel)


def stretch_of(original: Graph, subgraph: Graph,
               pairs: Optional[List[Tuple[Node, Node]]] = None,
               *, workers: int = 1, backend: BackendLike = None,
               kernel: KernelLike = None) -> float:
    """Worst stretch ``dist_H(s, t) / dist_G(s, t)`` over pairs connected in ``G``.

    Returns ``inf`` if some pair connected in ``original`` is disconnected in
    ``subgraph`` and ``1.0`` for graphs with fewer than two nodes.  The
    per-source sweep shards across ``workers`` (the merge is a plain
    maximum, so parallel results are bit-identical to serial).
    """
    sources: Iterable[Node]
    restrict = None
    if pairs is not None:
        restrict = {}
        for u, v in pairs:
            restrict.setdefault(u, set()).add(v)
        sources = list(restrict)
    else:
        sources = list(original.nodes())

    if isinstance(original, Graph) and isinstance(subgraph, Graph):
        # APSP sweep over the cached CSR snapshots: per source two kernel
        # runs and one pass over the settled indices — no per-source dicts.
        for source in sources:
            if not original.has_node(source):
                raise ValueError(f"source {source!r} not in graph")
        resolved = get_backend(backend, workers)
        context = _SweepContext(
            csr_g=csr_snapshot(original), csr_h=csr_snapshot(subgraph),
            restrict=(None if restrict is None else
                      {node: frozenset(targets)
                       for node, targets in restrict.items()}),
            kernel=get_kernels(kernel).name,
        )
        worst = 1.0
        for chunk_worst in resolved.map(_sweep_chunk,
                                        split_sequence(sources, resolved.workers),
                                        context=context,
                                        metrics=get_registry()):
            if chunk_worst > worst:
                worst = chunk_worst
        return worst

    worst = 1.0
    for source in sources:
        base = dijkstra_distances(original, source)
        sub = dijkstra_distances(subgraph, source) if subgraph.has_node(source) else {}
        for target, base_distance in base.items():
            if target == source or base_distance == 0:
                continue
            if restrict is not None and target not in restrict.get(source, ()):
                continue
            ratio = sub.get(target, math.inf) / base_distance
            if ratio > worst:
                worst = ratio
    return worst


def is_spanner(original: Graph, subgraph: Graph, stretch: float,
               *, workers: int = 1, backend: BackendLike = None,
               kernel: KernelLike = None) -> bool:
    """Definition 1: whether ``subgraph`` is a ``stretch``-spanner of ``original``."""
    return (stretch_of(original, subgraph, workers=workers, backend=backend,
                       kernel=kernel)
            <= stretch * (1.0 + _RELATIVE_TOLERANCE))


@dataclass
class FTVerificationReport:
    """Outcome of a fault-tolerant spanner verification run.

    ``ok`` is the verdict over the fault sets actually checked; ``exhaustive``
    records whether that was all of them.  When a violation is found the
    offending fault set and its stretch are reported so experiments can show
    concrete counterexamples for the non-FT baselines.
    """

    ok: bool
    stretch_required: float
    worst_stretch: float
    fault_model: str
    max_faults: int
    fault_sets_checked: int
    exhaustive: bool
    violating_fault_set: Optional[FaultSet] = None
    notes: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


@dataclass(frozen=True)
class _VerifyContext:
    """Picklable payload shipped once per worker for fault-set checking."""

    csr_g: CSRGraph
    csr_h: CSRGraph
    fault_model: str
    threshold: float
    kernel: Optional[str] = None


def _verify_chunk(ctx: _VerifyContext, chunk: List) -> ChunkVerdict:
    """Check one chunk of fault sets, stopping at its first violation.

    The exact twin of the serial loop restricted to the chunk: scan in
    order, track the running maximum, stop the moment the threshold is
    exceeded.
    """
    model = get_fault_model(ctx.fault_model)
    worst = 1.0
    checked = 0
    for faults in chunk:
        checked += 1
        value = stretch_between_csr(ctx.csr_g, ctx.csr_h, model, list(faults),
                                    kernel=ctx.kernel)
        if value > worst:
            worst = value
        if value > ctx.threshold:
            return ChunkVerdict(checked=checked, worst=worst,
                                witness=model.canonical(faults),
                                witness_value=value)
    return ChunkVerdict(checked=checked, worst=worst)


def is_ft_spanner(original: Graph, subgraph: Graph, stretch: float, max_faults: int,
                  fault_model: "str | FaultModel" = "vertex",
                  *, method: str = "auto", samples: int = 200, rng=None,
                  exhaustive_limit: int = 50_000,
                  workers: int = 1,
                  backend: BackendLike = None,
                  kernel: KernelLike = None) -> FTVerificationReport:
    """Definition 2: verify that ``subgraph`` is an ``f``-fault-tolerant spanner.

    Parameters
    ----------
    method:
        ``"exhaustive"`` checks every fault set of size ``≤ max_faults`` —
        exact but exponential; ``"sampled"`` checks ``samples`` random fault
        sets — can only refute, never fully confirm; ``"auto"`` picks
        exhaustive when the number of fault sets is at most
        ``exhaustive_limit``.
    workers / backend:
        Shard the fault-set sweep through :func:`repro.runtime.get_backend`.
        The report is bit-identical to a serial run (see the module
        docstring for the counter-merge rule); a found violation cancels the
        chunks enumerated after it.

    Notes
    -----
    Only fault sets of size exactly ``max_faults`` need to be sampled in the
    sampled mode: removing fewer elements can only decrease distances in the
    surviving original graph as well, but because *both* sides change, the
    exhaustive mode still checks all sizes (the paper's definition quantifies
    over ``|F| ≤ f``).
    """
    if stretch < 1:
        raise ValueError("stretch must be at least 1")
    if max_faults < 0:
        raise ValueError("max_faults must be non-negative")
    model = get_fault_model(fault_model)
    elements = model.all_elements(original)
    total_sets = count_fault_sets(len(elements), max_faults)

    if method == "auto":
        method = "exhaustive" if total_sets <= exhaustive_limit else "sampled"
    if method not in ("exhaustive", "sampled"):
        raise ValueError("method must be 'auto', 'exhaustive', or 'sampled'")

    if method == "exhaustive":
        candidates: Iterable = enumerate_fault_sets(elements, max_faults)
        total = total_sets
        exhaustive = True
    else:
        candidates = sample_fault_sets(original, model, max_faults, samples, rng=rng)
        total = len(candidates)
        exhaustive = False

    threshold = stretch * (1.0 + _RELATIVE_TOLERANCE)

    _VERIFY_RUNS.inc()
    with get_tracer().span("verify.is_ft_spanner", method=method,
                           max_faults=max_faults, workers=workers) as span:
        if isinstance(original, Graph) and isinstance(subgraph, Graph):
            resolved = get_backend(backend, workers)
            context = _VerifyContext(csr_g=csr_snapshot(original),
                                     csr_h=csr_snapshot(subgraph),
                                     fault_model=model.name, threshold=threshold,
                                     kernel=get_kernels(kernel).name)
            chunks = iter_chunks(candidates,
                                 chunk_size_for(total, resolved.workers))
            verdict = merge_verdicts(
                resolved.imap(_verify_chunk, chunks, context=context,
                              metrics=get_registry()))
            worst, checked = verdict.worst, verdict.checked
            violating = verdict.witness
        else:
            # Graph views have no CSR snapshot to ship; keep the plain scan.
            worst = 1.0
            checked = 0
            violating = None
            for faults in candidates:
                checked += 1
                value = stretch_under_faults(original, subgraph, model, faults)
                if value > worst:
                    worst = value
                if value > threshold:
                    violating = model.canonical(faults)
                    break
        _VERIFY_CHECKED.inc(checked)
        if violating is not None:
            _VERIFY_VIOLATIONS.inc()
        span.set(checked=checked, ok=violating is None)

    if violating is not None:
        return FTVerificationReport(
            ok=False,
            stretch_required=stretch,
            worst_stretch=worst,
            fault_model=model.name,
            max_faults=max_faults,
            fault_sets_checked=checked,
            exhaustive=exhaustive,
            violating_fault_set=violating,
            notes="found a fault set exceeding the required stretch",
        )
    return FTVerificationReport(
        ok=True,
        stretch_required=stretch,
        worst_stretch=worst,
        fault_model=model.name,
        max_faults=max_faults,
        fault_sets_checked=checked,
        exhaustive=exhaustive,
        notes="all checked fault sets respected the stretch"
              + ("" if exhaustive else " (sampled check only)"),
    )
