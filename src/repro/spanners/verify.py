"""Spanner and fault-tolerant-spanner verification.

These routines are the library's notion of ground truth: every construction
and every experiment ultimately defends itself by passing them.

* :func:`stretch_of` — worst multiplicative stretch of a subgraph (no faults).
* :func:`is_spanner` — Definition 1.
* :func:`is_ft_spanner` — Definition 2, checked either exhaustively over all
  fault sets of size ``≤ f`` (exponential, exact — used on small instances)
  or over a random sample of fault sets (one-sided: can only refute).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.faults.adversarial import stretch_under_faults
from repro.faults.enumeration import count_fault_sets, enumerate_fault_sets, sample_fault_sets
from repro.faults.models import FaultModel, FaultSet, get_fault_model
from repro.graph.core import Graph, Node
from repro.graph.csr import csr_snapshot
from repro.paths.dijkstra import dijkstra_distances
from repro.paths.kernels import sssp_dijkstra_csr

_RELATIVE_TOLERANCE = 1e-9


def stretch_of(original: Graph, subgraph: Graph,
               pairs: Optional[List[Tuple[Node, Node]]] = None) -> float:
    """Worst stretch ``dist_H(s, t) / dist_G(s, t)`` over pairs connected in ``G``.

    Returns ``inf`` if some pair connected in ``original`` is disconnected in
    ``subgraph`` and ``1.0`` for graphs with fewer than two nodes.
    """
    worst = 1.0
    sources: Iterable[Node]
    restrict = None
    if pairs is not None:
        restrict = {}
        for u, v in pairs:
            restrict.setdefault(u, set()).add(v)
        sources = list(restrict)
    else:
        sources = list(original.nodes())

    if isinstance(original, Graph) and isinstance(subgraph, Graph):
        # APSP sweep over the cached CSR snapshots: per source two kernel
        # runs and one pass over the settled indices — no per-source dicts.
        csr_g = csr_snapshot(original)
        csr_h = csr_snapshot(subgraph)
        node_of = csr_g.node_of
        h_index = csr_h.index_of
        for source in sources:
            if not original.has_node(source):
                raise ValueError(f"source {source!r} not in graph")
            base_dist, base_order = sssp_dijkstra_csr(csr_g, csr_g.index_of[source])
            hs = h_index.get(source)
            sub_dist = sssp_dijkstra_csr(csr_h, hs)[0] if hs is not None else None
            allowed = restrict.get(source, ()) if restrict is not None else None
            for index in base_order:
                target = node_of[index]
                base_distance = base_dist[index]
                if target == source or base_distance == 0:
                    continue
                if allowed is not None and target not in allowed:
                    continue
                if sub_dist is None:
                    ratio = math.inf
                else:
                    j = h_index.get(target)
                    ratio = (sub_dist[j] if j is not None else math.inf) / base_distance
                if ratio > worst:
                    worst = ratio
        return worst

    for source in sources:
        base = dijkstra_distances(original, source)
        sub = dijkstra_distances(subgraph, source) if subgraph.has_node(source) else {}
        for target, base_distance in base.items():
            if target == source or base_distance == 0:
                continue
            if restrict is not None and target not in restrict.get(source, ()):
                continue
            ratio = sub.get(target, math.inf) / base_distance
            if ratio > worst:
                worst = ratio
    return worst


def is_spanner(original: Graph, subgraph: Graph, stretch: float) -> bool:
    """Definition 1: whether ``subgraph`` is a ``stretch``-spanner of ``original``."""
    return stretch_of(original, subgraph) <= stretch * (1.0 + _RELATIVE_TOLERANCE)


@dataclass
class FTVerificationReport:
    """Outcome of a fault-tolerant spanner verification run.

    ``ok`` is the verdict over the fault sets actually checked; ``exhaustive``
    records whether that was all of them.  When a violation is found the
    offending fault set and its stretch are reported so experiments can show
    concrete counterexamples for the non-FT baselines.
    """

    ok: bool
    stretch_required: float
    worst_stretch: float
    fault_model: str
    max_faults: int
    fault_sets_checked: int
    exhaustive: bool
    violating_fault_set: Optional[FaultSet] = None
    notes: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def is_ft_spanner(original: Graph, subgraph: Graph, stretch: float, max_faults: int,
                  fault_model: "str | FaultModel" = "vertex",
                  *, method: str = "auto", samples: int = 200, rng=None,
                  exhaustive_limit: int = 50_000) -> FTVerificationReport:
    """Definition 2: verify that ``subgraph`` is an ``f``-fault-tolerant spanner.

    Parameters
    ----------
    method:
        ``"exhaustive"`` checks every fault set of size ``≤ max_faults`` —
        exact but exponential; ``"sampled"`` checks ``samples`` random fault
        sets — can only refute, never fully confirm; ``"auto"`` picks
        exhaustive when the number of fault sets is at most
        ``exhaustive_limit``.

    Notes
    -----
    Only fault sets of size exactly ``max_faults`` need to be sampled in the
    sampled mode: removing fewer elements can only decrease distances in the
    surviving original graph as well, but because *both* sides change, the
    exhaustive mode still checks all sizes (the paper's definition quantifies
    over ``|F| ≤ f``).
    """
    if stretch < 1:
        raise ValueError("stretch must be at least 1")
    if max_faults < 0:
        raise ValueError("max_faults must be non-negative")
    model = get_fault_model(fault_model)
    elements = model.all_elements(original)
    total_sets = count_fault_sets(len(elements), max_faults)

    if method == "auto":
        method = "exhaustive" if total_sets <= exhaustive_limit else "sampled"
    if method not in ("exhaustive", "sampled"):
        raise ValueError("method must be 'auto', 'exhaustive', or 'sampled'")

    if method == "exhaustive":
        candidates: Iterable = enumerate_fault_sets(elements, max_faults)
        exhaustive = True
    else:
        candidates = sample_fault_sets(original, model, max_faults, samples, rng=rng)
        exhaustive = False

    threshold = stretch * (1.0 + _RELATIVE_TOLERANCE)
    worst = 1.0
    checked = 0
    for faults in candidates:
        checked += 1
        value = stretch_under_faults(original, subgraph, model, faults)
        if value > worst:
            worst = value
        if value > threshold:
            return FTVerificationReport(
                ok=False,
                stretch_required=stretch,
                worst_stretch=worst,
                fault_model=model.name,
                max_faults=max_faults,
                fault_sets_checked=checked,
                exhaustive=exhaustive,
                violating_fault_set=model.canonical(faults),
                notes="found a fault set exceeding the required stretch",
            )
    return FTVerificationReport(
        ok=True,
        stretch_required=stretch,
        worst_stretch=worst,
        fault_model=model.name,
        max_faults=max_faults,
        fault_sets_checked=checked,
        exhaustive=exhaustive,
        notes="all checked fault sets respected the stretch"
              + ("" if exhaustive else " (sampled check only)"),
    )
