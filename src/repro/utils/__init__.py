"""Shared utilities: seeded randomness, timing, tables, and logging.

These helpers are deliberately dependency-light so every other subpackage can
import them without cycles.  They encode the project-wide conventions:

* all randomness flows through :class:`repro.utils.rng.RandomSource` so any
  experiment can be replayed from a single integer seed;
* all timing uses :class:`repro.utils.timing.Timer` /
  :func:`repro.utils.timing.timed` so benchmark harnesses report wall-clock
  numbers consistently;
* all tabular experiment output goes through :mod:`repro.utils.tables` so
  EXPERIMENTS.md rows and benchmark stdout share one format.
"""

from repro.utils.rng import RandomSource, derive_seed, ensure_rng
from repro.utils.timing import Timer, best_of, time_call, timed
from repro.utils.tables import Table, format_markdown_table, format_ascii_table
from repro.utils.logging import get_logger

__all__ = [
    "RandomSource",
    "derive_seed",
    "ensure_rng",
    "Timer",
    "best_of",
    "time_call",
    "timed",
    "Table",
    "format_markdown_table",
    "format_ascii_table",
    "get_logger",
]
