"""Minimal logging configuration shared across the library.

The library itself never configures the root logger (that is the
application's job); :func:`get_logger` returns namespaced loggers under the
``repro`` hierarchy, and :func:`configure_cli_logging` is used only by the
command-line entry point to give humans readable progress output.
"""

from __future__ import annotations

import logging
import sys

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("spanners.ft_greedy")`` returns ``repro.spanners.ft_greedy``.
    Passing ``None`` returns the package root logger.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_cli_logging(verbose: bool = False) -> None:
    """Configure a simple stderr handler for CLI runs.

    Idempotent: repeated calls replace the handler instead of stacking them.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(logging.DEBUG if verbose else logging.INFO)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s",
                          datefmt="%H:%M:%S")
    )
    logger.addHandler(handler)
    logger.propagate = False
