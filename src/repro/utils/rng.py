"""Deterministic, replayable randomness for experiments.

Every stochastic routine in the library accepts either an integer seed, a
:class:`random.Random` instance, or a :class:`RandomSource`.  The
:func:`ensure_rng` helper normalises all three into a :class:`RandomSource`,
which wraps :class:`random.Random` and adds a few graph-experiment specific
helpers (sampling without replacement from large ranges, weighted choices,
seed derivation for sub-experiments).

The convention throughout the repository is::

    def my_generator(n, *, rng=None):
        rng = ensure_rng(rng)
        ...

so that ``my_generator(10, rng=0)`` is fully reproducible while
``my_generator(10)`` uses nondeterministic seeding.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from typing import Iterable, Optional, Sequence, TypeVar, Union

T = TypeVar("T")

SeedLike = Union[None, int, random.Random, "RandomSource"]


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    Experiments frequently need independent random streams per configuration
    (e.g. one per ``(n, f, k, trial)`` tuple).  Deriving them by hashing keeps
    the streams uncorrelated while remaining reproducible from a single master
    seed.

    Parameters
    ----------
    base_seed:
        The master seed of the experiment.
    labels:
        Arbitrary hashable/stringifiable values identifying the sub-stream.

    Returns
    -------
    int
        A 63-bit non-negative integer seed.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x00")
        hasher.update(repr(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") & ((1 << 63) - 1)


class RandomSource:
    """A seeded random source with graph-experiment helpers.

    This is a thin wrapper around :class:`random.Random`; it exists so the
    rest of the codebase has a single, explicit type for "a stream of
    reproducible randomness" and so derived streams are easy to create.
    """

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._random = random.Random(seed)

    # -- stream management -------------------------------------------------
    def spawn(self, *labels: object) -> "RandomSource":
        """Create an independent child stream keyed by ``labels``."""
        if self.seed is None:
            return RandomSource(self._random.getrandbits(63))
        return RandomSource(derive_seed(self.seed, *labels))

    # -- primitive draws ----------------------------------------------------
    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher–Yates shuffle."""
        self._random.shuffle(seq)

    def sample(self, population: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements without replacement."""
        return self._random.sample(population, k)

    def getrandbits(self, bits: int) -> int:
        """Return an integer with ``bits`` random bits."""
        return self._random.getrandbits(bits)

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Gaussian draw."""
        return self._random.gauss(mu, sigma)

    # -- composite helpers ---------------------------------------------------
    def bernoulli(self, p: float) -> bool:
        """Return ``True`` with probability ``p``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._random.random() < p

    def subset(self, population: Iterable[T], p: float) -> list[T]:
        """Keep each element of ``population`` independently with probability ``p``."""
        return [item for item in population if self.bernoulli(p)]

    def weighted_choice(self, items: Sequence[T],
                        weights: Optional[Sequence[float]] = None, *,
                        cum_weights: Optional[Sequence[float]] = None) -> T:
        """Choose one item with probability proportional to its weight.

        Pass ``cum_weights`` (``itertools.accumulate(weights)``) instead of
        ``weights`` when drawing many times from the same distribution: it
        skips the O(n) cumulative-sum rebuild per draw while consuming the
        identical random stream.
        """
        if (weights is None) == (cum_weights is None):
            raise ValueError("provide exactly one of weights / cum_weights")
        given = weights if weights is not None else cum_weights
        if len(items) != len(given):
            raise ValueError("items and weights must have the same length")
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choices(items, weights=weights,
                                    cum_weights=cum_weights, k=1)[0]

    def distinct_pairs(self, n: int, count: int) -> list[tuple[int, int]]:
        """Sample ``count`` distinct unordered pairs from ``range(n)``.

        Uses rejection sampling when the pair space is much larger than
        ``count`` and exhaustive sampling otherwise, so it is efficient at both
        extremes.
        """
        total_pairs = n * (n - 1) // 2
        if count > total_pairs:
            raise ValueError(
                f"requested {count} distinct pairs but only {total_pairs} exist"
            )
        if count * 3 >= total_pairs:
            all_pairs = list(itertools.combinations(range(n), 2))
            return self.sample(all_pairs, count)
        seen: set[tuple[int, int]] = set()
        while len(seen) < count:
            u = self._random.randrange(n)
            v = self._random.randrange(n)
            if u == v:
                continue
            pair = (u, v) if u < v else (v, u)
            seen.add(pair)
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self.seed!r})"


def ensure_rng(rng: SeedLike = None) -> RandomSource:
    """Normalise any accepted seed-like value into a :class:`RandomSource`.

    Accepts ``None`` (nondeterministic), an ``int`` seed, an existing
    :class:`RandomSource` (returned unchanged), or a :class:`random.Random`
    (wrapped without reseeding).
    """
    if isinstance(rng, RandomSource):
        return rng
    if isinstance(rng, random.Random):
        wrapper = RandomSource()
        wrapper._random = rng
        wrapper.seed = None
        return wrapper
    if rng is None or isinstance(rng, int):
        return RandomSource(rng)
    raise TypeError(f"cannot interpret {rng!r} as a random source")
