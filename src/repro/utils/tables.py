"""Result-table formatting shared by experiments and benchmarks.

The experiment drivers produce :class:`Table` objects; the benchmark harness
prints them in the same ASCII/Markdown shape that EXPERIMENTS.md records, so
"paper row" and "measured row" are directly comparable.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence


def _format_cell(value: Any, float_format: str = "{:.4g}") -> str:
    """Render a single cell: floats get compact formatting, the rest ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_format.format(value)
    if value is None:
        return "-"
    return str(value)


@dataclass
class Table:
    """An ordered collection of result rows with a fixed column set.

    Rows are mappings from column name to value; missing values render as
    ``-``.  The class intentionally avoids pandas so the repository has no
    heavyweight dependencies.
    """

    columns: list[str]
    title: str = ""
    rows: list[dict[str, Any]] = field(default_factory=list)
    float_format: str = "{:.4g}"

    def add_row(self, row: Mapping[str, Any] | None = None, **values: Any) -> None:
        """Append a row given as a mapping and/or keyword arguments."""
        merged: dict[str, Any] = dict(row or {})
        merged.update(values)
        unknown = set(merged) - set(self.columns)
        if unknown:
            raise KeyError(f"row has columns not in table: {sorted(unknown)}")
        self.rows.append(merged)

    def column(self, name: str) -> list[Any]:
        """Return all values of one column (missing entries become ``None``)."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    def sort_by(self, *names: str) -> "Table":
        """Return a copy sorted by the given columns (ascending)."""
        copy = Table(columns=list(self.columns), title=self.title,
                     float_format=self.float_format)
        copy.rows = sorted(self.rows, key=lambda r: tuple(r.get(n) for n in names))
        return copy

    # -- rendering -----------------------------------------------------------
    def _rendered(self) -> list[list[str]]:
        header = list(self.columns)
        body = [
            [_format_cell(row.get(col), self.float_format) for col in self.columns]
            for row in self.rows
        ]
        return [header] + body

    def to_ascii(self) -> str:
        """Render as an aligned plain-text table."""
        return format_ascii_table(self._rendered(), title=self.title)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        return format_markdown_table(self._rendered(), title=self.title)

    def to_csv(self) -> str:
        """Render as CSV text (header row first)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        for row in self._rendered():
            writer.writerow(row)
        return buffer.getvalue()

    def to_json(self) -> dict:
        """Machine-readable form: ``{"title", "columns", "rows"}``.

        Rows keep their raw (unformatted) values with missing cells filled
        as ``None``; values JSON cannot carry are stringified, so the
        document always serialises (CI consumes this via ``experiment
        --json``).
        """
        def safe(value: Any) -> Any:
            try:
                json.dumps(value)
                return value
            except (TypeError, ValueError):
                return str(value)

        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [{col: safe(row.get(col)) for col in self.columns}
                     for row in self.rows],
        }

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        return self.to_ascii()


def format_ascii_table(rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Format pre-stringified rows (header first) as an aligned text table."""
    if not rows:
        return title
    widths = [0] * max(len(r) for r in rows)
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(rows[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rows[1:])
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Format pre-stringified rows (header first) as a markdown table."""
    if not rows:
        return f"### {title}" if title else ""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    header = rows[0]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows[1:]:
        padded = list(row) + [""] * (len(header) - len(row))
        lines.append("| " + " | ".join(padded) + " |")
    return "\n".join(lines)


def summarize_series(values: Iterable[float]) -> dict[str, float]:
    """Small numeric summary (min/mean/max) used in experiment reports."""
    data = list(values)
    if not data:
        return {"count": 0, "min": float("nan"), "mean": float("nan"), "max": float("nan")}
    return {
        "count": len(data),
        "min": min(data),
        "mean": sum(data) / len(data),
        "max": max(data),
    }
