"""Wall-clock timing helpers used by the experiment harness and benchmarks."""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating stopwatch.

    A :class:`Timer` can be started and stopped repeatedly; ``elapsed`` is the
    sum of all completed intervals plus the current one if running.  Used by
    the experiment drivers to attribute time to phases (construction,
    verification, blocking-set extraction, ...).
    """

    label: str = ""
    _start: float | None = None
    _accumulated: float = 0.0
    laps: list[float] = field(default_factory=list)

    def start(self) -> "Timer":
        """Start (or restart) the stopwatch."""
        if self._start is not None:
            raise RuntimeError(f"Timer {self.label!r} already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the duration of the last interval."""
        if self._start is None:
            # Distinguish "stop before any start" (a harness wiring bug)
            # from "stopped twice" — both name the offending timer.
            if not self.laps:
                raise RuntimeError(
                    f"Timer {self.label!r} was never started; call start() "
                    f"(or use measure()/timed()) before stop()")
            raise RuntimeError(f"Timer {self.label!r} is not running "
                               f"(already stopped)")
        lap = time.perf_counter() - self._start
        self._start = None
        self._accumulated += lap
        self.laps.append(lap)
        return lap

    def timed(self, fn: Callable[..., T]) -> Callable[..., T]:
        """Decorator: accumulate every call of ``fn`` onto this timer.

        ``timer.laps`` then holds one entry per call, so harnesses get
        per-call and total timings from a single decoration::

            timer = Timer("rebuild")

            @timer.timed
            def rebuild(): ...
        """
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            self.start()
            try:
                return fn(*args, **kwargs)
            finally:
                self.stop()
        wrapper.timer = self
        return wrapper

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds, including the in-progress interval."""
        total = self._accumulated
        if self._start is not None:
            total += time.perf_counter() - self._start
        return total

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        """Context manager form: ``with timer.measure(): ...``."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"Timer(label={self.label!r}, elapsed={self.elapsed:.6f}s, {state})"


@contextmanager
def timed(label: str = "") -> Iterator[Timer]:
    """Time a block of code: ``with timed("build") as t: ...; t.elapsed``."""
    timer = Timer(label=label)
    timer.start()
    try:
        yield timer
    finally:
        if timer.running:
            timer.stop()


def time_call(fn: Callable[..., T], *args, **kwargs) -> tuple[T, float]:
    """Call ``fn`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def best_of(fn: Callable[[], object], repeats: int = 5) -> float:
    """Minimum wall seconds of ``fn()`` over ``repeats`` runs.

    The benchmark-harness convention: the best of several repeats is the
    least noisy single-number summary of a deterministic workload.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    timer = Timer("best_of")
    call = timer.timed(fn)
    for _ in range(repeats):
        call()
    return min(timer.laps)
