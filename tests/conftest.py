"""Shared fixtures for the test suite.

Fixtures build small, deterministic instances: fast enough that the whole
suite stays in the minutes range, small enough that exhaustive oracles
(all fault sets, all short cycles) remain usable as ground truth.
"""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.core import Graph
from repro.utils.rng import RandomSource


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic random source."""
    return RandomSource(12345)


@pytest.fixture
def triangle() -> Graph:
    """The 3-cycle with unit weights."""
    return Graph(edges=[(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def square_with_diagonal() -> Graph:
    """A 4-cycle plus one diagonal; the diagonal weight makes paths interesting."""
    graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    graph.add_edge(0, 2, 1.5)
    return graph


@pytest.fixture
def weighted_path() -> Graph:
    """A weighted path 0-1-2-3-4 with increasing weights."""
    graph = Graph()
    for i in range(4):
        graph.add_edge(i, i + 1, float(i + 1))
    return graph


@pytest.fixture
def petersen() -> Graph:
    """The Petersen graph (girth 5)."""
    return generators.petersen_graph()


@pytest.fixture
def small_random() -> Graph:
    """A small connected random graph: 16 nodes, 48 edges, unit weights."""
    return generators.gnm(16, 48, rng=7, connected=True)


@pytest.fixture
def small_weighted_random() -> Graph:
    """A small connected random graph with random weights."""
    return generators.gnm(14, 40, rng=11, connected=True, weighted=True,
                          weight_range=(1.0, 10.0))


@pytest.fixture
def medium_random() -> Graph:
    """A denser instance used where compression must be visible: 30 nodes, 160 edges."""
    return generators.gnm(30, 160, rng=3, connected=True)
