"""Tests for the baseline constructions (trivial, peeling union, sampling union)."""

import pytest

from repro.baselines.peeling import peeling_union_spanner
from repro.baselines.sampling import default_sample_count, sampling_union_spanner
from repro.baselines.trivial import trivial_spanner
from repro.graph import generators
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner
from repro.spanners.verify import is_ft_spanner, is_spanner


class TestTrivial:
    def test_keeps_everything(self, medium_random):
        result = trivial_spanner(medium_random)
        assert result.size == medium_random.number_of_edges()
        assert result.spanner.same_structure(medium_random)

    def test_is_always_ft(self, small_random):
        result = trivial_spanner(small_random, stretch=3, max_faults=2)
        report = is_ft_spanner(small_random, result.spanner, 3, 1, method="exhaustive")
        assert report.ok

    def test_independent_copy(self, triangle):
        result = trivial_spanner(triangle)
        result.spanner.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)


class TestPeelingUnion:
    def test_parameter_validation(self, triangle):
        with pytest.raises(ValueError):
            peeling_union_spanner(triangle, 0.5, 1)
        with pytest.raises(ValueError):
            peeling_union_spanner(triangle, 3, -1)

    def test_zero_faults_reduces_to_greedy(self, medium_random):
        plain = greedy_spanner(medium_random, 3)
        peeled = peeling_union_spanner(medium_random, 3, 0)
        assert peeled.spanner.same_structure(plain.spanner)

    def test_edge_fault_tolerance_exhaustive(self, small_random):
        result = peeling_union_spanner(small_random, 3, 1)
        report = is_ft_spanner(small_random, result.spanner, 3, 1,
                               fault_model="edge", method="exhaustive")
        assert report.ok, report

    def test_edge_fault_tolerance_two_faults(self):
        graph = generators.gnm(12, 40, rng=31, connected=True)
        result = peeling_union_spanner(graph, 3, 2)
        report = is_ft_spanner(graph, result.spanner, 3, 2,
                               fault_model="edge", method="exhaustive")
        assert report.ok, report

    def test_size_grows_with_f_but_is_capped_by_m(self, medium_random):
        sizes = [peeling_union_spanner(medium_random, 3, f).size for f in range(4)]
        assert sizes == sorted(sizes)
        assert sizes[-1] <= medium_random.number_of_edges()

    def test_rounds_recorded(self, medium_random):
        result = peeling_union_spanner(medium_random, 3, 2)
        assert 1 <= result.parameters["rounds"] <= 3

    def test_stops_early_when_graph_exhausted(self):
        tree = generators.path_graph(8)
        result = peeling_union_spanner(tree, 3, 5)
        assert result.size == 7
        assert result.parameters["rounds"] <= 2

    def test_bigger_than_ft_greedy_on_dense_instances(self):
        graph = generators.gnm(40, 400, rng=5, connected=True)
        ft = ft_greedy_spanner(graph, 3, 2, fault_model="edge")
        peel = peeling_union_spanner(graph, 3, 2)
        assert peel.size >= ft.size

    def test_output_is_subgraph(self, medium_random):
        result = peeling_union_spanner(medium_random, 3, 2)
        assert result.spanner.is_subgraph_of(medium_random)


class TestSamplingUnion:
    def test_parameter_validation(self, triangle):
        with pytest.raises(ValueError):
            sampling_union_spanner(triangle, 0.5, 1)
        with pytest.raises(ValueError):
            sampling_union_spanner(triangle, 3, -1)
        with pytest.raises(ValueError):
            sampling_union_spanner(triangle, 3, 1, survival_probability=1.5)

    def test_default_sample_count_grows_with_f(self):
        counts = [default_sample_count(100, f) for f in range(4)]
        assert counts == sorted(counts)
        assert default_sample_count(1, 3) == 1

    def test_contains_plain_spanner(self, medium_random):
        plain = greedy_spanner(medium_random, 3)
        result = sampling_union_spanner(medium_random, 3, 1, rng=0, samples=5)
        assert plain.spanner.is_subgraph_of(result.spanner)
        assert is_spanner(medium_random, result.spanner, 3)

    def test_vertex_fault_tolerance_with_enough_samples(self, small_random):
        result = sampling_union_spanner(small_random, 3, 1, rng=0)
        report = is_ft_spanner(small_random, result.spanner, 3, 1,
                               fault_model="vertex", method="exhaustive")
        assert report.ok, report

    def test_sample_cap_reported(self, small_random):
        result = sampling_union_spanner(small_random, 3, 3, rng=0, max_samples=10)
        assert result.parameters["samples_used"] == 10
        assert result.parameters["sample_cap_hit"]

    def test_reproducible_with_seed(self, small_random):
        a = sampling_union_spanner(small_random, 3, 1, rng=7, samples=20)
        b = sampling_union_spanner(small_random, 3, 1, rng=7, samples=20)
        assert a.spanner.same_structure(b.spanner)

    def test_larger_than_ft_greedy_on_dense_instances(self):
        graph = generators.gnm(40, 400, rng=5, connected=True)
        ft = ft_greedy_spanner(graph, 3, 2)
        sampled = sampling_union_spanner(graph, 3, 2, rng=1, max_samples=150)
        assert sampled.size > ft.size

    def test_output_is_subgraph(self, medium_random):
        result = sampling_union_spanner(medium_random, 3, 1, rng=0, samples=10)
        assert result.spanner.is_subgraph_of(medium_random)
