"""Tests for blocking sets: Definition 3, Lemma 3 extraction, Lemma 4 sampling."""

import math

import pytest

from repro.graph import generators
from repro.graph.core import Graph
from repro.graph.girth import girth
from repro.spanners.blocking import (
    BlockingSet,
    extract_blocking_set,
    extract_edge_blocking_set,
    is_blocking_set,
    is_edge_blocking_set,
    lemma4_subsample,
    theorem1_certificate,
    unblocked_cycles,
)
from repro.spanners.ft_greedy import ft_greedy_spanner
from repro.spanners.greedy import greedy_spanner


def _ft_result(graph, stretch=3, faults=1, model="vertex"):
    return ft_greedy_spanner(graph, stretch, faults, fault_model=model)


class TestBlockingSetType:
    def test_size_and_iteration(self):
        blocking = BlockingSet(kind="vertex", pairs=frozenset({(5, (0, 1))}), cycle_bound=4)
        assert blocking.size == 1
        assert len(blocking) == 1
        assert list(blocking) == [(5, (0, 1))]

    def test_blockers_of(self):
        blocking = BlockingSet(
            kind="vertex",
            pairs=frozenset({(5, (0, 1)), (6, (0, 1)), (7, (1, 2))}),
            cycle_bound=4,
        )
        assert sorted(blocking.blockers_of((1, 0))) == [5, 6]
        assert blocking.blockers_of((5, 6)) == []


class TestDefinition3Checker:
    def test_valid_manual_blocking_set(self, triangle):
        # The only <=3-cycle is the triangle; pair (2, (0,1)) blocks it.
        blocking = BlockingSet(kind="vertex", pairs=frozenset({(2, (0, 1))}), cycle_bound=3)
        assert is_blocking_set(triangle, blocking)

    def test_pair_with_endpoint_vertex_is_invalid(self, triangle):
        blocking = BlockingSet(kind="vertex", pairs=frozenset({(0, (0, 1))}), cycle_bound=3)
        assert not is_blocking_set(triangle, blocking)

    def test_missing_cycle_coverage_is_invalid(self, square_with_diagonal):
        # Covers the triangle (0,1,2) but not (0,2,3).
        blocking = BlockingSet(kind="vertex", pairs=frozenset({(1, (0, 2))}), cycle_bound=3)
        assert not is_blocking_set(square_with_diagonal, blocking)

    def test_empty_set_valid_for_high_girth_graph(self, petersen):
        blocking = BlockingSet(kind="vertex", pairs=frozenset(), cycle_bound=4)
        assert is_blocking_set(petersen, blocking)

    def test_empty_set_invalid_when_short_cycles_exist(self, triangle):
        blocking = BlockingSet(kind="vertex", pairs=frozenset(), cycle_bound=3)
        assert not is_blocking_set(triangle, blocking)

    def test_pair_referencing_missing_edge_is_invalid(self, triangle):
        blocking = BlockingSet(kind="vertex", pairs=frozenset({(2, (0, 5))}), cycle_bound=3)
        assert not is_blocking_set(triangle, blocking)

    def test_raw_pairs_need_cycle_bound(self, triangle):
        assert is_blocking_set(triangle, [(2, (0, 1))], cycle_bound=3)
        with pytest.raises(ValueError):
            is_blocking_set(triangle, [(2, (0, 1))])

    def test_kind_mismatch_raises(self, triangle):
        blocking = BlockingSet(kind="edge", pairs=frozenset(), cycle_bound=3)
        with pytest.raises(ValueError):
            is_blocking_set(triangle, blocking)

    def test_unblocked_cycles_reports_counterexamples(self, square_with_diagonal):
        blocking = BlockingSet(kind="vertex", pairs=frozenset({(1, (0, 2))}), cycle_bound=3)
        missed = unblocked_cycles(square_with_diagonal, blocking)
        assert len(missed) == 1
        assert set(missed[0]) == {0, 2, 3}


class TestLemma3Extraction:
    def test_size_bound(self, medium_random):
        for f in (1, 2):
            result = _ft_result(medium_random, faults=f)
            blocking = extract_blocking_set(result)
            assert blocking.size <= f * result.size

    def test_extracted_set_is_valid(self, small_random):
        result = _ft_result(small_random, faults=1)
        blocking = extract_blocking_set(result)
        assert blocking.kind == "vertex"
        assert blocking.cycle_bound == 4
        assert is_blocking_set(result.spanner, blocking)

    def test_extracted_set_valid_for_two_faults(self):
        graph = generators.gnm(14, 50, rng=23, connected=True)
        result = _ft_result(graph, faults=2)
        blocking = extract_blocking_set(result)
        assert is_blocking_set(result.spanner, blocking)

    def test_extracted_set_valid_on_weighted_graph(self, small_weighted_random):
        result = _ft_result(small_weighted_random, faults=1)
        blocking = extract_blocking_set(result)
        assert is_blocking_set(result.spanner, blocking)

    def test_f_zero_gives_empty_blocking_set(self, medium_random):
        result = _ft_result(medium_random, faults=0)
        blocking = extract_blocking_set(result)
        assert blocking.size == 0
        # Greedy output for stretch 3 has girth > 4, so the empty set is valid.
        assert is_blocking_set(result.spanner, blocking)

    def test_edge_model_extraction(self, small_random):
        result = _ft_result(small_random, faults=1, model="edge")
        blocking = extract_edge_blocking_set(result)
        assert blocking.kind == "edge"
        assert blocking.size <= result.size
        assert is_edge_blocking_set(result.spanner, blocking)

    def test_extraction_requires_ft_result(self, small_random):
        plain = greedy_spanner(small_random, 3)
        with pytest.raises(ValueError):
            extract_blocking_set(plain)

    def test_extraction_requires_witnesses(self, small_random):
        result = ft_greedy_spanner(small_random, 3, 1, record_witnesses=False)
        with pytest.raises(ValueError):
            extract_blocking_set(result)

    def test_edge_extraction_requires_edge_model(self, small_random):
        result = _ft_result(small_random, faults=1, model="vertex")
        with pytest.raises(ValueError):
            extract_edge_blocking_set(result)


class TestEdgeBlockingChecker:
    def test_pair_with_identical_edges_invalid(self, triangle):
        blocking = BlockingSet(kind="edge",
                               pairs=frozenset({((0, 1), (0, 1))}), cycle_bound=3)
        assert not is_edge_blocking_set(triangle, blocking)

    def test_valid_manual_edge_blocking_set(self, triangle):
        blocking = BlockingSet(kind="edge",
                               pairs=frozenset({((0, 1), (1, 2))}), cycle_bound=3)
        assert is_edge_blocking_set(triangle, blocking)

    def test_uncovered_cycle_invalid(self, square_with_diagonal):
        blocking = BlockingSet(kind="edge",
                               pairs=frozenset({((0, 1), (1, 2))}), cycle_bound=3)
        assert not is_edge_blocking_set(square_with_diagonal, blocking)


class TestLemma4:
    def test_requires_vertex_blocking_set(self, small_random):
        result = _ft_result(small_random, faults=1, model="edge")
        blocking = extract_blocking_set(result)
        with pytest.raises(ValueError):
            lemma4_subsample(result.spanner, blocking, 1)

    def test_parameter_validation(self, small_random):
        result = _ft_result(small_random, faults=1)
        blocking = extract_blocking_set(result)
        with pytest.raises(ValueError):
            lemma4_subsample(result.spanner, blocking, 0)
        with pytest.raises(ValueError):
            lemma4_subsample(result.spanner, blocking, 1, trials=0)

    def test_output_girth_and_node_count(self, medium_random):
        result = _ft_result(medium_random, faults=2)
        blocking = extract_blocking_set(result)
        outcome = lemma4_subsample(result.spanner, blocking, 2, rng=0, trials=5)
        assert outcome.sampled_nodes == math.ceil(medium_random.number_of_nodes() / 4)
        assert outcome.subgraph.number_of_nodes() == outcome.sampled_nodes
        assert outcome.girth_ok
        assert girth(outcome.subgraph, cutoff=outcome.girth_bound) > outcome.girth_bound

    def test_pruned_graph_is_subgraph(self, medium_random):
        result = _ft_result(medium_random, faults=1)
        blocking = extract_blocking_set(result)
        outcome = lemma4_subsample(result.spanner, blocking, 1, rng=1, trials=3)
        assert outcome.subgraph.is_subgraph_of(result.spanner)

    def test_expected_edges_formula(self, medium_random):
        result = _ft_result(medium_random, faults=2)
        blocking = extract_blocking_set(result)
        outcome = lemma4_subsample(result.spanner, blocking, 2, rng=0)
        manual = result.size / 16.0 - blocking.size / 64.0
        assert outcome.expected_edges_lower_bound == pytest.approx(manual)

    def test_best_of_trials_reaches_expectation(self, medium_random):
        # "There exists a setting matching the expectation": over enough trials
        # the best sample should reach the expectation bound.
        result = _ft_result(medium_random, faults=2)
        blocking = extract_blocking_set(result)
        outcome = lemma4_subsample(result.spanner, blocking, 2, rng=3, trials=30)
        assert outcome.surviving_edges >= outcome.expected_edges_lower_bound

    def test_sample_size_override(self, medium_random):
        result = _ft_result(medium_random, faults=1)
        blocking = extract_blocking_set(result)
        outcome = lemma4_subsample(result.spanner, blocking, 1, rng=0, sample_size=5)
        assert outcome.sampled_nodes == 5

    def test_girth_check_can_be_skipped(self, medium_random):
        result = _ft_result(medium_random, faults=1)
        blocking = extract_blocking_set(result)
        outcome = lemma4_subsample(result.spanner, blocking, 1, rng=0, check_girth=False)
        assert outcome.girth_ok  # reported as unchecked-ok


class TestTheorem1Certificate:
    def test_certificate_fields(self, medium_random):
        result = _ft_result(medium_random, faults=2)
        certificate = theorem1_certificate(result, rng=0, trials=5)
        assert certificate["blocking_within_bound"]
        assert certificate["girth_ok"]
        assert certificate["spanner_edges"] == result.size
        assert certificate["blocking_bound"] == 2 * result.size

    def test_certificate_requires_faults(self, medium_random):
        result = _ft_result(medium_random, faults=0)
        with pytest.raises(ValueError):
            theorem1_certificate(result)
