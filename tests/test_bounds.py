"""Tests for the Moore bound, the bound formulas, and the lower-bound construction."""

import math

import pytest

from repro.bounds.lower_bound import (
    adversarial_fault_set_for_edge,
    bdpw_lower_bound_instance,
    edge_blocking_set_for_blowup,
    forced_edge_fraction,
    vertex_blowup,
)
from repro.bounds.moore import girth_edge_frontier, max_edges_girth_greater, moore_bound
from repro.bounds.theoretical import (
    BOUND_FORMULAS,
    bdpw18_upper_bound,
    bound_ratio,
    clpr_bound,
    corollary2_bound,
    dinitz_krauthgamer_bound,
    non_ft_greedy_bound,
    theorem1_bound,
    trivial_bound,
)
from repro.faults.adversarial import stretch_under_faults
from repro.graph import generators
from repro.graph.girth import girth
from repro.spanners.blocking import is_edge_blocking_set


class TestMooreBound:
    def test_formula_values(self):
        assert moore_bound(100, 4) == pytest.approx(100 ** 1.5)
        assert moore_bound(100, 5) == pytest.approx(100 ** 1.5)
        assert moore_bound(100, 6) == pytest.approx(100 ** (4 / 3))

    def test_degenerate_inputs(self):
        assert moore_bound(0, 4) == 0.0
        assert moore_bound(-5, 4) == 0.0
        assert moore_bound(10, 2) == 45.0

    def test_monotone_in_n(self):
        assert moore_bound(200, 4) > moore_bound(100, 4)

    def test_decreasing_in_k(self):
        assert moore_bound(100, 6) < moore_bound(100, 4)

    def test_exact_small_values(self):
        # b(n, 3) = triangle-free maximum = floor(n^2/4) (Mantel's theorem).
        assert max_edges_girth_greater(4, 3) == 4
        assert max_edges_girth_greater(5, 3) == 6
        assert max_edges_girth_greater(6, 3) == 9
        # girth > 4: C5 is the densest 5-node graph (5 edges).
        assert max_edges_girth_greater(5, 4) == 5

    def test_exact_trivial_cases(self):
        assert max_edges_girth_greater(1, 3) == 0
        assert max_edges_girth_greater(6, 2) == 15

    def test_heuristic_regime_is_lower_bound(self):
        value = max_edges_girth_greater(20, 4, rng=0, attempts=10)
        assert value >= 19  # at least a spanning-tree-plus-some structure
        assert value <= moore_bound(20, 4) * 2

    def test_girth_edge_frontier(self):
        frontier = girth_edge_frontier(16, [3, 5], rng=0, attempts=5)
        assert set(frontier) == {3, 5}
        assert frontier[3] >= frontier[5]


class TestBoundFormulas:
    def test_theorem1_reduces_to_moore_at_f0(self):
        assert theorem1_bound(100, 0, 3) == pytest.approx(moore_bound(100, 4))

    def test_theorem1_general_value(self):
        assert theorem1_bound(100, 2, 3) == pytest.approx(4 * moore_bound(50, 4))

    def test_corollary2_matches_theorem1_via_moore(self):
        # f^2 * (n/f)^{3/2} == n^{3/2} f^{1/2} for stretch 3 (k = 2).
        assert theorem1_bound(128, 4, 3) == pytest.approx(corollary2_bound(128, 4, 3))

    def test_corollary2_values(self):
        assert corollary2_bound(100, 1, 3) == pytest.approx(1000.0)
        assert corollary2_bound(100, 4, 3) == pytest.approx(2000.0)

    def test_corollary2_sublinear_in_f(self):
        ratio = corollary2_bound(100, 4, 3) / corollary2_bound(100, 1, 3)
        assert ratio < 4

    def test_bdpw_is_exp_k_worse(self):
        for stretch in (3.0, 5.0, 7.0):
            k = (stretch + 1) / 2
            assert bdpw18_upper_bound(100, 2, stretch) == pytest.approx(
                corollary2_bound(100, 2, stretch) * math.exp(k))

    def test_prior_bounds_are_worse_in_f(self):
        n, stretch = 1000, 3
        for f in (2, 4, 8):
            ours = corollary2_bound(n, f, stretch)
            assert dinitz_krauthgamer_bound(n, f, stretch) > ours
            assert clpr_bound(n, f, stretch) > ours

    def test_clpr_explodes_exponentially_in_f(self):
        assert clpr_bound(100, 6, 3) / clpr_bound(100, 5, 3) > 1.9

    def test_trivial_and_greedy_bounds(self):
        assert trivial_bound(10) == 45
        assert non_ft_greedy_bound(100, stretch=3) == pytest.approx(1000.0)

    def test_invalid_stretch(self):
        with pytest.raises(ValueError):
            corollary2_bound(100, 1, 0.5)

    def test_registry_complete(self):
        assert {"theorem1", "corollary2", "bdpw18", "trivial"} <= set(BOUND_FORMULAS)
        for formula in BOUND_FORMULAS.values():
            assert formula(50, 2, 3) > 0

    def test_bound_ratio(self):
        assert bound_ratio(500, "corollary2", 100, 1, 3) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            bound_ratio(500, "nope", 100, 1, 3)


class TestVertexBlowup:
    def test_counts(self, petersen):
        blowup = vertex_blowup(petersen, 3)
        assert blowup.number_of_nodes() == 30
        assert blowup.number_of_edges() == 9 * 15

    def test_copies_of_same_vertex_not_adjacent(self, petersen):
        blowup = vertex_blowup(petersen, 2)
        for u in petersen.nodes():
            assert not blowup.has_edge((u, 0), (u, 1))

    def test_single_copy_is_isomorphic_relabel(self, petersen):
        blowup = vertex_blowup(petersen, 1)
        assert blowup.number_of_edges() == petersen.number_of_edges()

    def test_invalid_copies(self, petersen):
        with pytest.raises(ValueError):
            vertex_blowup(petersen, 0)

    def test_blowup_girth_is_four(self, petersen):
        # Two copies of each endpoint of any base edge form a 4-cycle.
        blowup = vertex_blowup(petersen, 2)
        assert girth(blowup) == 4


class TestLowerBoundInstance:
    def test_construction_counts(self):
        instance = bdpw_lower_bound_instance(2, 3)
        assert instance.copies == 2
        assert instance.edges == instance.copies ** 2 * instance.base.number_of_edges()
        assert instance.predicted_forced_edges == instance.edges

    def test_base_girth_requirement(self):
        with pytest.raises(ValueError):
            bdpw_lower_bound_instance(2, 3, base=generators.complete_graph(5))

    def test_explicit_base_accepted(self):
        instance = bdpw_lower_bound_instance(3, 3, base=generators.petersen_graph())
        assert instance.base.name == "petersen"
        assert instance.copies == 2

    def test_faults_validation(self):
        with pytest.raises(ValueError):
            bdpw_lower_bound_instance(0, 3)

    def test_all_edges_forced_small_instance(self):
        instance = bdpw_lower_bound_instance(2, 3)
        assert forced_edge_fraction(instance) == 1.0

    def test_forced_fraction_sampling(self):
        instance = bdpw_lower_bound_instance(3, 3)
        assert forced_edge_fraction(instance, sample_edges=15, rng=0) == 1.0

    def test_adversarial_fault_set_breaks_edge(self):
        instance = bdpw_lower_bound_instance(2, 3)
        graph = instance.graph
        (u, v, w) = next(iter(graph.edges()))
        faults = adversarial_fault_set_for_edge(instance, u, v)
        assert len(faults) <= instance.max_faults
        # Removing the edge and applying the analytic fault set must violate the stretch.
        without = graph.copy()
        without.remove_edge(u, v)
        stretch = stretch_under_faults(graph, without, "vertex", faults)
        assert stretch > instance.stretch

    def test_larger_stretch_uses_higher_girth_base(self):
        instance = bdpw_lower_bound_instance(2, 5, base_nodes=12, rng=0)
        assert girth(instance.base) > 6


class TestEdgeBlockingSetOnBlowup:
    @pytest.mark.parametrize("faults", [2, 3, 4])
    def test_size_bound(self, faults):
        instance = bdpw_lower_bound_instance(faults, 3)
        blocking = edge_blocking_set_for_blowup(instance)
        assert blocking.size <= faults * instance.edges

    def test_validity_small_instance(self):
        instance = bdpw_lower_bound_instance(2, 3)
        blocking = edge_blocking_set_for_blowup(instance)
        assert is_edge_blocking_set(instance.graph, blocking)

    def test_validity_three_faults(self):
        instance = bdpw_lower_bound_instance(3, 3)
        blocking = edge_blocking_set_for_blowup(instance)
        assert is_edge_blocking_set(instance.graph, blocking)

    def test_pairs_share_endpoint_and_base_edge(self):
        instance = bdpw_lower_bound_instance(2, 3)
        blocking = edge_blocking_set_for_blowup(instance)
        for first, second in blocking.pairs:
            shared = set(first) & set(second)
            assert shared, "pair must share an endpoint"
            base_first = {first[0][0], first[1][0]}
            base_second = {second[0][0], second[1][0]}
            assert base_first == base_second, "pair must project to the same base edge"
