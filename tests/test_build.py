"""Tests for the unified construction API (:mod:`repro.build`).

Covers the four contract surfaces of the build layer:

* :class:`BuildSpec` — JSON round trip, unknown-field rejection, immutability;
* the algorithm registry — capability validation errors, listing;
* shim ↔ registry equivalence — for every registered algorithm,
  ``build(graph, spec)`` is byte-identical (spanner, witnesses, counters) to
  the direct construction-function call;
* the parallel FT-greedy build — serial ≡ parallel property (same spanner,
  same witness fault sets) for both fault models and both exact oracles;
* :class:`BuildSession` and spec-carrying snapshots — build → verify →
  snapshot → engine chaining, progress/cancel hooks, rebuild round trip.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines import (
    peeling_union_spanner,
    sampling_union_spanner,
    trivial_spanner,
)
from repro.build import (
    ALGORITHMS,
    BuildCancelled,
    BuildError,
    BuildSession,
    BuildSpec,
    available_algorithms,
    build,
    get_algorithm,
    validate_spec,
)
from repro.engine.snapshot import SpannerSnapshot
from repro.graph import generators
from repro.graph.core import GraphError
from repro.spanners.ft_greedy import eft_greedy_spanner, ft_greedy_spanner, vft_greedy_spanner
from repro.spanners.greedy import greedy_spanner


def _graph(seed: int, n: int = 18, m: int = 45):
    return generators.gnm(n, m, rng=seed, connected=True)


def _result_signature(result):
    """Everything the acceptance criterion wants byte-identical."""
    return {
        "edges": sorted(result.spanner.edges(), key=repr),
        "witnesses": dict(result.witness_fault_sets),
        "edges_considered": result.edges_considered,
        "edges_added": result.edges_added,
        "oracle_queries": result.oracle_queries,
        "distance_queries": result.distance_queries,
        "algorithm": result.algorithm,
        "fault_model": result.fault_model,
        "stretch": result.stretch,
        "max_faults": result.max_faults,
        "parameters": dict(result.parameters),
    }


# ---------------------------------------------------------------------------
# BuildSpec
# ---------------------------------------------------------------------------

class TestBuildSpec:
    def test_json_round_trip(self):
        spec = BuildSpec("sampling-union", stretch=3.5, max_faults=2,
                         fault_model="vertex", seed=7, workers=1,
                         params={"samples": 12, "max_samples": 40})
        document = spec.to_json()
        assert document["format"] == "repro-build-spec"
        assert BuildSpec.from_json(document) == spec

    def test_round_trip_through_json_text(self):
        import json
        spec = BuildSpec("ft-greedy", max_faults=1, oracle="exhaustive",
                         backend="serial")
        restored = BuildSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert restored == spec

    def test_unknown_field_rejected(self):
        document = BuildSpec("greedy").to_json()
        document["stretchh"] = 3.0
        with pytest.raises(BuildError, match="stretchh"):
            BuildSpec.from_json(document)

    def test_missing_algorithm_rejected(self):
        with pytest.raises(BuildError, match="algorithm"):
            BuildSpec.from_json({"stretch": 3.0})

    def test_wrong_format_rejected(self):
        with pytest.raises(BuildError, match="format"):
            BuildSpec.from_json({"format": "something-else", "algorithm": "greedy"})

    def test_structural_validation(self):
        with pytest.raises(BuildError):
            BuildSpec("greedy", stretch=0.5)
        with pytest.raises(BuildError):
            BuildSpec("greedy", max_faults=-1)
        with pytest.raises(BuildError):
            BuildSpec("greedy", workers=0)
        with pytest.raises(BuildError):
            BuildSpec("greedy", backend="threads")
        with pytest.raises(ValueError):
            BuildSpec("ft-greedy", fault_model="hyperedge")
        with pytest.raises(BuildError):
            BuildSpec("sampling-union", seed="not-an-int")

    def test_frozen_and_params_copied(self):
        params = {"samples": 5}
        spec = BuildSpec("sampling-union", params=params)
        params["samples"] = 99
        assert spec.params["samples"] == 5
        with pytest.raises(AttributeError):
            spec.stretch = 4.0

    def test_replace(self):
        spec = BuildSpec("ft-greedy", max_faults=1)
        heavier = spec.replace(max_faults=3, workers=1)
        assert heavier.max_faults == 3
        assert heavier.algorithm == "ft-greedy"
        assert spec.max_faults == 1

    def test_summary_mentions_the_essentials(self):
        text = BuildSpec("ft-greedy", max_faults=2, oracle="exhaustive",
                         workers=4).summary()
        assert "ft-greedy" in text and "f=2" in text
        assert "exhaustive" in text and "workers=4" in text


# ---------------------------------------------------------------------------
# Registry and capability validation
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_all_constructions_registered(self):
        names = available_algorithms()
        for expected in ("ft-greedy", "vft-greedy", "eft-greedy", "greedy",
                         "trivial", "sampling-union", "peeling-union"):
            assert expected in names

    def test_unknown_algorithm(self):
        with pytest.raises(BuildError, match="unknown algorithm"):
            get_algorithm("steiner-magic")
        with pytest.raises(BuildError, match="available"):
            validate_spec(BuildSpec("steiner-magic"))

    def test_non_ft_algorithm_rejects_fault_budget(self):
        with pytest.raises(BuildError, match="not fault tolerant"):
            validate_spec(BuildSpec("greedy", max_faults=2))

    def test_fault_model_capability_enforced(self):
        with pytest.raises(BuildError, match="fault model"):
            validate_spec(BuildSpec("peeling-union", max_faults=1,
                                    fault_model="vertex"))
        with pytest.raises(BuildError, match="fault model"):
            validate_spec(BuildSpec("sampling-union", max_faults=1,
                                    fault_model="edge"))
        with pytest.raises(BuildError, match="fault model"):
            validate_spec(BuildSpec("vft-greedy", max_faults=1,
                                    fault_model="edge"))

    def test_oracle_capability_enforced(self):
        with pytest.raises(BuildError, match="oracle"):
            validate_spec(BuildSpec("trivial", oracle="branch-and-bound"))

    def test_workers_capability_enforced(self):
        with pytest.raises(BuildError, match="not parallelizable"):
            validate_spec(BuildSpec("sampling-union", max_faults=1, workers=2))

    def test_unknown_params_rejected(self):
        with pytest.raises(BuildError, match="samples_per_edge"):
            validate_spec(BuildSpec("ft-greedy", max_faults=1,
                                    params={"samples_per_edge": 3}))

    def test_validate_returns_entry(self):
        entry = validate_spec(BuildSpec("ft-greedy", max_faults=1))
        assert entry.name == "ft-greedy"
        assert entry.capabilities.produces_witnesses

    def test_duplicate_registration_rejected(self):
        from repro.build import register_algorithm
        from repro.build.registry import AlgorithmCapabilities
        with pytest.raises(BuildError, match="already registered"):
            register_algorithm(
                "greedy", capabilities=AlgorithmCapabilities())(lambda *a: None)


# ---------------------------------------------------------------------------
# Shim <-> registry equivalence (the acceptance criterion)
# ---------------------------------------------------------------------------

class TestShimRegistryEquivalence:
    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_ft_greedy(self, seed, fault_model):
        graph = _graph(seed)
        direct = ft_greedy_spanner(graph, 3.0, 1, fault_model=fault_model)
        via_spec = build(graph, BuildSpec("ft-greedy", stretch=3.0,
                                          max_faults=1,
                                          fault_model=fault_model))
        assert _result_signature(direct) == _result_signature(via_spec)

    def test_vft_and_eft_pinned_variants(self):
        graph = _graph(1)
        assert (_result_signature(vft_greedy_spanner(graph, 3.0, 1))
                == _result_signature(build(graph, BuildSpec("vft-greedy",
                                                            max_faults=1))))
        assert (_result_signature(eft_greedy_spanner(graph, 3.0, 1))
                == _result_signature(build(graph, BuildSpec(
                    "eft-greedy", max_faults=1, fault_model="edge"))))

    @pytest.mark.parametrize("seed", [0, 5])
    def test_greedy(self, seed):
        graph = _graph(seed)
        assert (_result_signature(greedy_spanner(graph, 3.0))
                == _result_signature(build(graph, BuildSpec("greedy"))))

    def test_trivial(self):
        graph = _graph(2)
        direct = trivial_spanner(graph, 3.0, 2, "edge")
        via_spec = build(graph, BuildSpec("trivial", stretch=3.0, max_faults=2,
                                          fault_model="edge"))
        assert _result_signature(direct) == _result_signature(via_spec)

    @pytest.mark.parametrize("seed", [0, 4])
    def test_sampling_union(self, seed):
        graph = _graph(seed)
        direct = sampling_union_spanner(graph, 3.0, 1, rng=seed,
                                        max_samples=25)
        via_spec = build(graph, BuildSpec("sampling-union", stretch=3.0,
                                          max_faults=1, seed=seed,
                                          params={"max_samples": 25}))
        assert _result_signature(direct) == _result_signature(via_spec)

    @pytest.mark.parametrize("seed", [0, 4])
    def test_peeling_union(self, seed):
        graph = _graph(seed)
        direct = peeling_union_spanner(graph, 3.0, 2)
        via_spec = build(graph, BuildSpec("peeling-union", stretch=3.0,
                                          max_faults=2, fault_model="edge"))
        assert _result_signature(direct) == _result_signature(via_spec)

    def test_oracle_choice_flows_through(self):
        graph = _graph(0, n=12, m=24)
        direct = ft_greedy_spanner(graph, 3.0, 1, oracle="greedy-path-packing")
        via_spec = build(graph, BuildSpec("ft-greedy", max_faults=1,
                                          oracle="greedy-path-packing"))
        assert _result_signature(direct) == _result_signature(via_spec)
        assert via_spec.parameters["oracle_exact"] is False


# ---------------------------------------------------------------------------
# Parallel FT-greedy: serial ≡ parallel byte identity
# ---------------------------------------------------------------------------

class TestParallelFtGreedy:
    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_serial_equals_parallel(self, fault_model, seed):
        graph = _graph(seed, n=16, m=40)
        serial = ft_greedy_spanner(graph, 3.0, 1, fault_model=fault_model)
        parallel = ft_greedy_spanner(graph, 3.0, 1, fault_model=fault_model,
                                     workers=2, backend="process")
        assert (sorted(serial.spanner.edges(), key=repr)
                == sorted(parallel.spanner.edges(), key=repr))
        assert serial.witness_fault_sets == parallel.witness_fault_sets
        assert parallel.parameters["workers"] == 2
        assert parallel.parameters["backend"] == "process"

    @pytest.mark.parametrize("fault_model", ["vertex", "edge"])
    def test_serial_equals_parallel_exhaustive_oracle(self, fault_model):
        # The exhaustive oracle enumerates a *global* candidate order, which
        # the parallel driver must ship explicitly for ties to break the
        # same way in workers as in process.
        graph = _graph(1, n=10, m=18)
        serial = ft_greedy_spanner(graph, 3.0, 1, fault_model=fault_model,
                                   oracle="exhaustive")
        parallel = ft_greedy_spanner(graph, 3.0, 1, fault_model=fault_model,
                                     oracle="exhaustive", workers=2,
                                     backend="process")
        assert (sorted(serial.spanner.edges(), key=repr)
                == sorted(parallel.spanner.edges(), key=repr))
        assert serial.witness_fault_sets == parallel.witness_fault_sets

    def test_heuristic_oracle_refused_in_parallel(self):
        graph = _graph(0, n=10, m=18)
        with pytest.raises(ValueError, match="exact oracle"):
            ft_greedy_spanner(graph, 3.0, 1, oracle="greedy-path-packing",
                              workers=2, backend="process")

    def test_parallel_f0_matches_plain_greedy_edges(self):
        graph = _graph(2, n=16, m=40)
        plain = greedy_spanner(graph, 3.0)
        parallel = ft_greedy_spanner(graph, 3.0, 0, workers=2,
                                     backend="process")
        assert (sorted(plain.spanner.edges(), key=repr)
                == sorted(parallel.spanner.edges(), key=repr))


# ---------------------------------------------------------------------------
# BuildSession: build -> verify -> snapshot -> serve
# ---------------------------------------------------------------------------

class TestBuildSession:
    def test_full_chain(self):
        graph = _graph(0)
        session = BuildSession(graph, BuildSpec("ft-greedy", stretch=3.0,
                                                max_faults=1))
        result = session.build()
        assert session.build() is result  # cached, not rebuilt
        report = session.verify(method="sampled", samples=10, rng=0)
        assert report.ok
        snapshot = session.snapshot()
        assert snapshot.build_spec == session.spec
        engine = session.engine(cache_size=16)
        nodes = list(graph.nodes())
        distance = engine.distance(nodes[0], nodes[1], ())
        assert distance < math.inf
        summary = session.summary()
        assert summary["built"] and summary["verified"] and summary["verify_ok"]

    def test_invalid_spec_fails_at_session_creation(self):
        with pytest.raises(BuildError):
            BuildSession(_graph(0), BuildSpec("greedy", max_faults=1))

    def test_progress_events_fire(self):
        events = []
        session = BuildSession(
            _graph(0), BuildSpec("ft-greedy", max_faults=1),
            on_progress=lambda stage, done, total: events.append(stage))
        session.build()
        session.verify(method="sampled", samples=5, rng=0)
        assert "build" in events and "verify" in events

    def test_cancellation_before_build(self):
        session = BuildSession(_graph(0), BuildSpec("ft-greedy", max_faults=1),
                               should_cancel=lambda: True)
        with pytest.raises(BuildCancelled):
            session.build()

    def test_cancellation_mid_ft_greedy(self):
        calls = {"n": 0}

        def cancel_after_five() -> bool:
            calls["n"] += 1
            return calls["n"] > 5

        with pytest.raises(BuildCancelled):
            build(_graph(0), BuildSpec("ft-greedy", max_faults=1),
                  should_cancel=cancel_after_five)

    def test_verify_catches_non_ft_construction(self):
        # The plain greedy spanner is generally not 2-fault tolerant: a
        # sampled verification under an imposed budget should refute it on
        # a dense-enough instance.
        graph = generators.gnm(20, 60, rng=0, connected=True)
        session = BuildSession(graph, BuildSpec("greedy", stretch=1.5))
        session.build()
        report = session.verify(method="sampled", samples=40, rng=1)
        # Not asserting refutation (instance-dependent); the contract is
        # that verify() runs against the spec's budget without error and
        # reports a worst stretch.
        assert report.worst_stretch >= 1.0


# ---------------------------------------------------------------------------
# Spec-carrying snapshots
# ---------------------------------------------------------------------------

class TestSnapshotBuildSpec:
    def test_snapshot_records_and_round_trips_spec(self, tmp_path):
        graph = _graph(0)
        spec = BuildSpec("ft-greedy", stretch=3.0, max_faults=1)
        snapshot = SpannerSnapshot.build(graph, spec)
        assert snapshot.build_spec == spec
        path = tmp_path / "snap.json"
        snapshot.save(path)
        restored = SpannerSnapshot.load(path)
        assert restored.build_spec == spec

    def test_rebuild_reproduces_spanner(self, tmp_path):
        graph = _graph(3)
        spec = BuildSpec("ft-greedy", stretch=3.0, max_faults=1)
        snapshot = SpannerSnapshot.build(graph, spec)
        path = tmp_path / "snap.json"
        snapshot.save(path)
        rebuilt = SpannerSnapshot.load(path).rebuild()
        assert (sorted(rebuilt.spanner.edges(), key=repr)
                == sorted(snapshot.spanner.edges(), key=repr))
        assert rebuilt.build_spec == spec

    def test_seeded_random_spec_rebuilds_identically(self):
        graph = _graph(5)
        spec = BuildSpec("sampling-union", max_faults=1, seed=11,
                         params={"max_samples": 20})
        snapshot = SpannerSnapshot.build(graph, spec)
        rebuilt = snapshot.rebuild()
        assert (sorted(rebuilt.spanner.edges(), key=repr)
                == sorted(snapshot.spanner.edges(), key=repr))

    def test_rebuild_without_spec_refuses(self):
        graph = _graph(0)
        result = greedy_spanner(graph, 3.0)
        snapshot = SpannerSnapshot.from_result(result)  # no spec recorded
        assert snapshot.build_spec is None
        with pytest.raises(GraphError, match="build spec"):
            snapshot.rebuild()

    def test_rebuild_without_original_refuses(self):
        graph = _graph(0)
        spec = BuildSpec("greedy")
        snapshot = SpannerSnapshot.build(graph, spec, keep_original=False)
        with pytest.raises(GraphError, match="original"):
            snapshot.rebuild()
        # ... but rebuilding against an explicit graph works.
        rebuilt = snapshot.rebuild(graph)
        assert (sorted(rebuilt.spanner.edges(), key=repr)
                == sorted(snapshot.spanner.edges(), key=repr))
