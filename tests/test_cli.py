"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, spec_from_args
from repro.graph import generators
from repro.graph.io import read_edge_list, read_json, write_edge_list, write_json
from repro.spanners.greedy import greedy_spanner


@pytest.fixture
def graph_file(tmp_path):
    graph = generators.gnm(16, 50, rng=5, connected=True)
    path = tmp_path / "input.json"
    write_json(graph, path)
    return path, graph


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "g.json"])
        assert args.stretch == 3.0
        assert args.faults == 0
        assert args.algorithm == "auto"
        # --fault-model defaults to the algorithm's native model, resolved
        # by the shared spec translator rather than per-subcommand defaults.
        assert args.fault_model is None
        spec = spec_from_args(args)
        assert spec.algorithm == "greedy"
        assert spec.fault_model == "vertex"

    def test_spec_defaults_cannot_drift_between_subcommands(self):
        """build/serve/query share one translator -> identical specs."""
        parser = build_parser()
        specs = [
            spec_from_args(parser.parse_args(["build", "g.json", "-f", "1"])),
            spec_from_args(parser.parse_args(["serve", "g.json", "-f", "1"])),
            spec_from_args(parser.parse_args(
                ["query", "g.json", "-s", "0", "-t", "1", "-f", "1"])),
        ]
        assert specs[0] == specs[1] == specs[2]
        assert specs[0].algorithm == "ft-greedy"

    def test_experiment_arguments(self):
        args = build_parser().parse_args(["experiment", "E3", "--scale", "quick"])
        assert args.ident == "E3"
        assert args.scale == "quick"


class TestBuildCommand:
    def test_build_plain_spanner(self, graph_file, tmp_path, capsys):
        path, graph = graph_file
        out = tmp_path / "spanner.json"
        code = main(["build", str(path), "--output", str(out), "--stretch", "3"])
        assert code == 0
        spanner = read_json(out)
        assert spanner.number_of_edges() <= graph.number_of_edges()
        assert "spanner" in capsys.readouterr().out

    def test_build_ft_spanner(self, graph_file, tmp_path):
        path, _ = graph_file
        out = tmp_path / "ft.json"
        code = main(["build", str(path), "-o", str(out), "-k", "3", "-f", "1"])
        assert code == 0
        assert read_json(out).number_of_edges() > 0

    def test_build_edge_list_output(self, graph_file, tmp_path):
        path, _ = graph_file
        out = tmp_path / "spanner.edges"
        assert main(["build", str(path), "-o", str(out)]) == 0
        assert read_edge_list(out).number_of_edges() > 0

    def test_missing_input_is_reported(self, tmp_path):
        assert main(["build", str(tmp_path / "missing.json")]) == 2

    @pytest.mark.parametrize("algorithm", ["trivial", "sampling-union",
                                           "peeling-union"])
    def test_baselines_buildable_from_cli(self, graph_file, tmp_path,
                                          algorithm, capsys):
        """The three baselines are reachable via --algorithm (CLI bugfix)."""
        path, graph = graph_file
        out = tmp_path / f"{algorithm}.json"
        code = main(["build", str(path), "--algorithm", algorithm,
                     "-f", "1", "--seed", "0", "-o", str(out)])
        assert code == 0
        spanner = read_json(out)
        assert spanner.number_of_edges() > 0
        assert algorithm in capsys.readouterr().out

    def test_build_with_algorithm_param(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        code = main(["build", str(path), "--algorithm", "sampling-union",
                     "-f", "1", "--seed", "3", "-P", "max_samples=10"])
        assert code == 0
        assert "sampling-union" in capsys.readouterr().out

    def test_incompatible_spec_is_reported(self, graph_file):
        path, _ = graph_file
        # greedy cannot take a fault budget; trivial cannot parallelize.
        assert main(["build", str(path), "--algorithm", "greedy",
                     "-f", "2"]) == 2
        assert main(["build", str(path), "--algorithm", "trivial",
                     "--workers", "4"]) == 2

    def test_build_save_snapshot_records_spec(self, graph_file, tmp_path):
        path, _ = graph_file
        snap = tmp_path / "snap.json"
        code = main(["build", str(path), "-f", "1",
                     "--save-snapshot", str(snap)])
        assert code == 0
        from repro.engine.snapshot import SpannerSnapshot
        spec = SpannerSnapshot.load(snap).build_spec
        assert spec is not None
        assert spec.algorithm == "ft-greedy"
        assert spec.max_faults == 1


class TestVerifyCommand:
    def test_verify_valid_spanner(self, graph_file, tmp_path):
        path, graph = graph_file
        spanner = greedy_spanner(graph, 3).spanner
        spanner_path = tmp_path / "spanner.json"
        write_json(spanner, spanner_path)
        assert main(["verify", str(path), str(spanner_path), "-k", "3"]) == 0

    def test_verify_detects_violation(self, graph_file, tmp_path):
        path, graph = graph_file
        sparse = greedy_spanner(graph, 50).spanner
        sparse_path = tmp_path / "sparse.json"
        write_json(sparse, sparse_path)
        assert main(["verify", str(path), str(sparse_path), "-k", "1.1"]) == 1

    def test_verify_ft_mode(self, graph_file, tmp_path):
        path, graph = graph_file
        from repro.spanners.ft_greedy import ft_greedy_spanner
        ft = ft_greedy_spanner(graph, 3, 1).spanner
        ft_path = tmp_path / "ft.json"
        write_json(ft, ft_path)
        code = main(["verify", str(path), str(ft_path), "-k", "3", "-f", "1",
                     "--method", "exhaustive"])
        assert code == 0


class TestOtherCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "workloads" in output
        # The algorithm registry is listed with capability tags.
        assert "algorithms:" in output
        for name in ("ft-greedy", "trivial", "sampling-union", "peeling-union"):
            assert name in output
        assert "witnesses" in output and "parallel" in output

    def test_generate_command(self, tmp_path, capsys):
        out = tmp_path / "workload.json"
        assert main(["generate", "tiny-gnm", str(out), "--seed", "3"]) == 0
        assert read_json(out).number_of_nodes() > 0

    def test_lower_bound_command(self, tmp_path, capsys):
        out = tmp_path / "lb.edges"
        assert main(["lower-bound", "-f", "2", "-k", "3", "-o", str(out)]) == 0
        instance = read_edge_list(out)
        assert instance.number_of_edges() > 0
        assert "blowup" in capsys.readouterr().out.lower() or True

    def test_experiment_command(self, tmp_path, capsys):
        code = main(["experiment", "E10", "--scale", "quick",
                     "--csv-dir", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "e10.csv").exists()
        assert "E10" in capsys.readouterr().out

    def test_experiment_markdown_output(self, capsys):
        assert main(["experiment", "E10", "--markdown"]) == 0
        assert "|" in capsys.readouterr().out

    def test_experiment_json_output(self, capsys):
        assert main(["experiment", "E10", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["experiment"] == "E10"
        assert document["columns"]
        assert len(document["rows"]) >= 1
        assert set(document["rows"][0]) == set(document["columns"])


class TestServeAndQueryCommands:
    def test_serve_builds_and_saves_snapshot(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        snap = tmp_path / "snap.json"
        code = main(["serve", str(path), "-k", "3", "-f", "1",
                     "--queries", "200", "--save-snapshot", str(snap)])
        assert code == 0
        output = capsys.readouterr().out
        assert "queries/s" in output and "cache hit rate" in output
        from repro.engine.snapshot import SpannerSnapshot
        assert SpannerSnapshot.is_snapshot_file(snap)
        assert SpannerSnapshot.load(snap).max_faults == 1

    def test_serve_from_snapshot_json_report(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        snap = tmp_path / "snap.json"
        assert main(["serve", str(path), "-f", "1", "--queries", "100",
                     "--save-snapshot", str(snap)]) == 0
        capsys.readouterr()
        for shape in ("uniform", "zipf", "churn"):
            code = main(["serve", str(snap), "--workload", shape,
                         "--queries", "100", "--json"])
            assert code == 0
            report = json.loads(capsys.readouterr().out)
            assert report["queries_served"] == report["workload"]["queries"]
            assert report["snapshot"]["max_faults"] == 1
            assert report["throughput_qps"] > 0

    def test_query_command_with_faults_and_audit(self, graph_file, tmp_path, capsys):
        path, graph = graph_file
        snap = tmp_path / "snap.json"
        assert main(["serve", str(path), "-f", "1", "--queries", "10",
                     "--save-snapshot", str(snap)]) == 0
        capsys.readouterr()
        nodes = list(graph.nodes())
        code = main(["query", str(snap), "-s", str(nodes[0]),
                     "-t", str(nodes[-1]), "-F", str(nodes[1]), "--audit"])
        assert code == 0
        output = capsys.readouterr().out
        assert "stretch" in output and "OK" in output

    def test_query_audit_json_self_pair_and_exit_code(self, graph_file, tmp_path,
                                                      capsys):
        path, graph = graph_file
        snap = tmp_path / "snap.json"
        assert main(["serve", str(path), "-f", "1", "--queries", "10",
                     "--save-snapshot", str(snap)]) == 0
        capsys.readouterr()
        node = str(next(iter(graph.nodes())))
        # source == target must not crash the audit (0/0 stretch), and the
        # JSON mode must carry the audit verdict in the exit code.
        code = main(["query", str(snap), "-s", node, "-t", node,
                     "--audit", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["audit"]["ok"] is True
        assert document["audit"]["stretch"] == 1.0

    def test_query_json_output_against_graph_file(self, graph_file, capsys):
        path, graph = graph_file
        nodes = list(graph.nodes())
        code = main(["query", str(path), "-s", str(nodes[0]),
                     "-t", str(nodes[1]), "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["reachable"] is True
        assert document["distance"] is not None


class TestUpdateAndReplayCommands:
    @pytest.fixture
    def journal_file(self, graph_file, tmp_path):
        from repro.dynamic import random_journal
        _, graph = graph_file
        path = tmp_path / "journal.json"
        random_journal(graph, 20, rng=3).save(path)
        return path

    def test_update_from_snapshot_certify_and_save(self, graph_file,
                                                   journal_file, tmp_path,
                                                   capsys):
        path, _ = graph_file
        snap = tmp_path / "snap.json"
        assert main(["build", str(path), "-f", "1",
                     "--save-snapshot", str(snap)]) == 0
        capsys.readouterr()
        out = tmp_path / "maintained.json"
        code = main(["update", str(snap), "-j", str(journal_file),
                     "--certify", "--save-snapshot", str(out)])
        output = capsys.readouterr().out
        assert code == 0
        assert "20 updates" in output and "VERDICT: OK" in output
        # The refreshed snapshot records the spec and the update count, and
        # reflects the replayed graph (not the build-time one).
        from repro.dynamic import UpdateJournal
        from repro.engine.snapshot import SpannerSnapshot
        refreshed = SpannerSnapshot.load(out)
        assert refreshed.metadata["updates_applied"] == 20
        from repro.graph.io import read_json
        final = UpdateJournal.load(journal_file).replay(read_json(path))
        assert refreshed.original.same_structure(final)

    def test_update_from_graph_file_json_report(self, graph_file,
                                                journal_file, capsys):
        path, _ = graph_file
        code = main(["update", str(path), "-f", "1", "-j", str(journal_file),
                     "--certify", "--method", "sampled", "--samples", "20",
                     "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["updates_applied"] == 20
        assert report["certified"]["ok"] is True
        assert report["spec"]["algorithm"] == "ft-greedy"

    def test_update_refuses_non_maintainable_spec(self, graph_file,
                                                  journal_file):
        path, _ = graph_file
        # --faults 0 resolves the auto algorithm to plain greedy, which the
        # maintainer rejects (it cannot establish the FT-greedy invariant).
        assert main(["update", str(path), "-j", str(journal_file)]) == 2

    def test_update_rejects_flags_conflicting_with_recorded_spec(
            self, graph_file, journal_file, tmp_path, capsys):
        path, _ = graph_file
        snap = tmp_path / "snap.json"
        assert main(["build", str(path), "-f", "1",
                     "--save-snapshot", str(snap)]) == 0
        capsys.readouterr()
        # The snapshot was built at f=1/k=3; asking update to certify a
        # different contract must error out, not silently use the recorded
        # one (the user would read an OK verdict for the wrong guarantee).
        assert main(["update", str(snap), "-j", str(journal_file),
                     "-f", "2", "--certify"]) == 2
        assert main(["update", str(snap), "-j", str(journal_file),
                     "-k", "2"]) == 2
        # Even an explicit value equal to the usual argparse default is a
        # conflict when it contradicts the recorded spec (sentinel parsing
        # tells "not given" apart from "given at the default")...
        snap5 = tmp_path / "snap5.json"
        assert main(["build", str(path), "-f", "1", "-k", "5",
                     "--save-snapshot", str(snap5)]) == 0
        capsys.readouterr()
        assert main(["update", str(snap5), "-j", str(journal_file),
                     "-k", "3"]) == 2
        assert main(["update", str(snap5), "-j", str(journal_file),
                     "-f", "0"]) == 2
        # ... and so are algorithm params the recorded spec never carried.
        assert main(["update", str(snap), "-j", str(journal_file),
                     "-P", "progress_every=5"]) == 2
        # Matching (or omitted) construction flags are fine, and execution
        # knobs are never part of the contract.
        assert main(["update", str(snap), "-j", str(journal_file),
                     "-f", "1", "-k", "3", "--workers", "1"]) == 0

    def test_replay_writes_final_graph(self, graph_file, journal_file,
                                       tmp_path, capsys):
        path, graph = graph_file
        out = tmp_path / "final.json"
        code = main(["replay", str(path), "-j", str(journal_file),
                     "-o", str(out)])
        assert code == 0
        assert "replayed" in capsys.readouterr().out
        final = read_json(out)
        from repro.dynamic import UpdateJournal
        expected = UpdateJournal.load(journal_file).replay(graph)
        assert final.same_structure(expected)

    def test_replay_check_compares_maintained_vs_rebuilt(self, graph_file,
                                                         journal_file, capsys):
        path, _ = graph_file
        code = main(["replay", str(path), "-f", "1", "-j", str(journal_file),
                     "--check", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["check"]["maintained_ok"] is True
        assert report["check"]["rebuilt_ok"] is True
        assert report["check"]["size_ratio"] >= 1.0 - 1e-9

    def test_replay_journal_mismatch_is_a_clean_error(self, graph_file,
                                                      tmp_path):
        path, graph = graph_file
        from repro.dynamic import EdgeDelete, UpdateJournal
        bogus = tmp_path / "bogus.json"
        missing = ("zz1", "zz2")  # endpoints not in the graph at all
        UpdateJournal([EdgeDelete(*missing)]).save(bogus)
        assert main(["replay", str(path), "-j", str(bogus)]) == 2
